//! Critical-path extraction and per-run profiles from a [`Trace`].
//!
//! The paper's §4 argument — run-time and compile-time resolution stay
//! flat with processor count because blocking receives serialize the
//! wavefront — is an argument about the *critical path* of the
//! program-order + message-dependency DAG. This module walks that DAG
//! backwards from the processor that finished last and decomposes the
//! longest chain into compute, send/receive overhead, network flight,
//! and blocked time, so a single run quantifies what Figures 6/7 only
//! show as scaling curves: a serialized version spends its makespan in
//! blocked + overhead, an optimized one in compute.
//!
//! The walk relies on two invariants of the trace model:
//!
//! * per-processor busy/blocked intervals tile each processor's
//!   timeline (every event covers `[start(), at]`, and consecutive
//!   events abut or leave a gap that was genuine idleness);
//! * receives record `waited`, so a receive with `waited > 0` was the
//!   end of a blocked interval whose release was the matching send's
//!   arrival — the edge to hop to the sending processor. FIFO per
//!   (src, dst, tag) makes the k-th receive match the k-th send.

use crate::message::{ProcId, Tag, Time};
use crate::trace::{Event, EventKind, Trace};
use std::collections::BTreeMap;

/// One segment of the critical path, latest-first walk reversed into
/// chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Processor the segment ran on (for `Flight`, the *sender*).
    pub proc: ProcId,
    /// Segment start.
    pub from: Time,
    /// Segment end.
    pub to: Time,
    /// What the time went to.
    pub kind: SegmentKind,
}

/// Classification of critical-path time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local computation.
    Compute,
    /// Message packing on the sender.
    SendOverhead,
    /// Message unpacking on the receiver.
    RecvOverhead,
    /// Time in the network between send completion and arrival.
    Flight,
    /// Waiting with nothing attributable (true idleness on the path).
    Blocked,
}

/// The critical path, decomposed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPath {
    /// Maximum final clock over all processors (end of the path).
    pub makespan: u64,
    /// Cycles of the path spent computing.
    pub compute: u64,
    /// Cycles spent packing messages.
    pub send_overhead: u64,
    /// Cycles spent unpacking messages.
    pub recv_overhead: u64,
    /// Cycles in network flight along followed message edges.
    pub flight: u64,
    /// Cycles blocked/idle on the path.
    pub blocked: u64,
    /// The path itself, in chronological order.
    pub segments: Vec<PathSegment>,
    /// True when the decomposition is provably complete: the walk
    /// reached time 0 with every cycle attributed and no events were
    /// dropped from the trace. On raw (fault-free) runs the five buckets
    /// then sum exactly to the makespan.
    pub exact: bool,
}

impl CriticalPath {
    /// Sum of the five buckets; equals [`makespan`](CriticalPath::makespan)
    /// whenever the walk covered the whole path.
    pub fn total(&self) -> u64 {
        self.compute + self.send_overhead + self.recv_overhead + self.flight + self.blocked
    }
}

/// Aggregate traffic on one (src, dst, tag) channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommEdge {
    /// Sender.
    pub src: ProcId,
    /// Receiver.
    pub dst: ProcId,
    /// Tag.
    pub tag: Tag,
    /// Messages sent.
    pub messages: u64,
    /// Total payload words sent.
    pub words: u64,
    /// Cycles receivers spent blocked on this channel.
    pub waited: u64,
    /// Frames the transport lost (fault injection).
    pub frames_lost: u64,
}

/// Where one processor's time went, over `[0, finish]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcProfile {
    /// Cycles computing.
    pub compute: u64,
    /// Cycles packing sends (incl. lost frames).
    pub send_overhead: u64,
    /// Cycles unpacking receives.
    pub recv_overhead: u64,
    /// Cycles blocked in receives.
    pub blocked: u64,
    /// The processor's final clock.
    pub finish: u64,
    /// `finish` minus everything attributed — untraced gaps.
    pub idle: u64,
}

/// Everything [`analyze`] computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// The longest dependency chain, decomposed.
    pub critical_path: CriticalPath,
    /// Per-(src, dst, tag) communication matrix, sorted by key.
    pub comm: Vec<CommEdge>,
    /// Per-processor time profiles, indexed by processor.
    pub procs: Vec<ProcProfile>,
}

/// Index of per-processor events (record order) plus FIFO send matching.
struct Indexed<'a> {
    /// Events of each processor, in record order.
    by_proc: Vec<Vec<&'a Event>>,
    /// Send events per (src, dst, tag), in send order.
    sends: BTreeMap<(usize, usize, u32), Vec<&'a Event>>,
}

fn index(trace: &Trace, n_procs: usize) -> Indexed<'_> {
    let mut by_proc: Vec<Vec<&Event>> = vec![Vec::new(); n_procs];
    let mut sends: BTreeMap<(usize, usize, u32), Vec<&Event>> = BTreeMap::new();
    for e in trace.events() {
        if e.proc.0 < n_procs {
            by_proc[e.proc.0].push(e);
        }
        if let EventKind::Send { dst, tag, .. } = e.kind {
            sends.entry((e.proc.0, dst.0, tag.0)).or_default().push(e);
        }
    }
    Indexed { by_proc, sends }
}

/// Walk the critical path backwards from the processor that finished
/// last. At each step the walk sits at time `t` on processor `p` and
/// asks what `p` was doing in the interval ending at `t`:
///
/// * a compute/send/recv interval attributes its cycles and moves `t`
///   to the interval's start;
/// * a receive that `waited` hops the message edge: flight time back to
///   the matching send's completion on the sender, then continues there;
/// * a gap before the latest event (or no event at all) is blocked time.
fn critical_path(idx: &Indexed<'_>, trace: &Trace) -> CriticalPath {
    let mut cp = CriticalPath::default();
    let mut protocol_events = false;
    let mut lost_frames = false;
    for e in trace.events() {
        match e.kind {
            EventKind::Retransmit { .. }
            | EventKind::Ack { .. }
            | EventKind::CheckpointTaken { .. }
            | EventKind::Crash { .. }
            | EventKind::Restore { .. }
            | EventKind::ReplayedFrame { .. } => protocol_events = true,
            EventKind::FrameLost { .. } => lost_frames = true,
            _ => {}
        }
    }
    // Per-proc cursor: index *one past* the next candidate event,
    // scanning right-to-left.
    let mut cursor: Vec<usize> = idx.by_proc.iter().map(Vec::len).collect();
    let (mut p, makespan) = idx
        .by_proc
        .iter()
        .enumerate()
        .map(|(p, evs)| (p, evs.last().map_or(0, |e| e.at.0)))
        .max_by_key(|&(_, at)| at)
        .unwrap_or((0, 0));
    cp.makespan = makespan;
    let mut t = makespan;
    let mut fell_back = false;
    // Each iteration either consumes one event or ends the walk; the
    // flight hop adds at most one extra iteration per receive.
    let mut fuel = 2 * trace.len() + 16;
    let mut segments = Vec::new();

    while t > 0 {
        if fuel == 0 {
            fell_back = true;
            break;
        }
        fuel -= 1;
        // Latest event on p ending at or before t.
        while cursor[p] > 0 && idx.by_proc[p][cursor[p] - 1].at.0 > t {
            cursor[p] -= 1;
        }
        if cursor[p] == 0 {
            // Nothing traced this early: idle back to time zero.
            segments.push(PathSegment {
                proc: ProcId(p),
                from: Time(0),
                to: Time(t),
                kind: SegmentKind::Blocked,
            });
            cp.blocked += t;
            t = 0;
            break;
        }
        let e = idx.by_proc[p][cursor[p] - 1];
        if e.at.0 < t {
            // Gap between the event and t: unattributed idleness.
            segments.push(PathSegment {
                proc: ProcId(p),
                from: e.at,
                to: Time(t),
                kind: SegmentKind::Blocked,
            });
            cp.blocked += t - e.at.0;
            t = e.at.0;
            continue;
        }
        cursor[p] -= 1;
        let start = e.start().0;
        match e.kind {
            EventKind::Compute { cycles } => {
                segments.push(PathSegment {
                    proc: ProcId(p),
                    from: Time(start),
                    to: Time(t),
                    kind: SegmentKind::Compute,
                });
                cp.compute += cycles;
                t = start;
            }
            EventKind::Send { cost, .. } | EventKind::FrameLost { cost, .. } => {
                segments.push(PathSegment {
                    proc: ProcId(p),
                    from: Time(start),
                    to: Time(t),
                    kind: SegmentKind::SendOverhead,
                });
                cp.send_overhead += cost;
                t = start;
            }
            EventKind::Recv {
                src,
                tag,
                waited,
                cost,
                ..
            } => {
                let unpack_start = e.at.0.saturating_sub(cost);
                segments.push(PathSegment {
                    proc: ProcId(p),
                    from: Time(unpack_start),
                    to: Time(e.at.0),
                    kind: SegmentKind::RecvOverhead,
                });
                cp.recv_overhead += cost;
                t = unpack_start;
                if waited > 0 {
                    // The receiver resumed when the message arrived:
                    // follow the edge to the sender. FIFO: count how
                    // many receives on this triple precede this one.
                    let key = (src.0, p, tag.0);
                    let k = idx.by_proc[p][..cursor[p]]
                        .iter()
                        .filter(|prior| {
                            matches!(
                                prior.kind,
                                EventKind::Recv { src: s, tag: g, .. }
                                    if s == src && g == tag
                            )
                        })
                        .count();
                    match idx.sends.get(&key).and_then(|v| v.get(k)) {
                        Some(send) if send.at.0 <= t => {
                            // Arrival == unpack start (the receiver was
                            // blocked, so clock jumped to arrival).
                            segments.push(PathSegment {
                                proc: send.proc,
                                from: send.at,
                                to: Time(t),
                                kind: SegmentKind::Flight,
                            });
                            cp.flight += t - send.at.0;
                            p = send.proc.0;
                            t = send.at.0;
                        }
                        _ => {
                            // Matching send missing (dropped from a
                            // bounded trace) or inconsistent: attribute
                            // the wait as blocked and keep walking here.
                            segments.push(PathSegment {
                                proc: ProcId(p),
                                from: Time(t.saturating_sub(waited)),
                                to: Time(t),
                                kind: SegmentKind::Blocked,
                            });
                            cp.blocked += waited;
                            t = t.saturating_sub(waited);
                            fell_back = true;
                        }
                    }
                }
            }
            EventKind::Retransmit { .. }
            | EventKind::Ack { .. }
            | EventKind::CheckpointTaken { .. }
            | EventKind::Crash { .. }
            | EventKind::Restore { .. }
            | EventKind::ReplayedFrame { .. }
            | EventKind::Finish => {
                // Instantaneous: skip.
            }
        }
    }
    segments.reverse();
    cp.segments = segments;
    cp.exact = t == 0 && !fell_back && trace.dropped() == 0 && !protocol_events && !lost_frames;
    cp
}

/// Analyze a finished trace: critical path, communication matrix, and
/// per-processor profiles. `n_procs` sizes the profile table; events on
/// processors `>= n_procs` are ignored.
pub fn analyze(trace: &Trace, n_procs: usize) -> TraceAnalysis {
    let idx = index(trace, n_procs);
    let critical = critical_path(&idx, trace);

    let mut comm: BTreeMap<(usize, usize, u32), CommEdge> = BTreeMap::new();
    let mut procs: Vec<ProcProfile> = vec![ProcProfile::default(); n_procs];
    for e in trace.events() {
        if e.proc.0 >= n_procs {
            continue;
        }
        let prof = &mut procs[e.proc.0];
        prof.finish = prof.finish.max(e.at.0);
        match e.kind {
            EventKind::Compute { cycles } => prof.compute += cycles,
            EventKind::Send {
                dst,
                tag,
                words,
                cost,
            } => {
                prof.send_overhead += cost;
                let edge = comm.entry((e.proc.0, dst.0, tag.0)).or_insert(CommEdge {
                    src: e.proc,
                    dst,
                    tag,
                    messages: 0,
                    words: 0,
                    waited: 0,
                    frames_lost: 0,
                });
                edge.messages += 1;
                edge.words += words as u64;
            }
            EventKind::Recv {
                src,
                tag,
                waited,
                cost,
                ..
            } => {
                prof.recv_overhead += cost;
                prof.blocked += waited;
                let edge = comm.entry((src.0, e.proc.0, tag.0)).or_insert(CommEdge {
                    src,
                    dst: e.proc,
                    tag,
                    messages: 0,
                    words: 0,
                    waited: 0,
                    frames_lost: 0,
                });
                edge.waited += waited;
            }
            EventKind::FrameLost {
                dst,
                tag,
                words,
                cost,
            } => {
                prof.send_overhead += cost;
                let edge = comm.entry((e.proc.0, dst.0, tag.0)).or_insert(CommEdge {
                    src: e.proc,
                    dst,
                    tag,
                    messages: 0,
                    words: 0,
                    waited: 0,
                    frames_lost: 0,
                });
                edge.frames_lost += 1;
                edge.words += words as u64;
            }
            EventKind::Retransmit { .. }
            | EventKind::Ack { .. }
            | EventKind::CheckpointTaken { .. }
            | EventKind::Crash { .. }
            | EventKind::Restore { .. }
            | EventKind::ReplayedFrame { .. }
            | EventKind::Finish => {}
        }
    }
    for prof in &mut procs {
        let attributed = prof.compute + prof.send_overhead + prof.recv_overhead + prof.blocked;
        prof.idle = prof.finish.saturating_sub(attributed);
    }

    TraceAnalysis {
        critical_path: critical,
        comm: comm.into_values().collect(),
        procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fabric::Machine;
    use crate::message::{ProcId, Tag, Time};

    /// Hand-computed two-processor chain, driven through the real
    /// fabric so the trace is exactly what a run records:
    /// P0 computes 500 then sends one word; P1 receives (blocking from
    /// t=0) then computes 100. The critical path is
    /// compute(500) + send_cost + flight + recv_cost + compute(100),
    /// with zero blocked time — and its total is the makespan.
    #[test]
    fn two_proc_chain_decomposes_to_hand_computed_makespan() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c);
        m.enable_trace(crate::trace::Trace::bounded(1024));
        m.tick(ProcId(0), 500);
        m.send(ProcId(0), ProcId(1), Tag(0), vec![7]);
        m.finish(ProcId(0));
        let got = m.try_recv(ProcId(1), ProcId(0), Tag(0)).expect("delivered");
        assert_eq!(got, vec![7]);
        m.tick(ProcId(1), 100);
        m.finish(ProcId(1));

        let trace = m.snapshot_trace();
        let a = analyze(&trace, 2);
        let cp = &a.critical_path;

        let send_cost = c.send_cost(1);
        let recv_cost = c.recv_cost(1);
        assert_eq!(cp.compute, 600);
        assert_eq!(cp.send_overhead, send_cost);
        assert_eq!(cp.recv_overhead, recv_cost);
        assert_eq!(cp.flight, c.flight);
        assert_eq!(
            cp.blocked, 0,
            "the receiver's wait is covered by P0's chain"
        );
        assert_eq!(
            cp.makespan,
            500 + send_cost + c.flight + recv_cost + 100,
            "hand-computed makespan"
        );
        assert_eq!(cp.total(), cp.makespan, "decomposition is exact");
        assert!(cp.exact);

        // Segments are chronological and start from t=0.
        assert_eq!(cp.segments.first().map(|s| s.from), Some(Time(0)));
        assert_eq!(cp.segments.last().map(|s| s.to.0), Some(cp.makespan));
        for w in cp.segments.windows(2) {
            assert!(w[0].to.0 <= w[1].from.0 || w[0].to.0 == w[1].from.0);
        }

        // The path hops processors exactly once, over the flight edge.
        assert!(cp
            .segments
            .iter()
            .any(|s| s.kind == SegmentKind::Flight && s.proc == ProcId(0)));

        // Communication matrix: one edge, one message, one word.
        assert_eq!(a.comm.len(), 1);
        assert_eq!(a.comm[0].messages, 1);
        assert_eq!(a.comm[0].words, 1);
        assert!(a.comm[0].waited > 0, "P1 blocked before the arrival");

        // P1's profile: blocked + overhead + compute == finish (no idle).
        let p1 = &a.procs[1];
        assert_eq!(p1.idle, 0);
        assert_eq!(p1.compute, 100);
        assert_eq!(p1.finish, cp.makespan);
    }

    /// A receiver that was *not* blocked (message already arrived) keeps
    /// the path on its own processor — no flight hop.
    #[test]
    fn unblocked_recv_stays_on_processor() {
        let c = CostModel::shared_memory();
        let mut m = Machine::new(2, c);
        m.enable_trace(crate::trace::Trace::bounded(64));
        m.send(ProcId(0), ProcId(1), Tag(0), vec![1]);
        // P1 computes past the arrival before receiving.
        m.tick(ProcId(1), 1000);
        m.try_recv(ProcId(1), ProcId(0), Tag(0)).expect("delivered");
        m.finish(ProcId(1));
        m.finish(ProcId(0));

        let a = analyze(&m.snapshot_trace(), 2);
        assert_eq!(a.critical_path.flight, 0, "no blocked recv, no hop");
        assert!(a.critical_path.total() == a.critical_path.makespan);
        assert!(a.critical_path.exact);
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let a = analyze(&crate::trace::Trace::disabled(), 2);
        assert_eq!(a.critical_path.makespan, 0);
        assert_eq!(a.critical_path.total(), 0);
        assert!(a.comm.is_empty());
    }
}
