//! The machine cost model.

/// Cycle costs charged by the simulator for each kind of action.
///
/// The defaults ([`CostModel::ipsc2`]) put the machine in the regime the
/// paper describes: *"Message-passing systems typically take hundreds to
/// thousands of cycles to deliver messages"* (§1), with a large fixed
/// start-up cost per message and a small per-word cost — the property that
/// makes message combining (§4) profitable.
///
/// All costs are in abstract cycles; only ratios matter for the shape of
/// the reproduced figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One arithmetic/logical operation.
    pub alu_op: u64,
    /// One local memory access (scalar load/store).
    pub mem_op: u64,
    /// One I-structure read or write (tag check + access).
    pub istruct_op: u64,
    /// Evaluating one ownership guard (`if P == mynode() …`).
    pub guard: u64,
    /// Loop bookkeeping per iteration (increment, compare, branch).
    pub loop_overhead: u64,
    /// Fixed cost paid by the sender per message (packing + system call).
    pub send_startup: u64,
    /// Additional sender cost per payload word.
    pub send_per_word: u64,
    /// Network transit time from send completion to availability at the
    /// destination; identical for every processor pair (§2.2).
    pub flight: u64,
    /// Fixed cost paid by the receiver per message (unpacking).
    pub recv_overhead: u64,
    /// Additional receiver cost per payload word.
    pub recv_per_word: u64,
}

impl CostModel {
    /// Parameters calibrated to the Intel iPSC/2 regime: message start-up
    /// about three orders of magnitude above an ALU operation.
    ///
    /// The real iPSC/2 had a ~350 µs small-message latency against ~0.1 µs
    /// instruction times; we use 1,000 cycles of sender start-up plus 400
    /// cycles of receiver overhead and 100 cycles of flight so a one-word
    /// round trip costs ≈1,500 cycles.
    pub fn ipsc2() -> Self {
        CostModel {
            alu_op: 1,
            mem_op: 1,
            istruct_op: 3,
            guard: 2,
            loop_overhead: 2,
            send_startup: 1000,
            send_per_word: 2,
            flight: 100,
            recv_overhead: 400,
            recv_per_word: 2,
        }
    }

    /// A zero-cost model: every action is free. Useful when only message
    /// *counts* are of interest (the footnote-3 table) or when testing VM
    /// semantics independently of timing.
    pub fn zero() -> Self {
        CostModel {
            alu_op: 0,
            mem_op: 0,
            istruct_op: 0,
            guard: 0,
            loop_overhead: 0,
            send_startup: 0,
            send_per_word: 0,
            flight: 0,
            recv_overhead: 0,
            recv_per_word: 0,
        }
    }

    /// A shared-memory-like regime: non-local access costs tens of cycles
    /// (§1: *"the cost of accessing a non-local data item is on the order
    /// of tens of cycles"*). Used by the ablation bench that asks whether
    /// the optimizations still matter when messages are cheap.
    pub fn shared_memory() -> Self {
        CostModel {
            alu_op: 1,
            mem_op: 1,
            istruct_op: 3,
            guard: 2,
            loop_overhead: 2,
            send_startup: 20,
            send_per_word: 1,
            flight: 5,
            recv_overhead: 10,
            recv_per_word: 1,
        }
    }

    /// Sender-side cost of a message of `words` payload words.
    pub fn send_cost(&self, words: usize) -> u64 {
        self.send_startup + self.send_per_word * words as u64
    }

    /// Receiver-side cost of a message of `words` payload words.
    pub fn recv_cost(&self, words: usize) -> u64 {
        self.recv_overhead + self.recv_per_word * words as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ipsc2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipsc2_is_startup_dominated() {
        let c = CostModel::ipsc2();
        // Sending 100 one-word messages must cost much more than one
        // 100-word message — the premise of the vectorization optimization.
        let many = 100 * c.send_cost(1);
        let one = c.send_cost(100);
        assert!(many > 10 * one);
    }

    #[test]
    fn zero_model_is_free() {
        let c = CostModel::zero();
        assert_eq!(c.send_cost(1000), 0);
        assert_eq!(c.recv_cost(1000), 0);
    }

    #[test]
    fn default_is_ipsc2() {
        assert_eq!(CostModel::default(), CostModel::ipsc2());
    }

    #[test]
    fn shared_memory_messages_are_cheap() {
        let sm = CostModel::shared_memory();
        let mp = CostModel::ipsc2();
        assert!(sm.send_cost(1) * 10 < mp.send_cost(1));
    }
}
