//! Lock-free SPSC word rings: the threaded backend's interconnect.
//!
//! The first threaded backend moved every message through
//! `std::sync::mpsc` — one heap-allocated `Vec<Word>` plus one channel
//! node per send, and one futex wake per message. On the fine-grained
//! wavefront traffic the paper's decompositions generate (§4: send each
//! value as soon as it is produced), that overhead dwarfs the payload
//! work and the threaded backend *loses* to the sequential simulator.
//!
//! This module replaces the channel with the classic single-producer /
//! single-consumer ring buffer:
//!
//! * one preallocated power-of-two ring of raw `u64` words per ordered
//!   `(src, dst)` processor pair — no allocation on the wire, ever;
//! * head and tail indices on separate cache lines ([`CachePadded`]),
//!   each written by exactly one side, read by the other through a
//!   cached copy that is only refreshed on apparent-full / apparent-
//!   empty, so the steady state is plain loads and stores;
//! * *batched publication*: a frame's words are copied in and the tail
//!   is published once per frame (or once per chunk when the frame must
//!   be split around a full ring), not once per word;
//! * *wakeup batching* through a [`Doorbell`]: consumers park on their
//!   doorbell only after re-checking every inbox, and producers ring it
//!   with a single atomic load in the fast path — a parked peer costs
//!   one `unpark`, a running peer costs no syscall at all.
//!
//! # Wire frame layout
//!
//! Messages travel as flat frames of `u64` words:
//!
//! ```text
//! w0: (payload_len << 32) | tag
//! w1: arrival stamp (logical Time)
//! w2..: payload words
//! ```
//!
//! Source and destination are implied by ring identity (there is one
//! ring per ordered pair), so no addressing bytes travel at all. The
//! consumer reassembles frames incrementally — a frame larger than the
//! ring is streamed through it chunk by chunk.

use crate::message::Word;
use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::time::Instant;

/// Pad-and-align wrapper keeping one atomic per cache line, so the
/// producer's tail writes never invalidate the consumer's head line.
/// 128 bytes covers the adjacent-line prefetcher on x86 and the 128-byte
/// lines on some aarch64 parts.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// Shared core of one ring: the buffer plus the two monotone positions.
/// `head` is written only by the consumer, `tail` only by the producer;
/// both grow without bound and are reduced mod capacity via `mask`.
#[derive(Debug)]
struct RingCore {
    mask: u64,
    buf: Box<[UnsafeCell<u64>]>,
    /// Consumer position: everything below it has been read.
    head: CachePadded<AtomicU64>,
    /// Producer position: everything below it has been published.
    tail: CachePadded<AtomicU64>,
}

// One side writes a slot strictly before publishing it via `tail`
// (Release) and the other reads it strictly after observing that publish
// (Acquire), so no slot is ever accessed concurrently.
unsafe impl Send for RingCore {}
unsafe impl Sync for RingCore {}

/// Producer half of a word ring. `!Clone` — exactly one producer.
#[derive(Debug)]
pub struct RingTx {
    core: Arc<RingCore>,
    /// Local copy of the producer position (authoritative).
    tail: u64,
    /// Last observed consumer position; refreshed only when the ring
    /// looks full, so steady-state pushes never touch the head line.
    cached_head: u64,
}

/// Consumer half of a word ring. `!Clone` — exactly one consumer.
#[derive(Debug)]
pub struct RingRx {
    core: Arc<RingCore>,
    /// Local copy of the consumer position (authoritative).
    head: u64,
    /// Last observed producer position; refreshed only when the ring
    /// looks empty.
    cached_tail: u64,
}

/// A preallocated SPSC ring of `capacity` raw words. `capacity` must be
/// a power of two (and at least 8 so a frame header always fits).
///
/// # Panics
///
/// Panics on a non-power-of-two or undersized capacity.
pub fn ring(capacity: usize) -> (RingTx, RingRx) {
    assert!(
        capacity.is_power_of_two() && capacity >= 8,
        "ring capacity must be a power of two >= 8, got {capacity}"
    );
    let core = Arc::new(RingCore {
        mask: capacity as u64 - 1,
        buf: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
    });
    (
        RingTx {
            core: Arc::clone(&core),
            tail: 0,
            cached_head: 0,
        },
        RingRx {
            core,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl RingTx {
    /// Word capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.core.buf.len()
    }

    /// Free slots, refreshing the cached head if the ring looks full.
    fn free(&mut self) -> usize {
        let cap = self.core.buf.len() as u64;
        if self.tail - self.cached_head == cap {
            self.cached_head = self.core.head.0.load(Ordering::Acquire);
        }
        (cap - (self.tail - self.cached_head)) as usize
    }

    /// Words currently queued (produced but not yet consumed), from the
    /// producer's point of view: one Acquire load of the live head, no
    /// cache update. Metrics probe — the consumer may already have
    /// drained what this reports.
    pub fn occupancy(&self) -> u64 {
        self.tail - self.core.head.0.load(Ordering::Acquire)
    }

    /// Copy as many leading words of `words` into the ring as fit and
    /// publish them with a single Release store. Returns how many were
    /// written (possibly zero).
    pub fn push(&mut self, words: &[u64]) -> usize {
        let k = self.free().min(words.len());
        if k == 0 {
            return 0;
        }
        for (i, &w) in words[..k].iter().enumerate() {
            let slot = ((self.tail + i as u64) & self.core.mask) as usize;
            // SAFETY: slots in [tail, tail+k) are unpublished and owned
            // by the producer until the Release store below.
            unsafe { *self.core.buf[slot].get() = w };
        }
        self.tail += k as u64;
        self.core.tail.0.store(self.tail, Ordering::Release);
        k
    }
}

impl RingRx {
    /// Words available to read, refreshing the cached tail if the ring
    /// looks empty.
    fn available(&mut self) -> usize {
        if self.cached_tail == self.head {
            self.cached_tail = self.core.tail.0.load(Ordering::Acquire);
        }
        (self.cached_tail - self.head) as usize
    }

    /// Read one word without publishing the consumed slot yet; callers
    /// batch the head publication via [`commit`](RingRx::commit).
    fn pop(&mut self) -> u64 {
        debug_assert!(self.cached_tail > self.head);
        let slot = (self.head & self.core.mask) as usize;
        // SAFETY: slots below the Acquire-observed tail are published
        // and owned by the consumer until `commit` releases them.
        let w = unsafe { *self.core.buf[slot].get() };
        self.head += 1;
        w
    }

    /// Publish every slot consumed so far back to the producer.
    fn commit(&mut self) {
        self.core.head.0.store(self.head, Ordering::Release);
    }
}

const BELL_EMPTY: u32 = 0;
const BELL_PARKED: u32 = 1;
const BELL_NOTIFIED: u32 = 2;

/// Wakeup batching: one doorbell per endpoint, rung by peers after they
/// publish work (frames or a status change) for it.
///
/// The consumer protocol is: [`prepare`](Doorbell::prepare), then
/// re-check every wake source (inboxes *and* peer statuses), then either
/// [`cancel`](Doorbell::cancel) (something arrived) or
/// [`park_until`](Doorbell::park_until). The producer's
/// [`ring`](Doorbell::ring) and the consumer's `prepare` both issue
/// `SeqCst` fences, so at least one side observes the other — a publish
/// concurrent with an arming either gets consumed by the re-check or
/// wakes the park. Missed wakeups are therefore impossible, and parks
/// always carry a deadline anyway.
#[derive(Debug, Default)]
pub struct Doorbell {
    state: AtomicU32,
    owner: OnceLock<Thread>,
}

impl Doorbell {
    /// A fresh, unowned doorbell.
    pub fn new() -> Self {
        Doorbell::default()
    }

    /// Bind the doorbell to the calling thread. Must be called by the
    /// owning thread before its first `park_until`.
    pub fn register(&self) {
        let _ = self.owner.set(std::thread::current());
    }

    /// Ring the bell: wake the owner iff it is parked (or about to
    /// park). Fast path for a running owner is one atomic load.
    pub fn ring(&self) {
        fence(Ordering::SeqCst);
        if self.state.load(Ordering::SeqCst) == BELL_PARKED
            && self.state.swap(BELL_NOTIFIED, Ordering::SeqCst) == BELL_PARKED
        {
            if let Some(t) = self.owner.get() {
                t.unpark();
            }
        }
    }

    /// Arm the bell before the pre-park re-check.
    pub fn prepare(&self) {
        self.state.store(BELL_PARKED, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Disarm without parking (the re-check found work).
    pub fn cancel(&self) {
        self.state.store(BELL_EMPTY, Ordering::SeqCst);
    }

    /// Park the owning thread until `deadline`, a ring, or a spurious
    /// wakeup — whichever comes first. The caller loops and re-checks
    /// its wake sources regardless of why it woke.
    pub fn park_until(&self, deadline: Instant) {
        if self.state.load(Ordering::SeqCst) == BELL_PARKED {
            let now = Instant::now();
            if deadline > now {
                std::thread::park_timeout(deadline - now);
            }
        }
        self.state.store(BELL_EMPTY, Ordering::SeqCst);
    }
}

/// Encode a frame header: `(payload_len << 32) | tag`.
fn header(tag: u32, len: usize) -> u64 {
    debug_assert!(len < (1 << 32), "payload too large for a frame header");
    ((len as u64) << 32) | tag as u64
}

/// Producer end of one directed processor pair: frames in, words out.
#[derive(Debug)]
pub struct FrameTx {
    tx: RingTx,
}

impl FrameTx {
    /// Wrap a ring producer.
    pub fn new(tx: RingTx) -> Self {
        FrameTx { tx }
    }

    /// Words currently queued in the underlying ring (metrics probe;
    /// see [`RingTx::occupancy`]).
    pub fn occupancy(&self) -> u64 {
        self.tx.occupancy()
    }

    /// Write one `[header, arrives, payload…]` frame, blocking through
    /// `stall` while the ring is full. `stall` is the caller's "make
    /// progress" hook — ring the peer's doorbell, drain own inboxes (a
    /// mutually-full pair would otherwise deadlock), yield — and returns
    /// `false` to abandon the send (the peer is gone and will never
    /// drain this ring again; a half-written frame is then harmless
    /// because nobody reads it). Returns whether the frame was fully
    /// published.
    pub fn send(
        &mut self,
        tag: u32,
        arrives: u64,
        payload: &[Word],
        mut stall: impl FnMut() -> bool,
    ) -> bool {
        let hdr = [header(tag, payload.len()), arrives];
        // Fast path: everything fits — one copy, one publication.
        if self.tx.free() >= 2 + payload.len() {
            let mut k = self.tx.push(&hdr);
            debug_assert_eq!(k, 2);
            // Word is i64 on the program side; the wire carries raw bits.
            for chunk in payload.chunks(64) {
                let words: Vec<u64> = chunk.iter().map(|&w| w as u64).collect();
                k = self.tx.push(&words);
                debug_assert_eq!(k, chunk.len());
            }
            return true;
        }
        // Slow path: stream the frame through chunk by chunk.
        let mut done = 0;
        while done < 2 {
            done += self.tx.push(&hdr[done..]);
            if done < 2 && !stall() {
                return false;
            }
        }
        let mut off = 0;
        let mut scratch = [0u64; 64];
        while off < payload.len() {
            let n = (payload.len() - off).min(scratch.len());
            for (s, &w) in scratch.iter_mut().zip(&payload[off..off + n]) {
                *s = w as u64;
            }
            let mut written = 0;
            while written < n {
                written += self.tx.push(&scratch[written..n]);
                if written < n && !stall() {
                    return false;
                }
            }
            off += n;
        }
        true
    }
}

/// In-progress frame on the consumer side: a frame may arrive split
/// across several publishes (or several drain calls) when it is larger
/// than the free space — or the whole ring.
#[derive(Debug)]
struct Partial {
    tag: u32,
    arrives: u64,
    remaining: usize,
    words: Vec<Word>,
}

/// Consumer end of one directed processor pair: words in, frames out.
#[derive(Debug)]
pub struct FrameRx {
    rx: RingRx,
    /// A header word read while its arrival stamp was still in flight.
    pending_hdr: Option<u64>,
    /// Frame under reassembly.
    cur: Option<Partial>,
}

impl FrameRx {
    /// Wrap a ring consumer.
    pub fn new(rx: RingRx) -> Self {
        FrameRx {
            rx,
            pending_hdr: None,
            cur: None,
        }
    }

    /// Drain every fully-arrived frame, handing each to `deliver` as
    /// `(tag, arrives, payload)`. Payload buffers come from `pool`.
    /// Returns the number of frames delivered; consumed slots are
    /// published back to the producer once per call.
    pub fn drain(
        &mut self,
        pool: &mut BufPool,
        mut deliver: impl FnMut(u32, u64, Vec<Word>),
    ) -> usize {
        let mut delivered = 0;
        loop {
            let mut avail = self.rx.available();
            if avail == 0 {
                break;
            }
            if self.cur.is_none() {
                if self.pending_hdr.is_none() {
                    self.pending_hdr = Some(self.rx.pop());
                    avail -= 1;
                    if avail == 0 {
                        continue; // re-poll for the arrival stamp
                    }
                }
                let w0 = self.pending_hdr.take().expect("header just read");
                let arrives = self.rx.pop();
                avail -= 1;
                let len = (w0 >> 32) as usize;
                let mut words = pool.get();
                words.reserve(len);
                self.cur = Some(Partial {
                    tag: w0 as u32,
                    arrives,
                    remaining: len,
                    words,
                });
            }
            let p = self.cur.as_mut().expect("frame in progress");
            let take = avail.min(p.remaining);
            for _ in 0..take {
                p.words.push(self.rx.pop() as Word);
            }
            p.remaining -= take;
            if p.remaining == 0 {
                let done = self.cur.take().expect("frame complete");
                deliver(done.tag, done.arrives, done.words);
                delivered += 1;
            }
        }
        self.rx.commit();
        delivered
    }
}

/// Recycler for payload buffers: the consume path returns spent `Vec`s
/// here and the reassembly path reuses them, so steady-state traffic
/// allocates nothing.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<Word>>,
}

/// Buffers retained per endpoint; beyond this, returns are dropped.
const POOL_CAP: usize = 256;

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    /// A cleared buffer, recycled if one is available.
    pub fn get(&mut self) -> Vec<Word> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a spent buffer for reuse.
    pub fn put(&mut self, mut buf: Vec<Word>) {
        if self.free.len() < POOL_CAP {
            buf.clear();
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn collect(rx: &mut FrameRx, pool: &mut BufPool) -> Vec<(u32, u64, Vec<Word>)> {
        let mut out = Vec::new();
        rx.drain(pool, |tag, at, words| out.push((tag, at, words)));
        out
    }

    #[test]
    fn rejects_bad_capacities() {
        for cap in [0, 3, 6, 12, 100] {
            assert!(std::panic::catch_unwind(|| ring(cap)).is_err(), "{cap}");
        }
        let (tx, _rx) = ring(8);
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    fn words_round_trip_in_order() {
        let (mut tx, mut rx) = ring(16);
        assert_eq!(tx.push(&[1, 2, 3]), 3);
        rx.cached_tail = rx.core.tail.0.load(Ordering::Acquire);
        assert_eq!(rx.available(), 3);
        assert_eq!(rx.pop(), 1);
        assert_eq!(rx.pop(), 2);
        assert_eq!(rx.pop(), 3);
        rx.commit();
        assert_eq!(rx.available(), 0);
    }

    #[test]
    fn push_fills_to_capacity_boundary_and_no_further() {
        let (mut tx, mut rx) = ring(8);
        let words: Vec<u64> = (0..10).collect();
        // Exactly capacity words fit; the rest are refused.
        assert_eq!(tx.push(&words), 8);
        assert_eq!(tx.push(&[99]), 0, "full ring accepts nothing");
        // Free one slot: exactly one more fits.
        assert_eq!(rx.available(), 8);
        assert_eq!(rx.pop(), 0);
        rx.commit();
        assert_eq!(tx.push(&[99, 100]), 1);
        let mut got = Vec::new();
        while got.len() < 8 {
            // `available` refreshes the cached tail; `pop` alone must only
            // be called while it reports words outstanding.
            while rx.available() > 0 {
                got.push(rx.pop());
            }
            rx.commit();
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 99]);
    }

    #[test]
    fn wraparound_preserves_order_across_many_laps() {
        let (mut tx, mut rx) = ring(8);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // 1000 words through an 8-slot ring: >120 wraps.
        while next_out < 1000 {
            while next_in < 1000 && tx.push(&[next_in]) == 1 {
                next_in += 1;
            }
            while rx.available() > 0 {
                assert_eq!(rx.pop(), next_out);
                next_out += 1;
            }
            rx.commit();
        }
        assert_eq!(next_in, 1000);
    }

    #[test]
    fn frames_round_trip_through_small_ring() {
        // Ring smaller than the frame: send must chunk, drain must
        // reassemble across partial reads.
        let (tx, rx) = ring(8);
        let mut ftx = FrameTx::new(tx);
        let mut frx = FrameRx::new(rx);
        let mut pool = BufPool::new();
        let payload: Vec<Word> = (0..50).map(|i| i - 25).collect();
        let mut done = false;
        let mut got = Vec::new();
        // Single-threaded: the stall hook drains the consumer side.
        let sent = {
            let got = &mut got;
            let done = &mut done;
            ftx.send(7, 42, &payload, || {
                frx.drain(&mut pool, |tag, at, words| {
                    assert_eq!((tag, at), (7, 42));
                    got.extend(words);
                    *done = true;
                });
                true
            })
        };
        assert!(sent);
        frx.drain(&mut pool, |tag, at, words| {
            assert_eq!((tag, at), (7, 42));
            got.extend(words);
            done = true;
        });
        assert!(done);
        assert_eq!(got, payload);
    }

    #[test]
    fn many_frames_with_distinct_tags_and_stamps() {
        let (tx, rx) = ring(64);
        let mut ftx = FrameTx::new(tx);
        let mut frx = FrameRx::new(rx);
        let mut pool = BufPool::new();
        let mut expect = Vec::new();
        for i in 0..200u64 {
            let payload: Vec<Word> = (0..(i % 7) as Word).collect();
            expect.push((i as u32, i * 3, payload.clone()));
            assert!(ftx.send(i as u32, i * 3, &payload, || {
                // Ring full mid-burst: drain into a side buffer.
                true
            }));
            if i % 5 == 4 {
                for (tag, at, words) in collect(&mut frx, &mut pool) {
                    let (etag, eat, ewords) = expect.remove(0);
                    assert_eq!((tag, at, &words), (etag, eat, &ewords));
                    pool.put(words);
                }
            }
        }
        for (tag, at, words) in collect(&mut frx, &mut pool) {
            let (etag, eat, ewords) = expect.remove(0);
            assert_eq!((tag, at, &words), (etag, eat, &ewords));
        }
        assert!(expect.is_empty());
    }

    #[test]
    fn empty_payload_frames_carry_header_only() {
        let (tx, rx) = ring(8);
        let mut ftx = FrameTx::new(tx);
        let mut frx = FrameRx::new(rx);
        let mut pool = BufPool::new();
        let mut got = Vec::new();
        // Drain every third send: an 8-word ring holds at most four
        // header-only frames, so the producer alone would wedge.
        for i in 0..20 {
            assert!(ftx.send(3, i, &[], || true));
            if i % 3 == 0 {
                frx.drain(&mut pool, |tag, at, words| got.push((tag, at, words)));
            }
        }
        got.extend(collect(&mut frx, &mut pool));
        assert_eq!(got.len(), 20);
        for (i, (tag, at, words)) in got.into_iter().enumerate() {
            assert_eq!((tag, at), (3, i as u64));
            assert!(words.is_empty());
        }
    }

    #[test]
    fn abandoned_send_returns_false_when_stall_gives_up() {
        let (tx, _rx) = ring(8);
        let mut ftx = FrameTx::new(tx);
        let payload: Vec<Word> = (0..100).collect();
        let mut stalls = 0;
        assert!(!ftx.send(1, 0, &payload, || {
            stalls += 1;
            false
        }));
        assert_eq!(stalls, 1, "gives up on the first refused stall");
    }

    #[test]
    fn cross_thread_stream_is_fifo_and_complete() {
        let (tx, rx) = ring(32);
        let mut ftx = FrameTx::new(tx);
        let mut frx = FrameRx::new(rx);
        let bell = Arc::new(Doorbell::new());
        let bell2 = Arc::clone(&bell);
        const N: u64 = 5_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let payload: Vec<Word> = (0..(i % 11) as Word).map(|w| w + i as Word).collect();
                assert!(ftx.send((i % 13) as u32, i, &payload, || {
                    bell2.ring();
                    std::thread::yield_now();
                    true
                }));
                bell2.ring();
            }
        });
        bell.register();
        let mut pool = BufPool::new();
        let mut seen = 0u64;
        while seen < N {
            frx.drain(&mut pool, |tag, at, words| {
                assert_eq!(at, seen);
                assert_eq!(tag, (seen % 13) as u32);
                let expect: Vec<Word> =
                    (0..(seen % 11) as Word).map(|w| w + seen as Word).collect();
                assert_eq!(words, expect);
                seen += 1;
            });
            if seen < N {
                bell.prepare();
                let more = {
                    let mut any = false;
                    frx.drain(&mut pool, |_, at, _words| {
                        assert_eq!(at, seen);
                        seen += 1;
                        any = true;
                    });
                    any
                };
                if more {
                    bell.cancel();
                } else {
                    bell.park_until(Instant::now() + std::time::Duration::from_millis(50));
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, N);
    }

    #[test]
    fn doorbell_wakes_a_parked_thread() {
        let bell = Arc::new(Doorbell::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (b, f) = (Arc::clone(&bell), Arc::clone(&flag));
        let t = std::thread::spawn(move || {
            b.register();
            loop {
                b.prepare();
                if f.load(Ordering::SeqCst) {
                    b.cancel();
                    return;
                }
                // Deadline far away: a missed wakeup would hang the test.
                b.park_until(Instant::now() + std::time::Duration::from_secs(30));
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        bell.ring();
        t.join().unwrap();
    }

    #[test]
    fn buf_pool_recycles_and_caps() {
        let mut pool = BufPool::new();
        let mut b = pool.get();
        b.extend_from_slice(&[1, 2, 3]);
        let cap = b.capacity();
        pool.put(b);
        let b2 = pool.get();
        assert!(b2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b2.capacity(), cap, "allocation is reused");
    }
}
