//! Execution statistics.

use crate::fault::FaultCounts;
use crate::message::Time;

/// Cumulative traffic through the interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total messages delivered to the network.
    pub messages: u64,
    /// Total payload words across all messages.
    pub words: u64,
    /// High-water mark of simultaneously queued messages.
    pub max_in_flight: u64,
}

/// Per-processor execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Messages sent by this processor.
    pub sends: u64,
    /// Messages received by this processor.
    pub recvs: u64,
    /// Payload words sent.
    pub words_sent: u64,
    /// Cycles spent blocked waiting for a message that had not yet
    /// arrived (receiver clock jumped forward to the arrival time).
    pub idle_cycles: u64,
    /// Instructions (cost-model charges other than send/recv) executed.
    pub ops: u64,
}

/// A complete statistics snapshot for a machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Interconnect totals.
    pub network: NetworkStats,
    /// One entry per processor.
    pub procs: Vec<ProcStats>,
    /// Final logical clock of each processor.
    pub clocks: Vec<Time>,
}

impl MachineStats {
    /// The simulated execution time of the whole run: the maximum final
    /// clock over all processors. This is what Figures 6 and 7 plot.
    pub fn makespan(&self) -> Time {
        self.clocks.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// Total messages (convenience for the footnote-3 table).
    pub fn total_messages(&self) -> u64 {
        self.network.messages
    }

    /// Load imbalance: max busy clock over mean clock, as a rough
    /// indicator (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.clocks.is_empty() {
            return 1.0;
        }
        let max = self.makespan().0 as f64;
        let mean = self.clocks.iter().map(|t| t.0 as f64).sum::<f64>() / self.clocks.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// What the fault-injection and reliable-delivery machinery did during a
/// run. Attached to [`RunReport`](crate::RunReport) whenever a run used
/// the reliability layer, so drivers can observe degradation without
/// parsing logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults the plan actually injected (drops, dups, delays, reorders,
    /// stalls).
    pub injected: FaultCounts,
    /// Data frames retransmitted after a timeout.
    pub retransmits: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
    /// Duplicate data frames discarded by receive-side dedup.
    pub dup_frames_dropped: u64,
    /// Largest sequence-number gap any receive stream observed (0 means
    /// nothing ever arrived out of order).
    pub max_gap: u64,
    /// Raw frames still sitting in the transport when the run ended —
    /// late duplicates and stragglers the protocol already made redundant.
    /// Program-level delivery is tracked separately and must be complete.
    pub raw_leftover: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_report_defaults_to_quiet() {
        let r = FaultReport::default();
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.injected.total(), 0);
    }

    #[test]
    fn makespan_is_max_clock() {
        let s = MachineStats {
            clocks: vec![Time(5), Time(42), Time(17)],
            ..Default::default()
        };
        assert_eq!(s.makespan(), Time(42));
    }

    #[test]
    fn makespan_of_empty_machine_is_zero() {
        assert_eq!(MachineStats::default().makespan(), Time::ZERO);
    }

    #[test]
    fn imbalance_balanced_is_one() {
        let s = MachineStats {
            clocks: vec![Time(10), Time(10)],
            ..Default::default()
        };
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let s = MachineStats {
            clocks: vec![Time(30), Time(10)],
            ..Default::default()
        };
        assert!(s.imbalance() > 1.4);
    }
}
