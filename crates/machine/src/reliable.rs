//! Reliable delivery over an unreliable fabric.
//!
//! The raw fabric guarantees nothing once a [`FaultPlan`](crate::FaultPlan)
//! is in force: frames may be dropped, duplicated, delayed, or reordered
//! within a `(src, dst, tag)` triple. This module supplies the classic
//! remedy — per-stream sequence numbers, cumulative positive
//! acknowledgements, and bounded retransmission with exponential backoff —
//! as backend-neutral building blocks. The simulator's
//! [`Scheduler::run_faulty`](crate::Scheduler::run_faulty) instantiates
//! them with logical-clock deadlines ([`Time`]); the threaded backend with
//! wall-clock deadlines ([`std::time::Instant`]).
//!
//! # Wire format
//!
//! A *data frame* on `(src, dst, tag)` is the program payload prefixed
//! with one word: `[seq, w0, w1, …]`, where `seq` is the zero-based
//! position of the message in its stream. An *ack frame* travels on the
//! reversed pair under the companion tag [`ack_tag`]`(tag)` — the original
//! tag with bit 31 set — and carries a single word: the *cumulative*
//! acknowledgement `n`, meaning "every sequence number below `n` has been
//! received". Cumulative acks are idempotent, so lost, duplicated, or
//! reordered acks never corrupt the protocol; at worst they cause a
//! spurious retransmission, which the receive-side dedup absorbs.
//!
//! Program tags must therefore stay below [`ACK_TAG_BIT`]; the compiler
//! allocates small dense tags, so the top bit is free by construction
//! (debug-asserted at the send site).

use crate::message::{Tag, Time, Word};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Tag-space bit reserved for acknowledgement streams: the ack channel
/// for `(src, dst, tag)` is `(dst, src, tag | ACK_TAG_BIT)`.
pub const ACK_TAG_BIT: u32 = 1 << 31;

/// The companion acknowledgement tag of a data tag.
pub fn ack_tag(t: Tag) -> Tag {
    Tag(t.0 | ACK_TAG_BIT)
}

/// Is this tag an acknowledgement stream?
pub fn is_ack_tag(t: Tag) -> bool {
    t.0 & ACK_TAG_BIT != 0
}

/// Prefix `payload` with its sequence number.
pub fn frame(seq: u64, payload: &[Word]) -> Vec<Word> {
    let mut f = Vec::with_capacity(payload.len() + 1);
    f.push(seq as Word);
    f.extend_from_slice(payload);
    f
}

/// Prefix `payload` with its sequence number, as a shared immutable
/// slice. The retransmission window, checkpoints, and the wire path all
/// hold the *same* allocation — retransmitting or snapshotting a frame
/// is a reference-count bump, never a copy.
pub fn frame_arc(seq: u64, payload: &[Word]) -> Arc<[Word]> {
    std::iter::once(seq as Word)
        .chain(payload.iter().copied())
        .collect()
}

/// Split a data frame back into `(seq, payload)`.
pub fn unframe(mut f: Vec<Word>) -> (u64, Vec<Word>) {
    let seq = f[0] as u64;
    f.remove(0);
    (seq, f)
}

/// Retransmission policy, shared by both backends. The two timeout bases
/// reflect the two notions of time: the simulator retries after
/// `rto_cycles` *logical* cycles of the sender's clock, the threaded
/// backend after `rto_wall` of real time. Both double per retry
/// (exponential backoff, capped at 2¹⁰×).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelConfig {
    /// Base retransmission timeout on the simulator, in logical cycles.
    /// The default is ~30× an iPSC/2 round trip, so a healthy ack always
    /// arrives first.
    pub rto_cycles: u64,
    /// Base retransmission timeout on the threaded backend, wall-clock.
    pub rto_wall: Duration,
    /// Retransmissions per frame before the sender gives up with
    /// [`MachineError::RetriesExhausted`](crate::MachineError).
    pub max_retries: u32,
}

impl Default for RelConfig {
    fn default() -> Self {
        RelConfig {
            rto_cycles: 50_000,
            rto_wall: Duration::from_millis(20),
            max_retries: 16,
        }
    }
}

impl RelConfig {
    /// The logical-clock timeout after `retries` retransmissions.
    pub fn backoff_cycles(&self, retries: u32) -> u64 {
        self.rto_cycles.saturating_mul(1u64 << retries.min(10))
    }

    /// The wall-clock timeout after `retries` retransmissions.
    pub fn backoff_wall(&self, retries: u32) -> Duration {
        self.rto_wall.saturating_mul(1u32 << retries.min(10))
    }
}

/// A frame awaiting acknowledgement. `T` is the deadline type: [`Time`]
/// on the simulator, `std::time::Instant` on the threaded backend.
#[derive(Debug, Clone)]
pub struct Pending<T> {
    /// Sequence number of the frame.
    pub seq: u64,
    /// The full wire frame (seq word included), kept for retransmission.
    /// Shared: retransmits and checkpoint snapshots bump the count
    /// instead of cloning the words.
    pub frame: Arc<[Word]>,
    /// Retransmissions so far.
    pub retries: u32,
    /// When the next retransmission fires.
    pub deadline: T,
}

/// Send side of one `(dst, tag)` stream: the next sequence number and the
/// window of unacknowledged frames, oldest first.
#[derive(Debug, Clone)]
pub struct SenderChan<T> {
    /// Sequence number the next send will use.
    pub next_seq: u64,
    /// Frames sent but not yet cumulatively acknowledged.
    pub unacked: VecDeque<Pending<T>>,
    /// Live-delivery floor: every sequence number below this has been
    /// *received* by the peer, even if its checkpoint-lagged stable ack
    /// hasn't caught up. Frames below the floor stay in the window (they
    /// are the crash-replay suffix) but are never retransmitted on
    /// timer, never accumulate retries, and never wake the timer — the
    /// peer has them. A restored peer rolls the floor back by acking
    /// with its rolled-back cumulative, which re-arms exactly the suffix
    /// it lost.
    pub delivered: u64,
}

// Manual impl: the derive would demand `T: Default`, but an empty window
// holds no deadlines (`Instant` has no default).
impl<T> Default for SenderChan<T> {
    fn default() -> Self {
        SenderChan::new()
    }
}

impl<T> SenderChan<T> {
    /// A fresh stream at sequence zero.
    pub fn new() -> Self {
        SenderChan {
            next_seq: 0,
            unacked: VecDeque::new(),
            delivered: 0,
        }
    }

    /// Apply a cumulative ack (`every seq < cum received`), retiring
    /// acknowledged frames. Returns how many frames were retired; stale
    /// acks retire nothing and are harmless.
    pub fn ack(&mut self, cum: u64) -> usize {
        let mut retired = 0;
        while self.unacked.front().is_some_and(|p| p.seq < cum) {
            self.unacked.pop_front();
            retired += 1;
        }
        retired
    }

    /// An acknowledgement arrived on this stream — whatever its value,
    /// the peer is alive and ingesting. Reset the retry counters so that
    /// retry exhaustion means "peer silent", not "cumulative ack lagging
    /// behind": a checkpointing peer deliberately advertises its stable
    /// floor instead of the live cumulative, which can hold the window
    /// open across many retransmission rounds.
    pub fn mark_alive(&mut self) {
        for p in &mut self.unacked {
            p.retries = 0;
        }
    }

    /// Apply the live-delivery component of an acknowledgement. Forward
    /// movement just raises the floor; a *rollback* (`live` below the
    /// current floor) is a restored peer soliciting replay of the suffix
    /// it lost in a crash — re-arm those frames to fire at `now` so the
    /// next timer service retransmits them immediately.
    pub fn set_live(&mut self, live: u64, now: T)
    where
        T: Clone,
    {
        if live < self.delivered {
            for p in &mut self.unacked {
                if p.seq >= live {
                    p.retries = 0;
                    p.deadline = now.clone();
                }
            }
        }
        self.delivered = live;
    }

    /// A deadline-free snapshot of this stream for a checkpoint. The two
    /// backends use different deadline types (logical [`Time`] vs
    /// `Instant`), and a deadline is meaningless across a crash anyway,
    /// so deadlines and retry counts are re-armed at restore time.
    pub fn snapshot(&self) -> SenderSnapshot {
        SenderSnapshot {
            next_seq: self.next_seq,
            unacked: self
                .unacked
                .iter()
                .map(|p| (p.seq, p.frame.clone()))
                .collect(),
        }
    }

    /// Rebuild a stream from a snapshot, arming every unacked frame with
    /// `deadline` (typically now + one RTO) and a fresh retry count. The
    /// delivered floor restarts at zero — "assume nothing got through" —
    /// so the whole restored window is eligible for replay; the first
    /// ack from the (never-crashed, fully caught-up) peer raises it back.
    pub fn from_snapshot(snap: &SenderSnapshot, deadline: T) -> Self
    where
        T: Clone,
    {
        SenderChan {
            next_seq: snap.next_seq,
            unacked: snap
                .unacked
                .iter()
                .map(|(seq, frame)| Pending {
                    seq: *seq,
                    frame: frame.clone(),
                    retries: 0,
                    deadline: deadline.clone(),
                })
                .collect(),
            delivered: 0,
        }
    }
}

/// Deadline-free checkpoint image of one [`SenderChan`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SenderSnapshot {
    /// Sequence number the next send will use.
    pub next_seq: u64,
    /// `(seq, wire frame)` pairs of the unacked window, oldest first.
    /// Frames are shared with the live window (and any other snapshots)
    /// — taking a checkpoint never copies payload words.
    pub unacked: Vec<(u64, Arc<[Word]>)>,
}

/// Checkpoint image of one [`RecvChan`]. Arrival stamps are preserved
/// verbatim: the simulator needs them bit-exact for deterministic replay,
/// and the threaded backend ignores them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecvSnapshot {
    /// Next expected sequence number.
    pub expected: u64,
    /// Out-of-order stash: `(seq, arrival, payload)`.
    pub ooo: Vec<(u64, Time, Vec<Word>)>,
    /// In-order payloads not yet consumed by the program.
    pub ready: Vec<(Time, Vec<Word>)>,
    /// Duplicate frames discarded so far.
    pub dups: u64,
    /// Largest reordering gap observed so far.
    pub max_gap: u64,
}

/// Receive side of one `(src, tag)` stream: in-order reassembly with
/// duplicate suppression and gap tracking.
#[derive(Debug, Clone, Default)]
pub struct RecvChan {
    /// The next sequence number the program expects; everything below it
    /// has been delivered (or queued in `ready`).
    expected: u64,
    /// Frames that arrived ahead of a gap, keyed by sequence number.
    ooo: BTreeMap<u64, (Time, Vec<Word>)>,
    /// In-order payloads ready for the program, with their arrival stamps.
    pub ready: VecDeque<(Time, Vec<Word>)>,
    /// Duplicate frames discarded.
    pub dups: u64,
    /// Largest gap observed between an out-of-order arrival and the
    /// expected sequence number.
    pub max_gap: u64,
}

impl RecvChan {
    /// A fresh stream expecting sequence zero.
    pub fn new() -> Self {
        RecvChan::default()
    }

    /// Ingest one data frame. In-order frames (and any out-of-order
    /// successors they unlock) move to `ready`; early frames are stashed;
    /// old or already-stashed frames count as duplicates.
    pub fn on_frame(&mut self, seq: u64, arrives: Time, payload: Vec<Word>) {
        if seq < self.expected {
            self.dups += 1;
        } else if seq == self.expected {
            self.ready.push_back((arrives, payload));
            self.expected += 1;
            while let Some(entry) = self.ooo.remove(&self.expected) {
                self.ready.push_back(entry);
                self.expected += 1;
            }
        } else {
            self.max_gap = self.max_gap.max(seq - self.expected);
            if self.ooo.insert(seq, (arrives, payload)).is_some() {
                self.dups += 1;
            }
        }
    }

    /// The cumulative acknowledgement to advertise: every sequence number
    /// below this has been received.
    pub fn cumulative(&self) -> u64 {
        self.expected
    }

    /// Checkpoint image of this stream.
    pub fn snapshot(&self) -> RecvSnapshot {
        RecvSnapshot {
            expected: self.expected,
            ooo: self
                .ooo
                .iter()
                .map(|(seq, (t, p))| (*seq, *t, p.clone()))
                .collect(),
            ready: self.ready.iter().cloned().collect(),
            dups: self.dups,
            max_gap: self.max_gap,
        }
    }

    /// Rebuild a stream from a checkpoint image.
    pub fn from_snapshot(snap: &RecvSnapshot) -> Self {
        RecvChan {
            expected: snap.expected,
            ooo: snap
                .ooo
                .iter()
                .map(|(seq, t, p)| (*seq, (*t, p.clone())))
                .collect(),
            ready: snap.ready.iter().cloned().collect(),
            dups: snap.dups,
            max_gap: snap.max_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_tag_sets_top_bit() {
        assert_eq!(ack_tag(Tag(5)), Tag(5 | ACK_TAG_BIT));
        assert!(is_ack_tag(ack_tag(Tag(0))));
        assert!(!is_ack_tag(Tag(12)));
    }

    #[test]
    fn frame_round_trips() {
        let f = frame(7, &[10, 20, 30]);
        assert_eq!(f, vec![7, 10, 20, 30]);
        assert_eq!(unframe(f), (7, vec![10, 20, 30]));
        let shared = frame_arc(7, &[10, 20, 30]);
        assert_eq!(&shared[..], &[7, 10, 20, 30]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = RelConfig {
            rto_cycles: 100,
            ..RelConfig::default()
        };
        assert_eq!(c.backoff_cycles(0), 100);
        assert_eq!(c.backoff_cycles(1), 200);
        assert_eq!(c.backoff_cycles(3), 800);
        assert_eq!(c.backoff_cycles(10), 100 << 10);
        assert_eq!(c.backoff_cycles(40), 100 << 10, "cap at 2^10");
        assert_eq!(c.backoff_wall(2), c.rto_wall * 4);
    }

    #[test]
    fn cumulative_ack_retires_prefix() {
        let mut s: SenderChan<Time> = SenderChan::new();
        for seq in 0..4 {
            s.unacked.push_back(Pending {
                seq,
                frame: frame_arc(seq, &[0]),
                retries: 0,
                deadline: Time::ZERO,
            });
        }
        assert_eq!(s.ack(2), 2);
        assert_eq!(s.unacked.front().unwrap().seq, 2);
        // A stale (already-seen) ack is harmless.
        assert_eq!(s.ack(1), 0);
        assert_eq!(s.ack(4), 2);
        assert!(s.unacked.is_empty());
    }

    #[test]
    fn recv_chan_orders_and_dedups() {
        let mut r = RecvChan::new();
        r.on_frame(1, Time(10), vec![11]); // early: gap of 1
        assert_eq!(r.cumulative(), 0);
        assert_eq!(r.max_gap, 1);
        r.on_frame(0, Time(20), vec![10]); // fills the gap, unlocks 1
        assert_eq!(r.cumulative(), 2);
        let drained: Vec<_> = r.ready.drain(..).map(|(_, p)| p).collect();
        assert_eq!(drained, vec![vec![10], vec![11]]);
        r.on_frame(0, Time(30), vec![10]); // retransmitted duplicate
        assert_eq!(r.dups, 1);
        assert_eq!(r.cumulative(), 2);
        assert!(r.ready.is_empty());
    }

    #[test]
    fn channel_snapshots_round_trip() {
        let mut s: SenderChan<Time> = SenderChan::new();
        s.next_seq = 3;
        for seq in 1..3 {
            s.unacked.push_back(Pending {
                seq,
                frame: frame_arc(seq, &[seq as Word * 10]),
                retries: 2,
                deadline: Time(99),
            });
        }
        let snap = s.snapshot();
        let back: SenderChan<Time> = SenderChan::from_snapshot(&snap, Time(7));
        assert_eq!(back.next_seq, 3);
        assert_eq!(back.unacked.len(), 2);
        // Deadlines and retries are re-armed, frames preserved — and
        // shared: the snapshot holds the same allocation as the window.
        assert_eq!(back.unacked[0].deadline, Time(7));
        assert_eq!(back.unacked[0].retries, 0);
        assert_eq!(&back.unacked[1].frame[..], &frame(2, &[20])[..]);
        assert!(Arc::ptr_eq(&snap.unacked[0].1, &s.unacked[0].frame));

        let mut r = RecvChan::new();
        r.on_frame(0, Time(5), vec![1]);
        r.on_frame(3, Time(6), vec![4]); // stashed with a gap
        let rs = r.snapshot();
        let rb = RecvChan::from_snapshot(&rs);
        assert_eq!(rb.cumulative(), 1);
        assert_eq!(rb.ready, r.ready);
        assert_eq!(rb.max_gap, r.max_gap);
        // The restored stash still unlocks in order.
        let mut rb = rb;
        rb.on_frame(1, Time(7), vec![2]);
        rb.on_frame(2, Time(8), vec![3]);
        assert_eq!(rb.cumulative(), 4);
    }

    #[test]
    fn recv_chan_counts_stashed_duplicates() {
        let mut r = RecvChan::new();
        r.on_frame(3, Time(0), vec![1]);
        r.on_frame(3, Time(0), vec![1]);
        assert_eq!(r.dups, 1);
        assert_eq!(r.max_gap, 3);
    }
}
