//! Checkpoint/restart recovery for processor crash faults.
//!
//! A [`FaultPlan`](crate::FaultPlan) can now kill a processor outright
//! ([`Crash`](crate::fault::Crash)): at a chosen charged-op count the
//! processor loses every piece of volatile state — VM registers, arrays,
//! program counter, pending sends, reliable-delivery windows. This module
//! supplies the remedy: periodic [`Checkpoint`]s of that complete state,
//! and enough metadata for the scheduler (or a threaded endpoint) to
//! restart the crashed processor from its last checkpoint and let the
//! reliable layer's retransmission path replay everything in between.
//!
//! # Consistent cuts
//!
//! Two snapshot modes exist, both of which guarantee a globally
//! consistent cut to recover to:
//!
//! * **Independent mode** (the default, both backends): each processor
//!   checkpoints on its own schedule, and the receive side *lags its
//!   acknowledgements*: the cumulative ack it advertises is the stream
//!   position as of its *last checkpoint*, not its live position. Peers
//!   therefore keep every frame the checkpoint has not yet absorbed in
//!   their retransmission windows, so a crashed processor restored from
//!   its checkpoint re-receives exactly the suffix it lost — no surviving
//!   processor ever rolls back (no domino effect). Any message is thus
//!   either reflected in its receiver's checkpoint or replayable from its
//!   sender's window: a consistent cut by construction.
//! * **Coordinated mode** (simulator only): every processor snapshots at
//!   the same scheduler round boundary — a barrier-aligned global cut. On
//!   a crash *all* processors roll back to the cut and in-flight frames
//!   are discarded; because execution is deterministic, re-execution
//!   regenerates bit-identical frames and sequence numbers.
//!
//! # Determinism
//!
//! Checkpoint points and crash points are both expressed in the
//! processor's charged-op counter (see
//! [`FaultState::ops`](crate::FaultState::ops)), which advances
//! identically on the simulator and the threaded backend, so *which*
//! state is saved and *where* a crash lands never depends on wall-clock
//! timing. On the simulator the whole recovery — reboot delay included —
//! runs in logical time, making crashed-and-recovered runs bit-identical
//! run after run.

use crate::message::{ProcId, Tag, Time, Word};
use crate::reliable::{RecvSnapshot, SenderSnapshot};
use std::time::Duration;

/// Checkpointing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCfg {
    /// Charged-op interval between checkpoints of one processor. A
    /// checkpoint is taken at the first step boundary where the
    /// processor's op counter has advanced `interval_ops` past its last
    /// checkpoint.
    pub interval_ops: u64,
    /// Coordinated barrier-aligned snapshots (simulator only): all
    /// processors snapshot at one scheduler round boundary and all roll
    /// back together on a crash. Independent mode (the default) uses
    /// ack-lagging instead and rolls back only the crashed processor.
    pub coordinated: bool,
    /// Logical cycles a restored processor spends rebooting (simulator).
    pub reboot_cycles: u64,
    /// Wall-clock reboot delay on the threaded backend.
    pub reboot_wall: Duration,
    /// Fixed logical cost charged for taking one checkpoint.
    pub cost_fixed: u64,
    /// Logical cost per serialized word (8 bytes) of checkpoint state.
    pub cost_per_word: u64,
    /// Cost-amortized pacing: an ops-triggered checkpoint is deferred
    /// until at least `amortization ×` the cost of the *previous*
    /// checkpoint in logical cycles has elapsed since it was taken. This
    /// bounds the steady-state snapshot tax at roughly
    /// `1 / amortization` of the run regardless of how large the
    /// processor state is or how cheap its ops are — the op-count
    /// interval alone over-checkpoints short, message-light programs
    /// whose state is big relative to their runtime. `0` disables
    /// pacing. The crash-exposure trade-off is explicit: deferral never
    /// exceeds `amortization ×` one snapshot cost of extra replay.
    ///
    /// The default of 128 bounds the *per-processor* tax below 1%. That
    /// headroom matters because a snapshot stall does not stay local: in
    /// a pipelined decomposition each processor's stalls cascade into
    /// its downstream neighbours, so the makespan inflation approaches
    /// the sum of the staggered per-processor taxes — roughly
    /// `nprocs / amortization` — not their max. A program whose whole
    /// runtime is under `amortization ×` one snapshot cost takes no
    /// mid-run checkpoints at all: replaying it from the start is
    /// cheaper than snapshotting it, the classic short-job corollary of
    /// optimal-interval analysis.
    pub amortization: u64,
}

impl Default for CheckpointCfg {
    fn default() -> Self {
        CheckpointCfg {
            interval_ops: 2_048,
            coordinated: false,
            reboot_cycles: 10_000,
            reboot_wall: Duration::from_millis(1),
            cost_fixed: 100,
            cost_per_word: 1,
            amortization: 128,
        }
    }
}

impl CheckpointCfg {
    /// Independent-mode checkpoints every `interval_ops` charged ops.
    pub fn every(interval_ops: u64) -> Self {
        assert!(interval_ops > 0, "checkpoint interval must be positive");
        CheckpointCfg {
            interval_ops,
            ..CheckpointCfg::default()
        }
    }

    /// Switch to coordinated barrier-aligned snapshots.
    pub fn coordinated(mut self) -> Self {
        self.coordinated = true;
        self
    }

    /// Set the reboot delay charged to a restored processor.
    pub fn with_reboot(mut self, cycles: u64, wall: Duration) -> Self {
        self.reboot_cycles = cycles;
        self.reboot_wall = wall;
        self
    }

    /// The logical cycles one checkpoint of `bytes` serialized bytes
    /// costs the processor taking it.
    pub fn checkpoint_cost(&self, bytes: usize) -> u64 {
        self.cost_fixed + self.cost_per_word * (bytes as u64).div_ceil(8)
    }

    /// Set the cost-amortization factor (see [`CheckpointCfg::amortization`]).
    pub fn with_amortization(mut self, amortization: u64) -> Self {
        self.amortization = amortization;
        self
    }

    /// Whether an ops-triggered checkpoint is allowed yet under the
    /// amortization bound: `now` must be at least `amortization ×` the
    /// previous snapshot's cost past `last_taken_at`.
    pub fn amortized(&self, last_taken_at: Time, last_cost: u64, now: Time) -> bool {
        now.0.saturating_sub(last_taken_at.0) >= self.amortization.saturating_mul(last_cost)
    }
}

/// Accounting for one run's checkpoint/restart activity, reported as
/// [`RunReport::recovery`](crate::RunReport) whenever checkpointing was
/// configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Checkpoints taken (initial snapshots included).
    pub checkpoints_taken: u64,
    /// Total serialized checkpoint bytes written.
    pub bytes_snapshotted: u64,
    /// Crashes detected and successfully recovered from.
    pub crashes_survived: u64,
    /// Charged ops re-executed between restored checkpoints and their
    /// crash points — the replay work recovery cost.
    pub replayed_ops: u64,
    /// Frames re-armed for retransmission out of restored sender windows.
    pub replay_frames: u64,
    /// Time spent crashed: from each crash to the completion of its
    /// restore (reboot included). Logical cycles on the simulator,
    /// microseconds on the threaded backend.
    pub recovery_cycles: u64,
}

impl RecoveryReport {
    /// Merge another tally into this one (threaded backend teardown).
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.checkpoints_taken += other.checkpoints_taken;
        self.bytes_snapshotted += other.bytes_snapshotted;
        self.crashes_survived += other.crashes_survived;
        self.replayed_ops += other.replayed_ops;
        self.replay_frames += other.replay_frames;
        self.recovery_cycles += other.recovery_cycles;
    }
}

/// A complete, serializable snapshot of one processor's execution state:
/// the opaque process image (VM registers, locals, arrays, pc — whatever
/// [`Process::snapshot`](crate::Process::snapshot) encodes), both sides
/// of every reliable-delivery stream, the processor's program-level
/// send/receive counts, and the stable ack floors it had advertised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The processor this checkpoint belongs to.
    pub proc: ProcId,
    /// Charged-op counter when the checkpoint was taken.
    pub at_op: u64,
    /// Logical clock when the checkpoint was taken.
    pub taken_at: Time,
    /// Opaque process state from [`Process::snapshot`](crate::Process).
    pub process: Vec<u8>,
    /// Send side of every `(dst, tag)` stream.
    pub senders: Vec<(ProcId, Tag, SenderSnapshot)>,
    /// Receive side of every `(src, tag)` stream.
    pub recvs: Vec<(ProcId, Tag, RecvSnapshot)>,
    /// Program-level sends per `(dst, tag)`.
    pub sent: Vec<(ProcId, Tag, u64)>,
    /// Program-level receives per `(src, tag)`.
    pub recvd: Vec<(ProcId, Tag, u64)>,
    /// Stable ack floor per `(src, tag)` — the cumulative position this
    /// checkpoint makes durable, equal to each receive stream's
    /// cumulative at snapshot time.
    pub stable: Vec<(ProcId, Tag, u64)>,
}

const MAGIC: u64 = 0x5044_434B_0000_0001; // "PDCK" + version 1

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_words(buf: &mut Vec<u8>, ws: &[Word]) {
    put_u64(buf, ws.len() as u64);
    for w in ws {
        put_u64(buf, *w as u64);
    }
}

fn put_bytes(buf: &mut Vec<u8>, bs: &[u8]) {
    put_u64(buf, bs.len() as u64);
    buf.extend_from_slice(bs);
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.b.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn words(&mut self) -> Option<Vec<Word>> {
        let n = self.u64()? as usize;
        let mut ws = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            ws.push(self.u64()? as Word);
        }
        Some(ws)
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u64()? as usize;
        let end = self.pos.checked_add(n)?;
        let bs = self.b.get(self.pos..end)?.to_vec();
        self.pos = end;
        Some(bs)
    }
}

impl Checkpoint {
    /// Serialize to the stable little-endian wire format. The format is
    /// self-contained — a checkpoint can be written to disk and restored
    /// by a later run of the same program.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, MAGIC);
        put_u64(&mut buf, self.proc.0 as u64);
        put_u64(&mut buf, self.at_op);
        put_u64(&mut buf, self.taken_at.0);
        put_bytes(&mut buf, &self.process);
        put_u64(&mut buf, self.senders.len() as u64);
        for (dst, tag, s) in &self.senders {
            put_u64(&mut buf, dst.0 as u64);
            put_u64(&mut buf, tag.0 as u64);
            put_u64(&mut buf, s.next_seq);
            put_u64(&mut buf, s.unacked.len() as u64);
            for (seq, fr) in &s.unacked {
                put_u64(&mut buf, *seq);
                put_words(&mut buf, fr);
            }
        }
        put_u64(&mut buf, self.recvs.len() as u64);
        for (src, tag, r) in &self.recvs {
            put_u64(&mut buf, src.0 as u64);
            put_u64(&mut buf, tag.0 as u64);
            put_u64(&mut buf, r.expected);
            put_u64(&mut buf, r.ooo.len() as u64);
            for (seq, t, p) in &r.ooo {
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, t.0);
                put_words(&mut buf, p);
            }
            put_u64(&mut buf, r.ready.len() as u64);
            for (t, p) in &r.ready {
                put_u64(&mut buf, t.0);
                put_words(&mut buf, p);
            }
            put_u64(&mut buf, r.dups);
            put_u64(&mut buf, r.max_gap);
        }
        for map in [&self.sent, &self.recvd, &self.stable] {
            put_u64(&mut buf, map.len() as u64);
            for (p, tag, v) in map {
                put_u64(&mut buf, p.0 as u64);
                put_u64(&mut buf, tag.0 as u64);
                put_u64(&mut buf, *v);
            }
        }
        buf
    }

    /// Parse the wire format back; `None` on truncation or a bad magic.
    pub fn from_bytes(b: &[u8]) -> Option<Checkpoint> {
        let mut r = Reader { b, pos: 0 };
        if r.u64()? != MAGIC {
            return None;
        }
        let proc = ProcId(r.u64()? as usize);
        let at_op = r.u64()?;
        let taken_at = Time(r.u64()?);
        let process = r.bytes()?;
        let n_send = r.u64()? as usize;
        let mut senders = Vec::with_capacity(n_send.min(1 << 16));
        for _ in 0..n_send {
            let dst = ProcId(r.u64()? as usize);
            let tag = Tag(r.u64()? as u32);
            let next_seq = r.u64()?;
            let n_un = r.u64()? as usize;
            let mut unacked = Vec::with_capacity(n_un.min(1 << 16));
            for _ in 0..n_un {
                let seq = r.u64()?;
                unacked.push((seq, r.words()?.into()));
            }
            senders.push((dst, tag, SenderSnapshot { next_seq, unacked }));
        }
        let n_recv = r.u64()? as usize;
        let mut recvs = Vec::with_capacity(n_recv.min(1 << 16));
        for _ in 0..n_recv {
            let src = ProcId(r.u64()? as usize);
            let tag = Tag(r.u64()? as u32);
            let expected = r.u64()?;
            let n_ooo = r.u64()? as usize;
            let mut ooo = Vec::with_capacity(n_ooo.min(1 << 16));
            for _ in 0..n_ooo {
                let seq = r.u64()?;
                let t = Time(r.u64()?);
                ooo.push((seq, t, r.words()?));
            }
            let n_ready = r.u64()? as usize;
            let mut ready = Vec::with_capacity(n_ready.min(1 << 16));
            for _ in 0..n_ready {
                let t = Time(r.u64()?);
                ready.push((t, r.words()?));
            }
            let dups = r.u64()?;
            let max_gap = r.u64()?;
            recvs.push((
                src,
                tag,
                RecvSnapshot {
                    expected,
                    ooo,
                    ready,
                    dups,
                    max_gap,
                },
            ));
        }
        let mut maps: [Vec<(ProcId, Tag, u64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for map in maps.iter_mut() {
            let n = r.u64()? as usize;
            for _ in 0..n {
                let p = ProcId(r.u64()? as usize);
                let tag = Tag(r.u64()? as u32);
                map.push((p, tag, r.u64()?));
            }
        }
        let [sent, recvd, stable] = maps;
        Some(Checkpoint {
            proc,
            at_op,
            taken_at,
            process,
            senders,
            recvs,
            sent,
            recvd,
            stable,
        })
    }

    /// Frames in this checkpoint's sender windows — the frames a restore
    /// re-arms for retransmission.
    pub fn window_frames(&self) -> u64 {
        self.senders
            .iter()
            .map(|(_, _, s)| s.unacked.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            proc: ProcId(3),
            at_op: 4_200,
            taken_at: Time(99_000),
            process: vec![1, 2, 3, 4, 5],
            senders: vec![(
                ProcId(1),
                Tag(7),
                SenderSnapshot {
                    next_seq: 12,
                    unacked: vec![(10, vec![10, -5].into()), (11, vec![11, 42].into())],
                },
            )],
            recvs: vec![(
                ProcId(0),
                Tag(2),
                RecvSnapshot {
                    expected: 8,
                    ooo: vec![(10, Time(500), vec![-1])],
                    ready: vec![(Time(450), vec![7, 7])],
                    dups: 3,
                    max_gap: 2,
                },
            )],
            sent: vec![(ProcId(1), Tag(7), 12)],
            recvd: vec![(ProcId(0), Tag(2), 7)],
            stable: vec![(ProcId(0), Tag(2), 8)],
        }
    }

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("parses");
        assert_eq!(back, c);
        assert_eq!(c.window_frames(), 2);
    }

    #[test]
    fn truncated_or_corrupt_bytes_rejected() {
        let bytes = sample().to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Checkpoint::from_bytes(&[]).is_none());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF; // break the magic
        assert!(Checkpoint::from_bytes(&bad).is_none());
    }

    #[test]
    fn cfg_cost_scales_with_bytes() {
        let cfg = CheckpointCfg::default();
        assert_eq!(cfg.checkpoint_cost(0), cfg.cost_fixed);
        assert_eq!(cfg.checkpoint_cost(16), cfg.cost_fixed + 2);
        assert_eq!(cfg.checkpoint_cost(17), cfg.cost_fixed + 3);
        let c = CheckpointCfg::every(512);
        assert_eq!(c.interval_ops, 512);
        assert!(!c.coordinated);
        assert!(CheckpointCfg::every(1).coordinated().coordinated);
    }

    #[test]
    fn amortized_pacing_bounds_the_snapshot_tax() {
        // With amortization 128, a checkpoint that cost 1_000 cycles
        // blocks the next one until 128_000 cycles have elapsed — so
        // snapshots can never eat more than ~1/128 of a processor's run.
        let cfg = CheckpointCfg::default();
        assert_eq!(cfg.amortization, 128);
        assert!(!cfg.amortized(Time(0), 1_000, Time(127_999)));
        assert!(cfg.amortized(Time(0), 1_000, Time(128_000)));
        // Opting out makes the op interval the only trigger.
        let free = cfg.with_amortization(0);
        assert!(free.amortized(Time(0), 1_000, Time(0)));
        // Saturation: a huge cost just means "defer for a very long
        // time", never an overflow panic.
        assert!(!cfg.amortized(Time(0), u64::MAX, Time(u64::MAX - 1)));
    }
}
