//! The threaded execution backend: one OS thread per processor, with a
//! preallocated lock-free SPSC word ring ([`ring`](crate::ring)) per
//! ordered processor pair as the interconnect.
//!
//! The simulator in [`fabric`](crate::fabric) interleaves every processor
//! on one thread and keeps the whole network in a single `HashMap`. This
//! module executes the *same* [`Process`] implementations preemptively:
//! each processor's process runs on its own thread against an
//! [`Endpoint`] — a per-thread [`Fabric`] holding that processor's logical
//! clock, statistics, and ring ends.
//!
//! # Why the results still match the simulator
//!
//! Everything a process observes is a function of sender-local state:
//! payloads are computed before the send, arrival stamps travel *inside*
//! the frame (`sender clock + flight`), and a receive names its
//! `(src, tag)` channel explicitly. A ring is FIFO by construction, and
//! the per-`(src, tag)` stash below preserves that order per typed
//! channel, so every receive sees exactly the message the simulator would
//! deliver — whatever the OS scheduler does. Outputs, logical clocks (and
//! hence the makespan), and per-pair message counts are bit-identical
//! across backends; only `max_in_flight` (real concurrency) and the step
//! total (blocked-retry counts) are timing-dependent.
//!
//! # Topology
//!
//! Tags are created dynamically by the compiler, so a physical channel
//! per `(src, dst, tag)` triple is impossible to set up in advance.
//! Instead every ordered processor pair owns one word ring — `n(n-1)`
//! rings, preallocated before the clocks start — and each endpoint
//! demultiplexes its incoming frames into per-`(src, tag)` FIFO stashes.
//! Frames are flat `u64` words (see [`ring`](crate::ring) for the wire
//! layout); steady-state traffic allocates nothing: payload buffers come
//! from a per-endpoint [`BufPool`] and return to it on consume.
//!
//! # Wakeups, deadlock, and peer death
//!
//! Each endpoint owns a [`Doorbell`]; peers ring it after publishing
//! frames for it, so a blocked receive parks instead of polling and a
//! running receiver costs its peers no syscalls at all. Real threads
//! cannot take the global "nobody progressed" snapshot the
//! [`Scheduler`](crate::Scheduler) uses, so liveness is judged from a
//! shared status board instead: every thread posts `finished` on normal
//! completion and `dead` on panic or error (via a drop guard, so unwinds
//! post too), bumps a global epoch, and rings every bell. A receive
//! whose peer *finished* without sending fails immediately as
//! [`MachineError::Deadlock`]; one whose peer *died* fails immediately
//! as [`MachineError::PeerDied`] — no waiter ever burns its full
//! receive-timeout window discovering a terminated peer. If no traffic
//! at all arrives for [`recv_timeout`](ThreadedRunner::with_recv_timeout)
//! while peers are still running, the receive fails with
//! [`MachineError::RecvTimeout`] (a cyclic deadlock).

use crate::checkpoint::{Checkpoint, CheckpointCfg, RecoveryReport};
use crate::cost::CostModel;
use crate::error::MachineError;
use crate::fabric::Fabric;
use crate::fault::{FaultCounts, FaultPlan, FaultState};
use crate::message::{ProcId, Tag, Time, Word};
use crate::reliable::{
    ack_tag, frame_arc, is_ack_tag, unframe, Pending, RecvChan, RelConfig, SenderChan, ACK_TAG_BIT,
};
use crate::ring::{ring, BufPool, Doorbell, FrameRx, FrameTx};
use crate::sched::{Process, RunReport, Step};
use crate::stats::{FaultReport, MachineStats, NetworkStats, ProcStats};
use crate::trace::{EventKind, Trace};
use pdc_metrics::{Ctr, FlightKind, MetricsRegistry, NO_PEER};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a compiled SPMD program is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event simulator: one thread, round-robin
    /// [`Scheduler`](crate::Scheduler), in-memory queues. The default.
    #[default]
    Simulated,
    /// One OS thread per processor over per-pair lock-free rings, with a
    /// wall-clock receive timeout standing in for deadlock detection.
    Threaded {
        /// Fail a blocked receive after this long without any arrival.
        recv_timeout: Duration,
    },
}

impl Backend {
    /// The threaded backend with the default receive timeout.
    pub fn threaded() -> Self {
        Backend::Threaded {
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }
}

/// Default wall-clock window a blocked threaded receive waits before
/// reporting a timeout.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(5);

/// Peer is executing (or lingering): frames to it will be drained.
const PEER_RUNNING: u8 = 0;
/// Peer completed normally — its program-level receives are all done.
const PEER_FINISHED: u8 = 1;
/// Peer's thread terminated abnormally (panic or error).
const PEER_DEAD: u8 = 2;

/// `base + d`, saturating at a far-future instant instead of panicking
/// when a pathological `Duration` (e.g. `Duration::MAX` standing in for
/// "never") overflows the platform clock. Halving converges on the
/// largest representable offset, which is as good as infinity for a
/// deadline.
fn saturating_deadline(base: Instant, d: Duration) -> Instant {
    if let Some(t) = base.checked_add(d) {
        return t;
    }
    let mut cap = d;
    while cap > Duration::ZERO {
        cap /= 2;
        if let Some(t) = base.checked_add(cap) {
            return t;
        }
    }
    base
}

/// Ring capacity in words for an `n`-processor machine when none was
/// configured: a ~32 MiB total budget split across the `n(n-1)` rings,
/// clamped to `[256, 16384]` words and rounded down to a power of two.
fn default_ring_words(n: usize) -> usize {
    let pairs = (n * n.saturating_sub(1)).max(1);
    let budget = ((1usize << 22) / pairs).clamp(256, 16_384);
    1 << (usize::BITS as usize - 1 - budget.leading_zeros() as usize)
}

/// Shared high-water mark of messages in flight (sent, not yet consumed).
/// Relaxed ordering throughout: the counts are diagnostics, read after
/// the joins (which synchronize), never used for control flow.
#[derive(Debug, Default)]
struct Gauge {
    cur: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    fn inc(&self) {
        let now = self.cur.fetch_add(1, Ordering::Relaxed) + 1;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    fn dec(&self) {
        self.cur.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Announces this thread's fate on the shared status board. Constructed
/// before the first step and finalized with [`finish`](StatusGuard::finish)
/// on success; the `Drop` impl catches every other exit — an `Err` return
/// or a panic unwind — and posts `dead`, so blocked peers always learn of
/// a terminated thread immediately instead of timing out against silence.
struct StatusGuard {
    status: Arc<Vec<AtomicU8>>,
    bells: Arc<Vec<Doorbell>>,
    epoch: Arc<AtomicU64>,
    me: usize,
    finished: bool,
}

impl StatusGuard {
    /// Post `st`, bump the epoch, and wake every parked peer. The status
    /// store is `SeqCst` and precedes the bells, so a peer that either
    /// observes the new status or is woken by the ring sees every frame
    /// this thread published beforehand.
    fn announce(&self, st: u8) {
        self.status[self.me].store(st, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for bell in self.bells.iter() {
            bell.ring();
        }
    }

    fn finish(&mut self) {
        self.finished = true;
        self.announce(PEER_FINISHED);
    }
}

impl Drop for StatusGuard {
    fn drop(&mut self) {
        if !self.finished {
            self.announce(PEER_DEAD);
        }
    }
}

/// The reliable-delivery state of one endpoint: its own [`FaultState`]
/// (each endpoint only dispatches frames it sends, so per-triple decision
/// streams stay private), sequence-tracked send/receive channels with
/// wall-clock retransmission deadlines, and protocol tallies.
#[derive(Debug)]
struct EndpointRel {
    fault: FaultState,
    cfg: RelConfig,
    senders: BTreeMap<(ProcId, Tag), SenderChan<Instant>>,
    recvs: BTreeMap<(ProcId, Tag), RecvChan>,
    /// Program-level sends per `(dst, tag)` — the backend-invariant pair
    /// counts for the run report.
    logical_sent: BTreeMap<(ProcId, Tag), u64>,
    /// Program-level receives per `(src, tag)`.
    logical_recvd: BTreeMap<(ProcId, Tag), u64>,
    retransmits: u64,
    acks_sent: u64,
    fatal: Option<MachineError>,
    /// Stable ack floors for independent-mode checkpointing: `Some(map)`
    /// means acks for `(src, tag)` advertise the stream position as of
    /// this endpoint's last checkpoint (0 for streams it predates)
    /// instead of the live cumulative, so peers keep the replay suffix
    /// in their retransmission windows. `None` advertises live.
    stable: Option<BTreeMap<(ProcId, Tag), u64>>,
}

impl EndpointRel {
    fn new(plan: FaultPlan, cfg: RelConfig, checkpointed: bool) -> Self {
        EndpointRel {
            fault: FaultState::new(plan),
            cfg,
            senders: BTreeMap::new(),
            recvs: BTreeMap::new(),
            logical_sent: BTreeMap::new(),
            logical_recvd: BTreeMap::new(),
            retransmits: 0,
            acks_sent: 0,
            fatal: None,
            stable: checkpointed.then(BTreeMap::new),
        }
    }

    fn all_acked(&self) -> bool {
        self.senders.values().all(|c| c.unacked.is_empty())
    }

    /// The earliest wall-clock retransmission deadline, if any. Backoff
    /// is per-frame, so the front (most-retried) frame can have a later
    /// deadline than the rest of the window: scan every pending frame.
    /// Delivered frames are excluded — they never retransmit, so their
    /// stale deadlines would only cause pointless wakeups.
    fn earliest_deadline(&self) -> Option<Instant> {
        self.senders
            .values()
            .flat_map(|c| {
                c.unacked
                    .iter()
                    .filter(|p| p.seq >= c.delivered)
                    .map(|p| p.deadline)
            })
            .min()
    }
}

/// Thread-local checkpoint control: the policy, the last serialized
/// checkpoint image (wire bytes, so every restore exercises the parse
/// path), and the recovery tally.
#[derive(Debug)]
struct CkptCtl {
    cfg: CheckpointCfg,
    /// Charged-op counter at the last checkpoint.
    last_op: u64,
    /// Logical clock and charged cost of the last checkpoint, for
    /// cost-amortized pacing ([`CheckpointCfg::amortized`]).
    last_at: Time,
    last_cost: u64,
    image: Vec<u8>,
    report: RecoveryReport,
}

/// Per-`(src, tag)` demultiplexing FIFOs of `(arrival stamp, payload)`.
type Stash = HashMap<(ProcId, Tag), VecDeque<(Time, Vec<Word>)>>;

/// One processor's thread-local view of the machine: its logical clock
/// and counters, the producer end of a ring to every peer, the consumer
/// end of every peer's ring to it, and the per-`(src, tag)`
/// demultiplexing stash.
#[derive(Debug)]
pub struct Endpoint {
    me: ProcId,
    n: usize,
    cost: CostModel,
    slowdown: u64,
    clock: Time,
    stats: ProcStats,
    /// `tx[q]` produces into the ring read by processor `q`; `None` at
    /// `q == me` (self-sends are a code-generation bug, exactly as in
    /// the simulator).
    tx: Vec<Option<FrameTx>>,
    /// `rx[q]` consumes the ring written by processor `q`.
    rx: Vec<Option<FrameRx>>,
    /// Typed-channel FIFOs, filled by draining the rings in arrival
    /// order: `(arrival stamp, payload)` per frame.
    stash: Stash,
    /// Payload-buffer recycler: consumed frames return their `Vec`s here
    /// and reassembly reuses them, so steady-state traffic allocates
    /// nothing.
    pool: BufPool,
    /// Messages sent per `(dst, tag)`, merged into the run report.
    sent: BTreeMap<(ProcId, Tag), u64>,
    /// Messages consumed per `(src, tag)` — the receive-side mirror of
    /// `sent`, merged into per-triple pending counts at teardown.
    recvd: BTreeMap<(ProcId, Tag), u64>,
    /// Set when the process sends to itself; surfaced as
    /// [`MachineError::SelfSend`] by the thread loop, as the scheduler
    /// does on the simulator.
    self_send: Option<ProcId>,
    /// Reliable-delivery state; `None` runs the raw fabric.
    rel: Option<Box<EndpointRel>>,
    /// One doorbell per processor; `bells[me]` is parked on, peers' are
    /// rung after publishing frames for them.
    bells: Arc<Vec<Doorbell>>,
    /// Shared liveness board: `status[q]` is `PEER_RUNNING`,
    /// `PEER_FINISHED`, or `PEER_DEAD`.
    status: Arc<Vec<AtomicU8>>,
    /// Bumped on every status transition; parks re-check it so no
    /// transition is ever slept through.
    epoch: Arc<AtomicU64>,
    /// Frames ever drained off the rings — the liveness signal that
    /// resets a blocked receive's timeout window.
    ingested: u64,
    /// Parks performed (the wakeup-batching effectiveness metric).
    wakes: u64,
    /// Spin briefly before parking. On when the host has ≥ 2 hardware
    /// threads: the peer may be publishing *right now*, and a short spin
    /// dodges the futex round-trip. On one core the peer cannot be
    /// running concurrently, so spinning only burns the time slice it
    /// needs — park immediately instead.
    spin: bool,
    /// Test probe: accumulates `wakes` at thread exit when set.
    wake_probe: Option<Arc<AtomicU64>>,
    gauge: Arc<Gauge>,
    recv_timeout: Duration,
    /// Checkpoint/restart control; `None` runs without crash recovery.
    ckpt: Option<CkptCtl>,
    /// Per-endpoint event trace, recorded exactly as the simulator's
    /// [`Machine`](crate::Machine) records its global one; merged by
    /// timestamp into the run report at teardown. Because every event's
    /// `at` comes from the backend-invariant logical clock, the merged
    /// trace matches the simulator's on the raw fabric.
    trace: Trace,
    /// Shared metrics registry — one shard per processor; this endpoint
    /// writes only shard `me`, so the record path never contends.
    metrics: Arc<MetricsRegistry>,
    /// The reliability layer was configured for this run. `rel.is_some()`
    /// cannot distinguish a program send from a protocol frame here:
    /// `rel` is detached while its fault state dispatches, which is
    /// exactly when protocol frames traverse the raw send path.
    reliable: bool,
}

impl Endpoint {
    /// Move every fully-arrived frame off the rings into the stash.
    fn drain(&mut self) {
        let Endpoint {
            rx,
            stash,
            pool,
            ingested,
            ..
        } = self;
        for (src, rx) in rx.iter_mut().enumerate() {
            if let Some(rx) = rx {
                *ingested += rx.drain(pool, |tag, arrives, payload| {
                    stash
                        .entry((ProcId(src), Tag(tag)))
                        .or_default()
                        .push_back((Time(arrives), payload));
                }) as u64;
            }
        }
    }

    /// Consume a message: idle accounting and clock advance identical to
    /// [`Machine::try_recv`](crate::Machine::try_recv).
    fn consume(
        &mut self,
        src: ProcId,
        tag: Tag,
        arrives_at: Time,
        payload: Vec<Word>,
    ) -> Vec<Word> {
        *self.recvd.entry((src, tag)).or_insert(0) += 1;
        self.charge_recv(src, tag, arrives_at, payload.len());
        self.gauge.dec();
        payload
    }

    /// The accounting half of [`consume`](Endpoint::consume): idle until
    /// the arrival stamp if necessary, then pay the unpacking cost.
    fn charge_recv(&mut self, src: ProcId, tag: Tag, arrives_at: Time, words: usize) {
        let waited = arrives_at.0.saturating_sub(self.clock.0);
        let ready = if arrives_at > self.clock {
            self.stats.idle_cycles += waited;
            arrives_at
        } else {
            self.clock
        };
        let recv_cost = self.cost.recv_cost(words) * self.slowdown;
        self.clock = ready.plus(recv_cost);
        self.stats.recvs += 1;
        self.trace.record(
            self.me,
            self.clock,
            EventKind::Recv {
                src,
                tag,
                words,
                waited,
                cost: recv_cost,
            },
        );
        // Both program-level receive paths (raw consume, reliable pop)
        // charge here, so this is the one logical-recv record point.
        self.metrics.logical_recv(
            self.me.0,
            src.0 as u64,
            tag.0 as u64,
            words as u64,
            self.clock.0,
        );
    }

    /// Take and clear the recorded self-send fault, if any.
    fn take_self_send(&mut self) -> Option<ProcId> {
        self.self_send.take()
    }

    /// Take and clear the recorded fatal protocol error, if any.
    fn take_fatal(&mut self) -> Option<MachineError> {
        self.rel.as_mut().and_then(|r| r.fatal.take())
    }

    /// Publish one frame onto the `me → dst` ring and ring the peer's
    /// doorbell. A frame to a peer that already finished or died stays
    /// undelivered, exactly like an untaken simulator queue. While the
    /// ring is full the stall hook keeps the system live: it wakes the
    /// consumer (chunks published so far are invisible to a parked peer
    /// otherwise), drains our own inboxes (two mutually-full endpoints
    /// would deadlock otherwise), and abandons the send if the peer
    /// dies — a half-written frame is harmless because nobody reads
    /// that ring again.
    fn ring_send(&mut self, dst: ProcId, tag: Tag, arrives_at: Time, payload: &[Word]) {
        if self.status[dst.0].load(Ordering::SeqCst) != PEER_RUNNING {
            return;
        }
        let words = payload.len() as u64;
        self.metrics.count(self.me.0, Ctr::WireFrames, 1);
        self.metrics.count(self.me.0, Ctr::WireWords, words);
        let mut tx = self.tx[dst.0].take().expect("peer ring exists");
        let mut spins = 0u32;
        let mut stalled = false;
        let sent = tx.send(tag.0, arrives_at.0, payload, || {
            if !stalled {
                stalled = true;
                self.metrics.count(self.me.0, Ctr::EnqueueStalls, 1);
                self.metrics.flight(
                    self.me.0,
                    FlightKind::Stall,
                    dst.0 as u64,
                    tag.0 as u64,
                    words,
                    self.clock.0,
                );
            }
            self.bells[dst.0].ring();
            self.drain();
            if self.status[dst.0].load(Ordering::SeqCst) != PEER_RUNNING {
                return false;
            }
            spins += 1;
            if spins > 16 {
                std::thread::yield_now();
            }
            true
        });
        if sent {
            // Post-enqueue depth; the histogram max is the ring's
            // high-water mark in words.
            self.metrics.ring_depth(self.me.0, tx.occupancy());
        }
        self.tx[dst.0] = Some(tx);
        if sent {
            self.bells[dst.0].ring();
        }
    }

    /// One doorbell-batched blocking cycle: arm the bell, re-check every
    /// wake source (fresh frames and status transitions since `epoch`),
    /// then park until `until`, a peer's ring, or a spurious wakeup.
    /// Callers loop and re-evaluate regardless of why the park returned.
    fn park(&mut self, until: Instant, epoch: u64) {
        if self.spin {
            for _ in 0..64 {
                std::hint::spin_loop();
                let before = self.ingested;
                self.drain();
                if self.ingested != before || self.epoch.load(Ordering::SeqCst) != epoch {
                    self.metrics.count(self.me.0, Ctr::SpinWakes, 1);
                    return;
                }
            }
        }
        self.bells[self.me.0].prepare();
        let before = self.ingested;
        self.drain();
        if self.ingested != before || self.epoch.load(Ordering::SeqCst) != epoch {
            self.bells[self.me.0].cancel();
            self.metrics.count(self.me.0, Ctr::Wakes, 1);
            return;
        }
        self.wakes += 1;
        self.metrics.count(self.me.0, Ctr::Parks, 1);
        self.metrics
            .flight(self.me.0, FlightKind::Park, NO_PEER, 0, 0, self.clock.0);
        self.bells[self.me.0].park_until(until);
    }

    /// Reliable-mode ingestion: drain the wire, retire acknowledged sends,
    /// reassemble data frames into their streams, and acknowledge every
    /// batch ingested. Acks travel through this endpoint's fault state
    /// too, so a lossy plan can lose them — the peer's retransmission
    /// absorbs that.
    fn rel_pump(&mut self) {
        self.drain();
        let mut rel = self.rel.take().expect("rel_pump requires reliable mode");
        let chans: Vec<(ProcId, Tag)> = self.stash.keys().copied().collect();
        for (peer, tag) in chans {
            if is_ack_tag(tag) {
                while let Some((_, payload)) = self
                    .stash
                    .get_mut(&(peer, tag))
                    .and_then(VecDeque::pop_front)
                {
                    self.gauge.dec();
                    // Interrupt-style ack processing: unpacking cost only,
                    // never idle waiting. Traced as compute, exactly as
                    // the simulator's `busy` is.
                    let before = self.clock;
                    self.clock = before.plus(self.cost.recv_cost(1) * self.slowdown);
                    self.trace.record_compute(self.me, before, self.clock);
                    let cum = payload[0] as u64;
                    let live = payload.get(1).map_or(cum, |&w| w as u64);
                    self.pool.put(payload);
                    self.metrics.count(self.me.0, Ctr::AcksRecvd, 1);
                    let data_tag = Tag(tag.0 & !ACK_TAG_BIT);
                    if let Some(chan) = rel.senders.get_mut(&(peer, data_tag)) {
                        chan.ack(cum);
                        chan.set_live(live, Instant::now());
                        chan.mark_alive();
                        self.trace.record(
                            self.me,
                            self.clock,
                            EventKind::Ack {
                                peer,
                                tag: data_tag,
                                cum,
                            },
                        );
                    }
                }
            } else {
                let mut drained = 0u64;
                let dups_before = rel.recvs.get(&(peer, tag)).map_or(0, |c| c.dups);
                while let Some((arrives, payload)) = self
                    .stash
                    .get_mut(&(peer, tag))
                    .and_then(VecDeque::pop_front)
                {
                    self.gauge.dec();
                    let (seq, payload) = unframe(payload);
                    rel.recvs
                        .entry((peer, tag))
                        .or_default()
                        .on_frame(seq, arrives, payload);
                    drained += 1;
                }
                if drained > 0 {
                    let chan = &rel.recvs[&(peer, tag)];
                    let live = chan.cumulative();
                    let dup_delta = chan.dups - dups_before;
                    let adv = match &rel.stable {
                        Some(floors) => floors.get(&(peer, tag)).copied().unwrap_or(0),
                        None => live,
                    };
                    rel.acks_sent += 1;
                    self.metrics.count(self.me.0, Ctr::AcksSent, 1);
                    self.metrics
                        .count(self.me.0, Ctr::DupFramesDropped, dup_delta);
                    rel.fault.dispatch(
                        self,
                        self.me,
                        peer,
                        ack_tag(tag),
                        &[adv as Word, live as Word],
                    );
                }
            }
        }
        self.rel = Some(rel);
    }

    /// Retransmit every unacknowledged frame whose wall-clock deadline
    /// has passed, doubling its backoff; flag
    /// [`MachineError::RetriesExhausted`] once the oldest *undelivered*
    /// frame of a stream runs dry. The whole expired undelivered suffix
    /// retransmits (go-back-N), not just the front: a checkpointing
    /// receiver acknowledges only its stable floor, so resending only
    /// the front would starve a restored receiver of everything past it.
    /// Frames below the live delivered floor are skipped entirely — the
    /// peer has them; they sit in the window purely as the crash-replay
    /// suffix.
    fn rel_service_timers(&mut self) {
        let mut rel = self.rel.take().expect("timers require reliable mode");
        if rel.fatal.is_none() {
            let now = Instant::now();
            let chans: Vec<(ProcId, Tag)> = rel.senders.keys().copied().collect();
            for (dst, tag) in chans {
                // Arc bumps, not copies: the window and the wire share
                // each frame's one allocation.
                let resends: Vec<(u64, Arc<[Word]>)> = {
                    let chan = rel
                        .senders
                        .get_mut(&(dst, tag))
                        .expect("chan exists: key came from the map");
                    if self.status[dst.0].load(Ordering::SeqCst) != PEER_RUNNING {
                        // The peer's thread exited. A *finished* peer can
                        // only do that after completing its program-level
                        // receives: our data got through and only the ack
                        // was lost, so retire the window instead of
                        // retrying forever into a ring nobody drains. A
                        // *dead* peer fails the run through its own root
                        // error; retiring here merely lets our linger
                        // terminate instead of spinning on its corpse.
                        chan.unacked.clear();
                        continue;
                    }
                    let delivered = chan.delivered;
                    if let Some(p) = chan.unacked.iter().find(|p| p.seq >= delivered) {
                        if p.deadline <= now && p.retries >= rel.cfg.max_retries {
                            // The oldest undelivered seq is exactly the
                            // delivery point the peer last advanced us to.
                            rel.fatal = Some(MachineError::RetriesExhausted {
                                proc: self.me,
                                peer: dst,
                                tag,
                                retries: p.retries,
                                last_acked: p.seq,
                            });
                            break;
                        }
                    }
                    chan.unacked
                        .iter_mut()
                        .filter(|p| p.seq >= delivered && p.deadline <= now)
                        .map(|p| {
                            p.retries += 1;
                            p.deadline = saturating_deadline(now, rel.cfg.backoff_wall(p.retries));
                            (p.seq, Arc::clone(&p.frame))
                        })
                        .collect()
                };
                for (seq, payload) in resends {
                    self.trace
                        .record(self.me, self.clock, EventKind::Retransmit { dst, tag, seq });
                    rel.retransmits += 1;
                    self.metrics.count(self.me.0, Ctr::Retransmits, 1);
                    self.metrics.flight(
                        self.me.0,
                        FlightKind::Retransmit,
                        dst.0 as u64,
                        tag.0 as u64,
                        seq,
                        self.clock.0,
                    );
                    rel.fault.dispatch(self, self.me, dst, tag, &payload);
                }
            }
        }
        self.rel = Some(rel);
    }

    /// Reliable-mode send: pump acks, service timers, then frame, track,
    /// and dispatch through the fault plan. The frame is built once as a
    /// shared slice; the retransmission window and the wire path bump
    /// its reference count instead of cloning.
    fn rel_send(&mut self, dst: ProcId, tag: Tag, payload: &[Word]) {
        debug_assert_eq!(
            tag.0 & ACK_TAG_BIT,
            0,
            "program tags must stay below the ack bit"
        );
        self.rel_pump();
        self.rel_service_timers();
        let rel = self.rel.as_mut().expect("rel_send requires reliable mode");
        *rel.logical_sent.entry((dst, tag)).or_insert(0) += 1;
        // The program-level send; the framed dispatch below and every
        // retransmission of it are wire traffic, recorded in `ring_send`.
        self.metrics.logical_send(
            self.me.0,
            dst.0 as u64,
            tag.0 as u64,
            payload.len() as u64,
            self.clock.0,
        );
        let fr = {
            let chan = rel.senders.entry((dst, tag)).or_default();
            let seq = chan.next_seq;
            chan.next_seq += 1;
            let fr = frame_arc(seq, payload);
            chan.unacked.push_back(Pending {
                seq,
                frame: Arc::clone(&fr),
                retries: 0,
                deadline: saturating_deadline(Instant::now(), rel.cfg.rto_wall),
            });
            fr
        };
        let mut rel = self.rel.take().expect("still in reliable mode");
        rel.fault.dispatch(self, self.me, dst, tag, &fr);
        self.rel = Some(rel);
    }

    /// Reliable-mode receive attempt: pump, service timers, then pop the
    /// next in-order payload if the stream has one ready.
    fn rel_try_recv(&mut self, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        self.rel_pump();
        self.rel_service_timers();
        let rel = self.rel.as_mut().expect("rel recv requires reliable mode");
        let (arrives, payload) = rel.recvs.get_mut(&(src, tag))?.ready.pop_front()?;
        *rel.logical_recvd.entry((src, tag)).or_insert(0) += 1;
        self.charge_recv(src, tag, arrives, payload.len());
        Some(payload)
    }

    /// Reliable-mode block: wait until the `(src, tag)` stream has an
    /// in-order payload ready, retransmitting on schedule meanwhile. The
    /// liveness window resets on any arrival, exactly as
    /// [`wait_for`](Endpoint::wait_for) does; a peer that finished
    /// without satisfying the receive is an immediate deadlock, a peer
    /// that died an immediate [`MachineError::PeerDied`].
    fn rel_wait_for(&mut self, src: ProcId, tag: Tag) -> Result<(), MachineError> {
        let mut liveness = saturating_deadline(Instant::now(), self.recv_timeout);
        let mut last_keepalive = Instant::now();
        let mut last_ingested = self.ingested;
        loop {
            // Load the epoch and the peer's status *before* pumping: a
            // status observed before the drain can only under-report —
            // "finished and the stream is still not ready" is then a
            // sound deadlock verdict, because a finishing peer publishes
            // all its frames before announcing.
            let epoch = self.epoch.load(Ordering::SeqCst);
            let st = self.status[src.0].load(Ordering::SeqCst);
            self.rel_pump();
            self.rel_service_timers();
            if let Some(e) = self.take_fatal() {
                return Err(e);
            }
            {
                let rel = self.rel.as_ref().expect("rel wait requires reliable mode");
                if rel
                    .recvs
                    .get(&(src, tag))
                    .is_some_and(|c| !c.ready.is_empty())
                {
                    return Ok(());
                }
            }
            match st {
                PEER_DEAD => {
                    return Err(MachineError::PeerDied {
                        proc: self.me,
                        peer: src,
                    });
                }
                PEER_FINISHED => {
                    // A finished peer completed its linger: everything it
                    // ever sent is already in our streams. The awaited
                    // payload can never arrive.
                    return Err(MachineError::Deadlock {
                        waiting: vec![(self.me, src, tag)],
                    });
                }
                _ => {}
            }
            if self.ingested != last_ingested {
                last_ingested = self.ingested;
                liveness = saturating_deadline(Instant::now(), self.recv_timeout);
            }
            let now = Instant::now();
            if now >= liveness {
                return Err(MachineError::RecvTimeout {
                    proc: self.me,
                    src,
                    tag,
                    waited_ms: self.recv_timeout.as_millis() as u64,
                });
            }
            // Receiver keepalive (checkpoint mode only): a starved
            // receiver re-advertises its floors every RTO, even on a
            // stream no frame has ever arrived on — a receiver restored
            // from a pre-traffic checkpoint has no recv chans, yet the
            // zero advertisement is exactly what rolls the sender's
            // delivered floor back. If a rollback-solicitation ack was
            // lost, this is the safety net that re-arms the replay.
            // Without checkpoints retransmission alone recovers and
            // black-holed streams must still starve into
            // RetriesExhausted, so stable = None stays silent.
            let rto_wall = self
                .rel
                .as_ref()
                .expect("rel wait requires reliable mode")
                .cfg
                .rto_wall;
            if now.duration_since(last_keepalive) >= rto_wall {
                last_keepalive = now;
                let floors = {
                    let rel = self.rel.as_ref().expect("rel wait requires reliable mode");
                    rel.stable.as_ref().map(|fl| {
                        (
                            fl.get(&(src, tag)).copied().unwrap_or(0),
                            rel.recvs.get(&(src, tag)).map_or(0, |c| c.cumulative()),
                        )
                    })
                };
                if let Some((adv, live)) = floors {
                    let mut rel = self.rel.take().expect("rel wait requires reliable mode");
                    rel.acks_sent += 1;
                    self.metrics.count(self.me.0, Ctr::AcksSent, 1);
                    rel.fault.dispatch(
                        self,
                        self.me,
                        src,
                        ack_tag(tag),
                        &[adv as Word, live as Word],
                    );
                    self.rel = Some(rel);
                }
            }
            // Park until the liveness deadline or the next retransmission
            // timer, whichever is sooner. In checkpoint mode the next
            // keepalive is a deadline too: a receiver with nothing in its
            // own send window would otherwise sleep the whole liveness
            // window and never advertise its floors. Arrivals and status
            // changes ring the doorbell, so the park never oversleeps a
            // real event.
            let until = {
                let rel = self.rel.as_ref().expect("rel wait requires reliable mode");
                let mut until = rel
                    .earliest_deadline()
                    .map_or(liveness, |d| d.min(liveness));
                if rel.stable.is_some() {
                    until = until.min(saturating_deadline(last_keepalive, rel.cfg.rto_wall));
                }
                until
            };
            self.park(until, epoch);
        }
    }

    /// Post-completion linger: a finished process keeps answering the
    /// protocol — re-acking retransmitted data, retransmitting its own
    /// unacknowledged frames — until its send window is empty. Without
    /// this, a dropped final ack would starve the peer's retransmissions
    /// against a dead thread.
    ///
    /// The linger *parks*: with every pending frame delivered but not
    /// yet stably acked (the checkpoint-mode steady state), there is no
    /// retransmission deadline to wait out, and the old implementation
    /// busy-polled at 1 ms burning a core per lingering thread. The
    /// peer's eventual ack — or its status transition — rings our
    /// doorbell, so the park only needs a coarse backstop deadline.
    fn rel_linger(&mut self) -> Result<(), MachineError> {
        loop {
            let epoch = self.epoch.load(Ordering::SeqCst);
            self.rel_pump();
            self.rel_service_timers();
            if let Some(e) = self.take_fatal() {
                return Err(e);
            }
            let rel = self.rel.as_ref().expect("linger requires reliable mode");
            if rel.all_acked() {
                return Ok(());
            }
            let until = rel
                .earliest_deadline()
                .unwrap_or_else(|| saturating_deadline(Instant::now(), self.recv_timeout));
            self.park(until, epoch);
        }
    }

    /// Capture this processor's complete state — process image, both
    /// sides of every reliable stream, program-level counters — into a
    /// serialized [`Checkpoint`], then advance the stable ack floors to
    /// the just-snapshotted positions (proactively re-acking every
    /// stream whose floor moved, so peers retire the frames this
    /// checkpoint made durable).
    ///
    /// `charge` puts the snapshot cost on the logical clock. Mid-run
    /// checkpoints charge; the initial image is provisioned before the
    /// clocks start, and the final one is an off-critical-path flush —
    /// crashes are op-indexed, so none can land after the last op and
    /// the final image is never a replay target.
    fn take_checkpoint(&mut self, process: &dyn Process, charge: bool) -> Result<(), MachineError> {
        let Some(process_state) = process.snapshot() else {
            return Err(MachineError::CheckpointUnsupported { proc: self.me });
        };
        let cfg = self.ckpt.as_ref().expect("checkpointing configured").cfg;
        let (bytes, at_op, new_floors) = {
            let rel = self
                .rel
                .as_ref()
                .expect("checkpointing requires reliable mode");
            let ckpt = Checkpoint {
                proc: self.me,
                at_op: rel.fault.ops(self.me),
                taken_at: self.clock,
                process: process_state,
                senders: rel
                    .senders
                    .iter()
                    .map(|(&(d, t), c)| (d, t, c.snapshot()))
                    .collect(),
                recvs: rel
                    .recvs
                    .iter()
                    .map(|(&(s, t), c)| (s, t, c.snapshot()))
                    .collect(),
                sent: rel
                    .logical_sent
                    .iter()
                    .map(|(&(d, t), &v)| (d, t, v))
                    .collect(),
                recvd: rel
                    .logical_recvd
                    .iter()
                    .map(|(&(s, t), &v)| (s, t, v))
                    .collect(),
                stable: rel
                    .recvs
                    .iter()
                    .map(|(&(s, t), c)| (s, t, c.cumulative()))
                    .collect(),
            };
            let floors: BTreeMap<(ProcId, Tag), u64> =
                ckpt.stable.iter().map(|&(s, t, v)| ((s, t), v)).collect();
            (ckpt.to_bytes(), ckpt.at_op, floors)
        };
        if charge {
            let before = self.clock;
            self.clock = before.plus(cfg.checkpoint_cost(bytes.len()) * self.slowdown);
            self.trace.record_compute(self.me, before, self.clock);
        }
        self.trace.record(
            self.me,
            self.clock,
            EventKind::CheckpointTaken {
                at_op,
                bytes: bytes.len() as u64,
            },
        );
        self.metrics.count(self.me.0, Ctr::CheckpointsTaken, 1);
        self.metrics
            .count(self.me.0, Ctr::CheckpointBytes, bytes.len() as u64);
        self.metrics.flight(
            self.me.0,
            FlightKind::Checkpoint,
            NO_PEER,
            at_op,
            bytes.len() as u64,
            self.clock.0,
        );
        {
            let ck = self.ckpt.as_mut().expect("checkpointing configured");
            ck.report.checkpoints_taken += 1;
            ck.report.bytes_snapshotted += bytes.len() as u64;
            ck.last_op = at_op;
            ck.last_at = self.clock;
            ck.last_cost = cfg.checkpoint_cost(bytes.len());
            ck.image = bytes;
        }
        // The new floors are not proactively re-acked: each piggybacks on
        // the next batch ack of its stream, and a quiet stream is drained
        // by the final live acks at completion. An interrupt-style ack
        // costs real receive cycles at the peer, and the peer's delivered
        // floor already suppresses retransmission of everything the stale
        // stable floor still covers.
        let rel = self.rel.as_mut().expect("reliable mode");
        rel.stable = Some(new_floors);
        Ok(())
    }

    /// Crash recovery: roll this processor — and only this processor —
    /// back to its last checkpoint. The dead incarnation's incoming
    /// traffic is discarded (peer retransmissions regenerate anything
    /// that matters), the process image and reliable streams are rebuilt
    /// from the checkpoint, and the restored sender windows re-arm for
    /// retransmission so surviving peers' duplicate suppression absorbs
    /// the replay transparently.
    fn restore_from_checkpoint(
        &mut self,
        process: &mut dyn Process,
        crash_op: u64,
    ) -> Result<(), MachineError> {
        let (cfg, image) = {
            let ck = self.ckpt.as_ref().expect("checkpointing configured");
            (ck.cfg, ck.image.clone())
        };
        let ckpt = Checkpoint::from_bytes(&image).expect("internally written checkpoint parses");
        self.trace
            .record(self.me, self.clock, EventKind::Crash { at_op: crash_op });
        if !process.restore(&ckpt.process) {
            return Err(MachineError::CheckpointUnsupported { proc: self.me });
        }
        // Discard the dead incarnation's incoming traffic: everything
        // stashed plus everything fully arrived in the rings. A frame a
        // peer has only *partially* published stays in its reassembler —
        // clearing mid-frame state would misalign the word stream — and
        // any completed leftovers that land after this drain are absorbed
        // by sequence-number dedup like every other duplicate.
        self.drain();
        for (_, q) in self.stash.drain() {
            for (_, payload) in q {
                self.gauge.dec();
                self.pool.put(payload);
            }
        }
        self.clock = self.clock.plus(cfg.reboot_cycles);
        std::thread::sleep(cfg.reboot_wall);
        let rearm = {
            let rel = self.rel.as_ref().expect("reliable mode");
            saturating_deadline(Instant::now(), rel.cfg.rto_wall)
        };
        {
            let rel = self.rel.as_mut().expect("reliable mode");
            rel.senders = ckpt
                .senders
                .iter()
                .map(|(dst, tag, s)| ((*dst, *tag), SenderChan::from_snapshot(s, rearm)))
                .collect();
            rel.recvs = ckpt
                .recvs
                .iter()
                .map(|(src, tag, r)| ((*src, *tag), RecvChan::from_snapshot(r)))
                .collect();
            rel.logical_sent = ckpt.sent.iter().map(|&(d, t, v)| ((d, t), v)).collect();
            rel.logical_recvd = ckpt.recvd.iter().map(|&(s, t, v)| ((s, t), v)).collect();
            rel.stable = Some(ckpt.stable.iter().map(|&(s, t, v)| ((s, t), v)).collect());
        }
        // Solicit replay: re-advertise the rolled-back cumulative on
        // every receive stream. Peers see the live component drop below
        // their delivered floor and immediately re-arm the suffix this
        // incarnation lost. (If this ack is dropped by the fabric, the
        // keepalive in `rel_wait_for` re-sends it once we block starved.)
        let solicits: Vec<(ProcId, Tag, u64)> = {
            let rel = self.rel.as_ref().expect("reliable mode");
            rel.recvs
                .iter()
                .map(|(&(src, tag), c)| (src, tag, c.cumulative()))
                .collect()
        };
        let mut rel = self.rel.take().expect("reliable mode");
        for (src, tag, cum) in solicits {
            rel.acks_sent += 1;
            self.metrics.count(self.me.0, Ctr::AcksSent, 1);
            rel.fault.dispatch(
                self,
                self.me,
                src,
                ack_tag(tag),
                &[cum as Word, cum as Word],
            );
        }
        self.rel = Some(rel);
        for (dst, tag, s) in &ckpt.senders {
            for (seq, _) in &s.unacked {
                self.trace.record(
                    self.me,
                    self.clock,
                    EventKind::ReplayedFrame {
                        dst: *dst,
                        tag: *tag,
                        seq: *seq,
                    },
                );
            }
        }
        self.trace.record(
            self.me,
            self.clock,
            EventKind::Restore {
                from_op: ckpt.at_op,
                replayed: crash_op.saturating_sub(ckpt.at_op),
            },
        );
        let ck = self.ckpt.as_mut().expect("checkpointing configured");
        ck.last_op = crash_op;
        // Pacing restarts from the restore point; the restored image's
        // cost still amortizes the next snapshot.
        ck.last_at = self.clock;
        ck.report.crashes_survived += 1;
        ck.report.replayed_ops += crash_op.saturating_sub(ckpt.at_op);
        ck.report.replay_frames += ckpt.window_frames();
        ck.report.recovery_cycles += cfg.reboot_cycles;
        self.metrics.count(self.me.0, Ctr::CrashesSurvived, 1);
        self.metrics
            .count(self.me.0, Ctr::ReplayFrames, ckpt.window_frames());
        self.metrics.flight(
            self.me.0,
            FlightKind::Restore,
            NO_PEER,
            ckpt.at_op,
            crash_op.saturating_sub(ckpt.at_op),
            self.clock.0,
        );
        Ok(())
    }

    /// Step boundary housekeeping for crash faults: checkpoint first (so
    /// a crash landing on the same boundary restores with a zero-op
    /// replay), then roll the crash dice. An unrecoverable crash — no
    /// checkpointing configured — fails the thread with
    /// [`MachineError::Crashed`].
    fn crash_tick(&mut self, process: &mut dyn Process) -> Result<(), MachineError> {
        if self.rel.is_none() {
            return Ok(());
        }
        let ops = self.rel.as_ref().expect("reliable mode").fault.ops(self.me);
        if let Some(ck) = &self.ckpt {
            if ops >= ck.last_op + ck.cfg.interval_ops
                && ck.cfg.amortized(ck.last_at, ck.last_cost, self.clock)
            {
                self.take_checkpoint(&*process, true)?;
            }
        }
        let crashed = self
            .rel
            .as_mut()
            .expect("reliable mode")
            .fault
            .take_crash(self.me);
        if let Some(at_op) = crashed {
            if self.ckpt.is_some() {
                self.restore_from_checkpoint(process, at_op)?;
            } else {
                self.trace
                    .record(self.me, self.clock, EventKind::Crash { at_op });
                return Err(MachineError::Crashed {
                    proc: self.me,
                    at_op,
                });
            }
        }
        Ok(())
    }

    /// Completion housekeeping for a checkpointed processor: one final
    /// checkpoint makes the finished state durable, then the endpoint
    /// switches to live acknowledgements — and proactively re-acks every
    /// receive stream — so peers' retransmission windows drain and the
    /// run can terminate.
    fn ckpt_finish(&mut self, process: &dyn Process) -> Result<(), MachineError> {
        if self.ckpt.is_none() || self.rel.is_none() {
            return Ok(());
        }
        self.take_checkpoint(process, false)?;
        let mut rel = self.rel.take().expect("reliable mode");
        rel.stable = None;
        let streams: Vec<(ProcId, Tag, u64)> = rel
            .recvs
            .iter()
            .map(|(&(s, t), c)| (s, t, c.cumulative()))
            .collect();
        for (src, tag, cum) in streams {
            rel.acks_sent += 1;
            self.metrics.count(self.me.0, Ctr::AcksSent, 1);
            rel.fault.dispatch(
                self,
                self.me,
                src,
                ack_tag(tag),
                &[cum as Word, cum as Word],
            );
        }
        self.rel = Some(rel);
        Ok(())
    }

    /// Block until a `(src, tag)` message is stashed, or fail after
    /// `recv_timeout` with no arrivals at all. Any arrival resets the
    /// window: as long as traffic flows the system is live and the
    /// awaited message may still be in someone's future. A peer that
    /// finished without sending is an immediate deadlock; one that died
    /// an immediate [`MachineError::PeerDied`].
    fn wait_for(&mut self, src: ProcId, tag: Tag) -> Result<(), MachineError> {
        let mut deadline = saturating_deadline(Instant::now(), self.recv_timeout);
        let mut last_ingested = self.ingested;
        loop {
            // Status before drain: "finished, and the frame still is not
            // here after draining" soundly means it never will be,
            // because a finishing peer publishes before announcing.
            let epoch = self.epoch.load(Ordering::SeqCst);
            let st = self.status[src.0].load(Ordering::SeqCst);
            self.drain();
            if self.stash.get(&(src, tag)).is_some_and(|q| !q.is_empty()) {
                return Ok(());
            }
            match st {
                PEER_DEAD => {
                    return Err(MachineError::PeerDied {
                        proc: self.me,
                        peer: src,
                    });
                }
                PEER_FINISHED => {
                    return Err(MachineError::Deadlock {
                        waiting: vec![(self.me, src, tag)],
                    });
                }
                _ => {}
            }
            if self.ingested != last_ingested {
                last_ingested = self.ingested;
                deadline = saturating_deadline(Instant::now(), self.recv_timeout);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(MachineError::RecvTimeout {
                    proc: self.me,
                    src,
                    tag,
                    waited_ms: self.recv_timeout.as_millis() as u64,
                });
            }
            self.park(deadline, epoch);
        }
    }
}

impl Fabric for Endpoint {
    fn n_procs(&self) -> usize {
        self.n
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        debug_assert_eq!(p, self.me, "an endpoint only drives its own clock");
        let extra = self.rel.as_mut().map_or(0, |r| r.fault.stall_cycles(p));
        let before = self.clock;
        self.clock = before.plus((cycles + extra) * self.slowdown);
        self.stats.ops += 1;
        self.metrics.count(p.0, Ctr::Ops, 1);
        self.trace.record_compute(p, before, self.clock);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        self.send_ref(src, dst, tag, &payload);
    }

    fn send_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word]) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        if src == dst {
            // A self-send is a code-generation bug; record it for the
            // thread loop to surface, exactly as the simulator does.
            self.self_send.get_or_insert(src);
            return;
        }
        // Program sends route through the reliability layer when it is
        // on; protocol frames (dispatched while `rel` is detached) fall
        // through to the raw path below.
        if self.rel.is_some() {
            self.rel_send(dst, tag, payload);
            return;
        }
        let words = payload.len();
        let send_cost = self.cost.send_cost(words) * self.slowdown;
        self.clock = self.clock.plus(send_cost);
        let sent_at = self.clock;
        let arrives_at = sent_at.plus(self.cost.flight);
        self.stats.sends += 1;
        self.stats.words_sent += words as u64;
        *self.sent.entry((dst, tag)).or_insert(0) += 1;
        self.trace.record(
            src,
            sent_at,
            EventKind::Send {
                dst,
                tag,
                words,
                cost: send_cost,
            },
        );
        if !self.reliable {
            // Raw-fabric runs: the wire frame *is* the program-level
            // send. Reliable runs record theirs in `rel_send`; frames
            // reaching here while `rel` is detached are protocol traffic.
            self.metrics
                .logical_send(src.0, dst.0 as u64, tag.0 as u64, words as u64, sent_at.0);
        }
        self.gauge.inc();
        self.ring_send(dst, tag, arrives_at, payload);
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        debug_assert_eq!(dst, self.me, "an endpoint only receives as itself");
        if self.rel.is_some() {
            return self.rel_try_recv(src, tag);
        }
        self.drain();
        let (arrives, payload) = self.stash.get_mut(&(src, tag))?.pop_front()?;
        Some(self.consume(src, tag, arrives, payload))
    }

    fn try_recv_into(&mut self, dst: ProcId, src: ProcId, tag: Tag, out: &mut Vec<Word>) -> bool {
        debug_assert_eq!(dst, self.me, "an endpoint only receives as itself");
        let got = if self.rel.is_some() {
            self.rel_try_recv(src, tag)
        } else {
            self.drain();
            self.stash
                .get_mut(&(src, tag))
                .and_then(VecDeque::pop_front)
                .map(|(arrives, payload)| self.consume(src, tag, arrives, payload))
        };
        match got {
            Some(payload) => {
                out.clear();
                out.extend_from_slice(&payload);
                self.pool.put(payload);
                true
            }
            None => false,
        }
    }

    fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        let send_cost = self.cost.send_cost(words) * self.slowdown;
        self.clock = self.clock.plus(send_cost);
        self.stats.sends += 1;
        self.stats.words_sent += words as u64;
        self.metrics.count(self.me.0, Ctr::FramesLost, 1);
        self.trace.record(
            src,
            self.clock,
            EventKind::FrameLost {
                dst,
                tag,
                words,
                cost: send_cost,
            },
        );
    }

    fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        self.inject_ref(src, dst, tag, &payload, extra);
    }

    fn inject_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word], extra: u64) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        let sent_at = self.clock;
        let arrives_at = sent_at.plus(self.cost.flight).plus(extra);
        self.gauge.inc();
        self.ring_send(dst, tag, arrives_at, payload);
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.metrics)
    }
}

/// What one finished thread hands back for merging.
struct ThreadDone {
    clock: Time,
    stats: ProcStats,
    sent: BTreeMap<(ProcId, Tag), u64>,
    recvd: BTreeMap<(ProcId, Tag), u64>,
    steps: u64,
    trace: Trace,
    rel: Option<ThreadRelDone>,
    recovery: Option<RecoveryReport>,
}

/// Reliable-mode tallies from one finished thread.
struct ThreadRelDone {
    logical_sent: BTreeMap<(ProcId, Tag), u64>,
    logical_recvd: BTreeMap<(ProcId, Tag), u64>,
    retransmits: u64,
    acks_sent: u64,
    dups: u64,
    max_gap: u64,
    injected: FaultCounts,
}

/// Run one process against its endpoint: the per-thread step loop shared
/// by every configuration. Always returns the endpoint's harvested state
/// — on an error the partial tallies (clock, traffic counts, trace, the
/// flight recorder's recent history) are exactly the diagnostics the
/// failure report needs, so they must not be dropped with the thread.
fn drive<P: Process>(
    process: &mut P,
    ep: &mut Endpoint,
    budget: u64,
) -> (ThreadDone, Option<MachineError>) {
    let mut steps: u64 = 0;
    let err = drive_loop(process, ep, budget, &mut steps).err();
    let done = ThreadDone {
        clock: ep.clock,
        stats: std::mem::take(&mut ep.stats),
        sent: std::mem::take(&mut ep.sent),
        recvd: std::mem::take(&mut ep.recvd),
        steps,
        trace: std::mem::take(&mut ep.trace),
        recovery: ep.ckpt.take().map(|c| c.report),
        rel: ep.rel.take().map(|r| ThreadRelDone {
            logical_sent: r.logical_sent,
            logical_recvd: r.logical_recvd,
            retransmits: r.retransmits,
            acks_sent: r.acks_sent,
            dups: r.recvs.values().map(|c| c.dups).sum(),
            max_gap: r.recvs.values().map(|c| c.max_gap).max().unwrap_or(0),
            injected: r.fault.counts(),
        }),
    };
    (done, err)
}

fn drive_loop<P: Process>(
    process: &mut P,
    ep: &mut Endpoint,
    budget: u64,
    steps: &mut u64,
) -> Result<(), MachineError> {
    let me = ep.me;
    if ep.ckpt.is_some() {
        // Initial checkpoint: a restore target exists whatever the crash
        // point. Free — the launch image exists before the clocks start.
        ep.take_checkpoint(&*process, false)?;
    }
    loop {
        if *steps >= budget {
            return Err(MachineError::StepBudgetExceeded { budget });
        }
        *steps += 1;
        let step = process.step(ep, me)?;
        if let Some(sp) = ep.take_self_send() {
            return Err(MachineError::SelfSend { proc: sp });
        }
        if let Some(e) = ep.take_fatal() {
            return Err(e);
        }
        match step {
            Step::Ran => {
                ep.crash_tick(process)?;
            }
            Step::Done => {
                ep.ckpt_finish(&*process)?;
                ep.trace.record(me, ep.clock, EventKind::Finish);
                break;
            }
            Step::BlockedOnRecv { src, tag } => {
                if ep.rel.is_some() {
                    ep.rel_wait_for(src, tag)?;
                } else {
                    ep.wait_for(src, tag)?;
                }
            }
        }
    }
    if ep.rel.is_some() {
        ep.rel_linger()?;
    }
    Ok(())
}

/// Drives one [`Process`] per OS thread to completion and merges the
/// per-thread tallies into the same [`RunReport`] the
/// [`Scheduler`](crate::Scheduler) produces.
#[derive(Debug, Clone)]
pub struct ThreadedRunner {
    cost: CostModel,
    recv_timeout: Duration,
    step_budget: u64,
    slowdowns: Option<Vec<u64>>,
    faults: Option<(FaultPlan, RelConfig)>,
    ckpt: Option<CheckpointCfg>,
    /// Trace configuration template, cloned (empty) onto each endpoint.
    /// Disabled by default. Note the cap applies *per processor* here —
    /// each thread bounds its own memory — where the simulator's cap is
    /// global.
    trace: Trace,
    /// Ring capacity override in words; `None` sizes from the pair count.
    ring_words: Option<usize>,
    /// Test probe accumulating every endpoint's park count.
    wake_probe: Option<Arc<AtomicU64>>,
    /// Record full metrics (counters/histograms/channel tables), not just
    /// the always-on flight recorder.
    metrics_full: bool,
    /// Caller-owned registry to record into — the live-sampling hook.
    metrics_shared: Option<Arc<MetricsRegistry>>,
}

impl ThreadedRunner {
    /// A runner with the default receive timeout and no step budget.
    pub fn new(cost: CostModel) -> Self {
        ThreadedRunner {
            cost,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            step_budget: u64::MAX,
            slowdowns: None,
            faults: None,
            ckpt: None,
            trace: Trace::disabled(),
            ring_words: None,
            wake_probe: None,
            metrics_full: false,
            metrics_shared: None,
        }
    }

    /// Enable full metrics recording: lock-free per-processor counters,
    /// histograms, and per-channel traffic tables, snapshotted into
    /// [`RunReport::metrics`]. The flight recorder is on regardless.
    pub fn with_metrics(mut self) -> Self {
        self.metrics_full = true;
        self
    }

    /// Record into a caller-owned registry instead of a private one — the
    /// live-sampling hook: another thread may
    /// [`snapshot`](MetricsRegistry::snapshot) it while the run executes
    /// (the `monitor` bench's refreshing dashboard does exactly that).
    ///
    /// # Panics
    ///
    /// Panics at [`run`](Self::run) time if the registry's shard count
    /// differs from the process count.
    pub fn with_metrics_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics_shared = Some(registry);
        self
    }

    /// Enable bounded event tracing, `cap` events *per processor*
    /// (keep-oldest policy; see [`with_trace_config`](Self::with_trace_config)).
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace = Trace::bounded(cap);
        self
    }

    /// Enable tracing with the cap/policy of a configured [`Trace`] — how
    /// a simulator machine's trace configuration is carried over to the
    /// threaded backend.
    pub fn with_trace_config(mut self, template: &Trace) -> Self {
        self.trace = template.like();
        self
    }

    /// Run over a faulty fabric with the reliable-delivery protocol
    /// interposed (wall-clock retransmission deadlines). The plan's
    /// per-transmission decisions stay deterministic, but *how many*
    /// transmissions occur depends on real-time retransmission races, so
    /// only program-visible results — outputs and logical pair counts —
    /// are reproducible, not the protocol tallies.
    pub fn with_faults(mut self, plan: FaultPlan, cfg: RelConfig) -> Self {
        self.faults = Some((plan, cfg));
        self
    }

    /// Periodic checkpoints with crash restart. Implies the reliable
    /// protocol (an empty fault plan if none was configured): the
    /// ack-lagging consistent cut and the replay path both live there.
    ///
    /// # Panics
    ///
    /// Panics on a coordinated-mode configuration — barrier-aligned
    /// global snapshots need the simulator's round structure; real
    /// threads have no global step boundary to align on.
    pub fn with_checkpoints(mut self, cfg: CheckpointCfg) -> Self {
        assert!(
            !cfg.coordinated,
            "coordinated checkpoints are simulator-only; use independent mode here"
        );
        self.ckpt = Some(cfg);
        self
    }

    /// Fail a blocked receive after `timeout` without any arrival.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Limit the number of steps *per processor* (runaway guard). The
    /// simulator budgets total steps instead; threads cannot share a
    /// counter without serializing on it.
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Per-processor slowdown factors, as
    /// [`Machine::with_slowdowns`](crate::Machine::with_slowdowns).
    ///
    /// # Panics
    ///
    /// Panics (at [`run`](Self::run) time) if the length differs from the
    /// process count, or here if any factor is zero.
    pub fn with_slowdowns(mut self, factors: Vec<u64>) -> Self {
        assert!(factors.iter().all(|&f| f > 0), "factors must be positive");
        self.slowdowns = Some(factors);
        self
    }

    /// Override the per-pair ring capacity in words (power of two, at
    /// least 8). A tiny capacity forces every frame through the chunked
    /// slow path — results must not change; primarily a test hook.
    pub fn with_ring_capacity(mut self, words: usize) -> Self {
        assert!(
            words.is_power_of_two() && words >= 8,
            "ring capacity must be a power of two >= 8"
        );
        self.ring_words = Some(words);
        self
    }

    /// Accumulate every thread's park count into `probe` at exit — the
    /// regression hook for wakeup batching (a polling implementation
    /// shows hundreds of wakes where a parked one shows a handful).
    pub fn with_wake_probe(mut self, probe: Arc<AtomicU64>) -> Self {
        self.wake_probe = Some(probe);
        self
    }

    /// Run `processes[p]` on its own thread as processor `p` until every
    /// process finishes.
    ///
    /// # Errors
    ///
    /// The root-most error any thread hit, ranked
    /// [`MachineError::Crashed`] (unrecoverable crash) >
    /// [`MachineError::ProcessFault`] >
    /// [`MachineError::StepBudgetExceeded`] >
    /// [`MachineError::RetriesExhausted`] (starved sender) >
    /// [`MachineError::RecvTimeout`] (cyclic deadlock) >
    /// [`MachineError::Deadlock`] (awaiting a finished peer) >
    /// [`MachineError::PeerDied`] (awaiting a dead peer) — later ranks
    /// are usually cascades of earlier ones, and which *thread* fails
    /// first is a wall-clock race the ranking hides.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or a slowdown vector of the wrong
    /// length was supplied.
    pub fn run<P: Process + Send>(&self, processes: &mut [P]) -> Result<RunReport, MachineError> {
        let (report, err) = self.run_with_report(processes);
        match err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// [`run`](Self::run), but the merged [`RunReport`] survives failure:
    /// whatever per-endpoint state exists — partial traffic counts,
    /// traces, the flight recorder — is harvested and merged *before* the
    /// ranked root error is reported, so an early `PeerDied`, exhausted
    /// retry, or deadlock still comes with its diagnostics. A processor
    /// whose thread panicked contributes empty per-processor slots (its
    /// endpoint died with the stack); everyone else's state is intact,
    /// and the shared metrics registry retains even the panicking
    /// processor's counters.
    pub fn run_with_report<P: Process + Send>(
        &self,
        processes: &mut [P],
    ) -> (RunReport, Option<MachineError>) {
        let n = processes.len();
        assert!(n > 0, "a machine needs at least one processor");
        if let Some(f) = &self.slowdowns {
            assert_eq!(f.len(), n, "one factor per processor");
        }
        let gauge = Arc::new(Gauge::default());
        let bells: Arc<Vec<Doorbell>> = Arc::new((0..n).map(|_| Doorbell::new()).collect());
        let status: Arc<Vec<AtomicU8>> =
            Arc::new((0..n).map(|_| AtomicU8::new(PEER_RUNNING)).collect());
        let epoch = Arc::new(AtomicU64::new(0));
        // One preallocated SPSC ring per ordered pair: txs[s][d] produces
        // into the ring rxs[d][s] consumes.
        let ring_words = self.ring_words.unwrap_or_else(|| default_ring_words(n));
        let multicore = std::thread::available_parallelism().is_ok_and(|p| p.get() > 1);
        let mut txs: Vec<Vec<Option<FrameTx>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<FrameRx>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    let (tx, rx) = ring(ring_words);
                    txs[src][dst] = Some(FrameTx::new(tx));
                    rxs[dst][src] = Some(FrameRx::new(rx));
                }
            }
        }
        // Checkpointing rides on the reliable protocol; enable it with an
        // empty fault plan when only checkpoints were requested.
        let faults = self
            .faults
            .clone()
            .or_else(|| self.ckpt.map(|_| (FaultPlan::none(), RelConfig::default())));
        let registry = match &self.metrics_shared {
            Some(r) => {
                assert_eq!(r.n_procs(), n, "one metrics shard per processor");
                Arc::clone(r)
            }
            None if self.metrics_full => Arc::new(MetricsRegistry::new(n)),
            None => Arc::new(MetricsRegistry::flight_only(n)),
        };
        let mut endpoints: Vec<Endpoint> = txs
            .into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(p, (tx, rx))| Endpoint {
                me: ProcId(p),
                n,
                cost: self.cost,
                slowdown: self.slowdowns.as_ref().map_or(1, |f| f[p]),
                clock: Time::ZERO,
                stats: ProcStats::default(),
                tx,
                rx,
                stash: HashMap::new(),
                pool: BufPool::new(),
                sent: BTreeMap::new(),
                recvd: BTreeMap::new(),
                self_send: None,
                rel: faults.as_ref().map(|(plan, cfg)| {
                    Box::new(EndpointRel::new(plan.clone(), *cfg, self.ckpt.is_some()))
                }),
                bells: Arc::clone(&bells),
                status: Arc::clone(&status),
                epoch: Arc::clone(&epoch),
                ingested: 0,
                wakes: 0,
                spin: multicore,
                wake_probe: self.wake_probe.clone(),
                gauge: Arc::clone(&gauge),
                recv_timeout: self.recv_timeout,
                ckpt: self.ckpt.map(|cfg| CkptCtl {
                    cfg,
                    last_op: 0,
                    last_at: Time(0),
                    last_cost: 0,
                    image: Vec::new(),
                    report: RecoveryReport::default(),
                }),
                trace: self.trace.like(),
                metrics: Arc::clone(&registry),
                reliable: faults.is_some(),
            })
            .collect();

        let budget = self.step_budget;
        let results: Vec<(Option<ThreadDone>, Option<MachineError>)> = std::thread::scope(|s| {
            let handles: Vec<_> = processes
                .iter_mut()
                .zip(endpoints.drain(..))
                .enumerate()
                .map(|(p, (process, mut ep))| {
                    s.spawn(move || {
                        ep.bells[p].register();
                        // The guard posts `finished` only on the success
                        // path; an error return or a panic unwind drops
                        // it unfinished and posts `dead`, waking every
                        // blocked peer immediately.
                        let mut guard = StatusGuard {
                            status: Arc::clone(&ep.status),
                            bells: Arc::clone(&ep.bells),
                            epoch: Arc::clone(&ep.epoch),
                            me: p,
                            finished: false,
                        };
                        let (done, err) = drive(process, &mut ep, budget);
                        if let Some(probe) = &ep.wake_probe {
                            probe.fetch_add(ep.wakes, Ordering::Relaxed);
                        }
                        if err.is_none() {
                            guard.finish();
                        }
                        (done, err)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(p, h)| {
                    // A panicked thread harvested nothing; everything it
                    // recorded into the shared registry survives.
                    h.join().map(|(d, e)| (Some(d), e)).unwrap_or_else(|_| {
                        (
                            None,
                            Some(MachineError::ProcessFault {
                                proc: ProcId(p),
                                message: "process thread panicked".into(),
                            }),
                        )
                    })
                })
                .collect()
        });

        // When one thread fails, its peers cascade into secondary errors,
        // so rank the causes: a fault or an exhausted budget is always the
        // root; a receive timeout is the root diagnosis of a cycle (which
        // thread times out first is a wall-clock race, so reporting by
        // processor id would make the error variant nondeterministic); a
        // finished-peer deadlock wins only when nothing else went wrong;
        // and a dead-peer cascade loses to everything — the dead thread
        // always contributes its own root error, which is the diagnosis.
        fn rank(e: &MachineError) -> u8 {
            match e {
                // An unrecoverable crash is the rootmost cause of all:
                // every peer of the dead processor cascades into
                // exhausted retries, timeouts, or hang-up deadlocks.
                MachineError::Crashed { .. } => 0,
                MachineError::ProcessFault { .. } => 1,
                MachineError::StepBudgetExceeded { .. } => 2,
                // A starved sender is the root cause; its peers cascade
                // into timeouts and hang-up deadlocks.
                MachineError::RetriesExhausted { .. } => 3,
                MachineError::RecvTimeout { .. } => 4,
                MachineError::PeerDied { .. } => 6,
                _ => 5,
            }
        }
        let mut worst: Option<MachineError> = None;
        let mut done: Vec<Option<ThreadDone>> = Vec::with_capacity(n);
        for (d, e) in results {
            done.push(d);
            if let Some(e) = e {
                match &worst {
                    Some(w) if rank(w) <= rank(&e) => {}
                    _ => worst = Some(e),
                }
            }
        }

        let reliable = faults.is_some();
        let mut recovery_total = self.ckpt.map(|_| RecoveryReport::default());
        let mut pair_messages: BTreeMap<(ProcId, ProcId, Tag), u64> = BTreeMap::new();
        let mut recvd_by_triple: BTreeMap<(ProcId, ProcId, Tag), u64> = BTreeMap::new();
        let mut network = NetworkStats::default();
        let mut steps: u64 = 0;
        let mut clocks = Vec::with_capacity(n);
        let mut procs = Vec::with_capacity(n);
        let mut fault_report = reliable.then(FaultReport::default);
        let mut traces = Vec::with_capacity(n);
        for (p, d) in done.into_iter().enumerate() {
            let me = ProcId(p);
            let Some(d) = d else {
                // Panicked thread: hold its slots so the per-processor
                // vectors stay index-aligned with processor ids.
                traces.push(self.trace.like());
                clocks.push(Time::ZERO);
                procs.push(ProcStats::default());
                continue;
            };
            traces.push(d.trace);
            if let (Some(total), Some(r)) = (recovery_total.as_mut(), d.recovery.as_ref()) {
                total.merge(r);
            }
            if let Some(r) = d.rel {
                // Reliable mode: report *program-level* traffic; raw frame
                // counts (retransmits, acks, seq overhead) stay visible in
                // the per-processor and network stats.
                for ((dst, tag), count) in r.logical_sent {
                    pair_messages.insert((me, dst, tag), count);
                }
                for ((src, tag), count) in r.logical_recvd {
                    recvd_by_triple.insert((src, me, tag), count);
                }
                let fr = fault_report.as_mut().expect("reliable mode");
                fr.injected.merge(&r.injected);
                fr.retransmits += r.retransmits;
                fr.acks_sent += r.acks_sent;
                fr.dup_frames_dropped += r.dups;
                fr.max_gap = fr.max_gap.max(r.max_gap);
            } else {
                for ((dst, tag), count) in d.sent {
                    pair_messages.insert((me, dst, tag), count);
                }
                for ((src, tag), count) in d.recvd {
                    recvd_by_triple.insert((src, me, tag), count);
                }
            }
            network.messages += d.stats.sends;
            network.words += d.stats.words_sent;
            steps += d.steps;
            clocks.push(d.clock);
            procs.push(d.stats);
        }
        network.max_in_flight = gauge.max.load(Ordering::Relaxed);
        let pending: Vec<(ProcId, ProcId, Tag, usize)> = pair_messages
            .iter()
            .filter_map(|(&(src, dst, tag), &sent)| {
                let got = recvd_by_triple.get(&(src, dst, tag)).copied().unwrap_or(0);
                (sent > got).then_some((src, dst, tag, (sent - got) as usize))
            })
            .collect();
        let undelivered = pending.iter().map(|&(_, _, _, k)| k).sum();
        if let Some(fr) = fault_report.as_mut() {
            fr.raw_leftover = gauge.cur.load(Ordering::Relaxed) as usize;
        }
        let report = RunReport {
            stats: MachineStats {
                network,
                procs,
                clocks,
            },
            steps,
            undelivered,
            pair_messages,
            pending,
            fault: fault_report,
            recovery: recovery_total,
            trace: Trace::merge(traces),
            metrics: registry.snapshot(),
        };
        (report, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Scripted toy process from the scheduler tests, replayed on
    /// real threads.
    enum Action {
        Compute(u64),
        Send(usize, u32, Vec<i64>),
        Recv(usize, u32),
        /// Wall-clock sleep — models a slow peer without logical cost.
        Sleep(Duration),
        /// Abort the process with a [`MachineError::ProcessFault`].
        Fail,
        /// Panic the thread (exercises the unwind path of peer-death
        /// detection).
        Panic,
    }

    struct Scripted {
        script: Vec<Action>,
        pc: usize,
        received: Vec<Vec<i64>>,
    }

    impl Scripted {
        fn new(script: Vec<Action>) -> Self {
            Scripted {
                script,
                pc: 0,
                received: Vec::new(),
            }
        }
    }

    impl Process for Scripted {
        fn snapshot(&self) -> Option<Vec<u8>> {
            let mut b = Vec::new();
            b.extend_from_slice(&(self.pc as u64).to_le_bytes());
            b.extend_from_slice(&(self.received.len() as u64).to_le_bytes());
            for r in &self.received {
                b.extend_from_slice(&(r.len() as u64).to_le_bytes());
                for w in r {
                    b.extend_from_slice(&w.to_le_bytes());
                }
            }
            Some(b)
        }

        fn restore(&mut self, state: &[u8]) -> bool {
            let mut pos = 0;
            let u64_at = |p: &mut usize| -> Option<u64> {
                let v = u64::from_le_bytes(state.get(*p..*p + 8)?.try_into().ok()?);
                *p += 8;
                Some(v)
            };
            let Some(pc) = u64_at(&mut pos) else {
                return false;
            };
            let Some(n) = u64_at(&mut pos) else {
                return false;
            };
            let mut received = Vec::new();
            for _ in 0..n {
                let Some(len) = u64_at(&mut pos) else {
                    return false;
                };
                let mut words = Vec::new();
                for _ in 0..len {
                    let Some(w) = u64_at(&mut pos) else {
                        return false;
                    };
                    words.push(w as i64);
                }
                received.push(words);
            }
            self.pc = pc as usize;
            self.received = received;
            true
        }

        fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
            let Some(action) = self.script.get(self.pc) else {
                return Ok(Step::Done);
            };
            match action {
                Action::Compute(c) => {
                    fabric.tick(me, *c);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Send(dst, tag, payload) => {
                    fabric.send(me, ProcId(*dst), Tag(*tag), payload.clone());
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Recv(src, tag) => match fabric.try_recv(me, ProcId(*src), Tag(*tag)) {
                    Some(words) => {
                        self.received.push(words);
                        self.pc += 1;
                        Ok(Step::Ran)
                    }
                    None => Ok(Step::BlockedOnRecv {
                        src: ProcId(*src),
                        tag: Tag(*tag),
                    }),
                },
                Action::Sleep(d) => {
                    std::thread::sleep(*d);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Fail => Err(MachineError::ProcessFault {
                    proc: me,
                    message: "scripted fault".into(),
                }),
                Action::Panic => panic!("scripted panic"),
            }
        }
    }

    #[test]
    fn ping_pong_matches_simulator_makespan() {
        let c = CostModel::ipsc2();
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1]), Action::Recv(1, 1)]),
            Scripted::new(vec![Action::Recv(0, 0), Action::Send(0, 1, vec![2])]),
        ];
        let report = ThreadedRunner::new(c).run(&mut procs).unwrap();
        assert_eq!(report.stats.network.messages, 2);
        assert_eq!(report.undelivered, 0);
        // Same critical path the simulator computes: the logical clocks
        // are driven by arrival stamps, not wall time.
        let expected = 2 * (c.send_cost(1) + c.flight + c.recv_cost(1));
        assert_eq!(report.stats.makespan().0, expected);
        assert_eq!(procs[0].received, vec![vec![2]]);
    }

    #[test]
    fn pair_counts_recorded() {
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 3, vec![1]),
                Action::Send(1, 3, vec![2]),
                Action::Send(1, 4, vec![3]),
            ]),
            Scripted::new(vec![
                Action::Recv(0, 3),
                Action::Recv(0, 3),
                Action::Recv(0, 4),
            ]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(3))),
            Some(&2)
        );
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(4))),
            Some(&1)
        );
        // FIFO within the typed channel.
        assert_eq!(procs[1].received, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn cyclic_deadlock_times_out() {
        let mut procs = vec![
            Scripted::new(vec![Action::Recv(1, 0)]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_millis(50))
            .run(&mut procs)
            .unwrap_err();
        assert!(
            matches!(err, MachineError::RecvTimeout { .. }),
            "expected timeout, got {err}"
        );
    }

    #[test]
    fn waiting_on_finished_peer_is_deadlock() {
        // P1 waits for a message P0 never sends; P0 finishes immediately,
        // so the status board detects the hang-up without burning the
        // timeout.
        let mut procs = vec![
            Scripted::new(vec![]),
            Scripted::new(vec![Action::Recv(0, 7)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .run(&mut procs)
            .unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => {
                assert_eq!(waiting, vec![(ProcId(1), ProcId(0), Tag(7))]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn dying_peer_unblocks_receivers_immediately() {
        // P0 aborts with its own error; P1 blocks with a 60 s timeout.
        // The status board must fail P1's receive immediately (as the
        // internal PeerDied cascade), and the final report carries P0's
        // root fault — PeerDied ranks below every real error.
        let mut procs = vec![
            Scripted::new(vec![Action::Fail]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let t0 = Instant::now();
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(60))
            .run(&mut procs)
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
        assert!(
            matches!(
                err,
                MachineError::ProcessFault {
                    proc: ProcId(0),
                    ..
                }
            ),
            "expected the dead peer's root fault, got {err}"
        );
    }

    #[test]
    fn failed_run_report_retains_partial_diagnostics() {
        // Regression: early error paths (process fault, PeerDied
        // cascade, deadlock) used to drop every per-endpoint tally.
        // P0 delivers one message and then blocks forever; P1 consumes
        // it and faults. The merged report must still carry the
        // delivered traffic and the always-on flight history.
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 3, vec![1, 2]), Action::Recv(1, 9)]),
            Scripted::new(vec![Action::Recv(0, 3), Action::Fail]),
        ];
        let (report, err) = ThreadedRunner::new(CostModel::ipsc2())
            .with_recv_timeout(Duration::from_secs(60))
            .run_with_report(&mut procs);
        let err = err.expect("the run fails");
        assert!(
            matches!(
                err,
                MachineError::ProcessFault {
                    proc: ProcId(1),
                    ..
                }
            ),
            "expected P1's root fault, got {err}"
        );
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(3))),
            Some(&1),
            "delivered traffic survives the failure"
        );
        assert_eq!(report.stats.network.messages, 1);
        assert_eq!(report.stats.procs.len(), 2, "slots stay index-aligned");
        assert!(report.metrics.procs[0]
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Send));
        assert!(report.metrics.procs[1]
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Recv));
    }

    #[test]
    fn panicked_processor_holds_empty_slot_in_merged_report() {
        // A panicking thread can harvest nothing, but its peers' partial
        // tallies must survive and the per-processor vectors must keep
        // their processor-id alignment.
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 3, vec![7]), Action::Recv(1, 9)]),
            Scripted::new(vec![Action::Panic]),
        ];
        let (report, err) = ThreadedRunner::new(CostModel::ipsc2())
            .with_recv_timeout(Duration::from_secs(60))
            .run_with_report(&mut procs);
        assert!(err.is_some(), "the run fails");
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(3))),
            Some(&1),
            "the surviving processor's send is reported"
        );
        assert_eq!(report.stats.procs.len(), 2);
        assert_eq!(report.stats.clocks.len(), 2);
        assert!(report.metrics.procs[0]
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Send));
    }

    #[test]
    fn panicking_peer_unblocks_receivers_immediately() {
        // Same as above through the unwind path: the status guard's Drop
        // posts `dead` during the panic unwind.
        let mut procs = vec![
            Scripted::new(vec![Action::Panic]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let t0 = Instant::now();
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(60))
            .run(&mut procs)
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
        assert!(
            matches!(
                err,
                MachineError::ProcessFault {
                    proc: ProcId(0),
                    ..
                }
            ),
            "expected the panicked peer's fault, got {err}"
        );
    }

    #[test]
    fn unreceived_message_counts_as_undelivered() {
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1, 2, 3])]),
            Scripted::new(vec![Action::Compute(1)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.undelivered, 1);
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Forever;
        impl Process for Forever {
            fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
                fabric.tick(me, 1);
                Ok(Step::Ran)
            }
        }
        let mut procs = vec![Forever];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_step_budget(1000)
            .run(&mut procs)
            .unwrap_err();
        assert!(matches!(err, MachineError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn slowdowns_scale_local_work() {
        let mut procs = vec![
            Scripted::new(vec![Action::Compute(10)]),
            Scripted::new(vec![Action::Compute(10)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .with_slowdowns(vec![3, 1])
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.stats.clocks[0], Time(30));
        assert_eq!(report.stats.clocks[1], Time(10));
    }

    #[test]
    fn pending_triples_reported_at_teardown() {
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 0, vec![1]),
                Action::Send(1, 3, vec![2]),
            ]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.undelivered, 1);
        assert_eq!(report.pending, vec![(ProcId(0), ProcId(1), Tag(3), 1)]);
    }

    #[test]
    fn self_send_surfaces_as_error() {
        let mut procs = vec![
            Scripted::new(vec![Action::Send(0, 0, vec![1])]),
            Scripted::new(vec![]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap_err();
        assert_eq!(err, MachineError::SelfSend { proc: ProcId(0) });
    }

    #[test]
    fn tiny_rings_match_default_capacity_bit_for_bit() {
        // 8-word rings cannot hold one 22-word frame: every send runs the
        // chunked slow path and the consumer reassembles across hundreds
        // of wraparounds. Outputs and logical clocks must be identical to
        // the default-capacity run — capacity is invisible to the
        // program.
        let c = CostModel::ipsc2();
        let build = || {
            let mut a = Vec::new();
            let mut b = Vec::new();
            for i in 0..50i64 {
                a.push(Action::Send(1, 0, (0..20).map(|w| w + i).collect()));
                b.push(Action::Recv(0, 0));
            }
            vec![Scripted::new(a), Scripted::new(b)]
        };
        let mut tiny = build();
        let tiny_report = ThreadedRunner::new(c)
            .with_ring_capacity(8)
            .run(&mut tiny)
            .unwrap();
        let mut dflt = build();
        let dflt_report = ThreadedRunner::new(c).run(&mut dflt).unwrap();
        assert_eq!(tiny[1].received, dflt[1].received);
        assert_eq!(
            tiny_report.stats.makespan().0,
            dflt_report.stats.makespan().0,
            "ring capacity is invisible to logical time"
        );
        assert_eq!(tiny_report.undelivered, 0);
    }

    /// A short RTO so lossy tests retransmit promptly.
    fn fast_rel() -> RelConfig {
        RelConfig {
            rto_wall: Duration::from_millis(2),
            ..RelConfig::default()
        }
    }

    fn stream_scripts() -> Vec<Scripted> {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            a.push(Action::Send(1, 0, vec![i]));
            b.push(Action::Recv(0, 0));
        }
        a.push(Action::Recv(1, 1));
        b.push(Action::Send(0, 1, vec![99]));
        vec![Scripted::new(a), Scripted::new(b)]
    }

    #[test]
    fn reliable_empty_plan_delivers_in_order() {
        let mut procs = stream_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(FaultPlan::none(), fast_rel())
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected);
        assert_eq!(report.undelivered, 0);
        assert!(report.pending.is_empty());
        let fr = report.fault.expect("reliable run carries a report");
        assert_eq!(fr.injected.total(), 0);
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(0))),
            Some(&10),
            "logical pair counts see program messages, not protocol frames"
        );
    }

    #[test]
    fn reliable_lossy_plan_recovers_exactly_once_in_order() {
        let plan = FaultPlan::seeded(7)
            .with_drops(250)
            .with_dups(150)
            .with_delays(100, 5_000)
            .with_reorders(100)
            .with_fault_budget(6);
        let mut procs = stream_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected, "exactly-once, in-order");
        assert_eq!(report.undelivered, 0);
        let fr = report.fault.expect("reliable run carries a report");
        assert!(fr.injected.total() > 0, "the plan injected faults");
    }

    #[test]
    fn tiny_rings_survive_a_lossy_plan() {
        // Retransmissions, dups, and acks all squeezed through 16-word
        // rings: the reliable protocol must not care how the wire is
        // chunked.
        let plan = FaultPlan::seeded(11)
            .with_drops(250)
            .with_dups(150)
            .with_fault_budget(4);
        let mut procs = stream_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .with_ring_capacity(16)
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected, "exactly-once, in-order");
        assert_eq!(report.undelivered, 0);
    }

    #[test]
    fn reliable_black_hole_exhausts_retries() {
        let plan = FaultPlan::seeded(0).with_black_hole(ProcId(0), ProcId(1), Tag(0));
        let cfg = RelConfig {
            rto_wall: Duration::from_millis(2),
            max_retries: 3,
            ..RelConfig::default()
        };
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1])]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .with_faults(plan, cfg)
            .run(&mut procs)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RetriesExhausted {
                proc: ProcId(0),
                peer: ProcId(1),
                tag: Tag(0),
                retries: 3,
                last_acked: 0,
            }
        );
    }

    #[test]
    fn linger_deadline_saturates_instead_of_overflowing() {
        // `Instant + Duration::MAX` panics; the saturating helper must
        // instead land on a far-future deadline ("never"), not clamp to
        // now (which would busy-spin the linger loop).
        let base = Instant::now();
        let d = saturating_deadline(base, Duration::MAX);
        assert!(
            d >= base + Duration::from_secs(3600),
            "far future, got {d:?}"
        );
        assert_eq!(saturating_deadline(base, Duration::ZERO), base);
        assert_eq!(
            saturating_deadline(base, Duration::from_millis(1)),
            base + Duration::from_millis(1)
        );
    }

    #[test]
    fn linger_parks_instead_of_polling() {
        // P0 finishes instantly but must linger: in checkpoint mode its
        // one frame is delivered yet acked only at the stable floor (0),
        // so the window stays open — with no retransmission deadline —
        // until P1's final live acks, which P1 delays behind a 150 ms
        // sleep. The old linger polled that state at 1 ms (~150 wakes
        // here); the parked linger wakes only on real events.
        let probe = Arc::new(AtomicU64::new(0));
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1])]),
            Scripted::new(vec![
                Action::Recv(0, 0),
                Action::Sleep(Duration::from_millis(150)),
            ]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .with_checkpoints(CheckpointCfg::every(1_000_000))
            .with_wake_probe(Arc::clone(&probe))
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.undelivered, 0);
        assert_eq!(procs[1].received, vec![vec![1]]);
        let wakes = probe.load(Ordering::Relaxed);
        assert!(
            wakes < 25,
            "linger should park, not poll: {wakes} wakes across both threads"
        );
    }

    /// The sim recovery tests' stream pair, with computes interleaved on
    /// the sender so its charged-op counter (which crash and checkpoint
    /// points key on) advances.
    fn crash_scripts() -> Vec<Scripted> {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            a.push(Action::Send(1, 0, vec![i]));
            a.push(Action::Compute(10));
            b.push(Action::Recv(0, 0));
        }
        a.push(Action::Recv(1, 1));
        b.push(Action::Send(0, 1, vec![99]));
        vec![Scripted::new(a), Scripted::new(b)]
    }

    #[test]
    fn sender_crash_recovery_is_transparent_on_threads() {
        let mut clean = crash_scripts();
        let clean_report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(FaultPlan::none(), fast_rel())
            .run(&mut clean)
            .unwrap();
        let plan = FaultPlan::seeded(3).with_crash(ProcId(0), 5);
        // Amortized pacing off: this test pins exact checkpoint op
        // boundaries (crash at 5 must restore from the op-4 snapshot).
        let ckpt = CheckpointCfg::every(2)
            .with_amortization(0)
            .with_reboot(5_000, Duration::from_millis(1));
        let mut procs = crash_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .with_checkpoints(ckpt)
            .run(&mut procs)
            .unwrap();
        assert_eq!(
            procs[1].received, clean[1].received,
            "recovered output == fault-free output"
        );
        assert_eq!(procs[0].received, vec![vec![99]]);
        assert_eq!(report.pair_messages, clean_report.pair_messages);
        assert_eq!(report.undelivered, 0);
        let rec = report.recovery.expect("checkpointed run carries a report");
        assert_eq!(rec.crashes_survived, 1);
        assert!(rec.checkpoints_taken >= 3, "{rec:?}");
        assert_eq!(rec.replayed_ops, 1, "crash at op 5, checkpoint at op 4");
        assert_eq!(report.fault.unwrap().injected.crashes, 1);
    }

    #[test]
    fn receiver_crash_replays_the_lost_suffix_on_threads() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(1), 0);
        let mut procs = crash_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .with_checkpoints(CheckpointCfg::every(4))
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected, "exactly-once after replay");
        assert_eq!(procs[0].received, vec![vec![99]]);
        assert_eq!(report.recovery.unwrap().crashes_survived, 1);
    }

    #[test]
    fn unrecovered_crash_surfaces_as_crashed_on_threads() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(0), 2);
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 0, vec![1]),
                Action::Compute(1),
                Action::Compute(1),
                Action::Compute(1),
            ]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .with_faults(plan, fast_rel())
            .run(&mut procs)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::Crashed {
                proc: ProcId(0),
                at_op: 2
            }
        );
    }

    #[test]
    fn checkpoints_alone_enable_the_reliable_path() {
        let mut procs = crash_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_checkpoints(CheckpointCfg::every(2))
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected);
        assert_eq!(report.undelivered, 0);
        let rec = report.recovery.expect("report present without any crash");
        assert_eq!(rec.crashes_survived, 0);
        assert!(rec.checkpoints_taken >= 4, "{rec:?}");
        assert!(rec.bytes_snapshotted > 0);
        assert!(report.fault.is_some(), "reliable protocol was interposed");
    }

    #[test]
    fn default_ring_sizing_is_bounded_and_power_of_two() {
        for n in [1, 2, 4, 8, 64, 1024] {
            let w = default_ring_words(n);
            assert!(w.is_power_of_two(), "n={n}: {w}");
            assert!((256..=16_384).contains(&w), "n={n}: {w}");
        }
        assert_eq!(default_ring_words(2), 16_384);
        assert!(default_ring_words(64) < default_ring_words(8));
    }
}
