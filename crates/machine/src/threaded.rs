//! The threaded execution backend: one OS thread per processor, real
//! `std::sync::mpsc` channels for the interconnect.
//!
//! The simulator in [`fabric`](crate::fabric) interleaves every processor
//! on one thread and keeps the whole network in a single `HashMap`. This
//! module executes the *same* [`Process`] implementations preemptively:
//! each processor's process runs on its own thread against an
//! [`Endpoint`] — a per-thread [`Fabric`] holding that processor's logical
//! clock, statistics, and channel ends.
//!
//! # Why the results still match the simulator
//!
//! Everything a process observes is a function of sender-local state:
//! payloads are computed before the send, arrival stamps travel *inside*
//! the message (`sender clock + flight`), and a receive names its
//! `(src, tag)` channel explicitly. `mpsc` guarantees per-sender FIFO, and
//! the per-`(src, tag)` stash below preserves it per typed channel, so
//! every receive sees exactly the message the simulator would deliver —
//! whatever the OS scheduler does. Outputs, logical clocks (and hence the
//! makespan), and per-pair message counts are bit-identical across
//! backends; only `max_in_flight` (real concurrency) and the step total
//! (blocked-retry counts) are timing-dependent.
//!
//! # Topology
//!
//! Tags are created dynamically by the compiler, so a physical channel per
//! `(src, dst, tag)` triple is impossible to set up in advance. Instead
//! each processor owns one incoming `mpsc` channel (every peer holds a
//! clone of the sender) and demultiplexes arrivals into per-`(src, tag)`
//! FIFO stashes — a faithful realization of the typed-channel network,
//! since `mpsc` never reorders messages from one sender.
//!
//! # Deadlock
//!
//! Real threads cannot take the global "nobody progressed" snapshot the
//! [`Scheduler`](crate::Scheduler) uses, so a blocked receive bounds its
//! wait instead: if *no* traffic at all arrives for
//! [`recv_timeout`](ThreadedRunner::with_recv_timeout), the receive fails
//! with [`MachineError::RecvTimeout`] rather than hanging the run. A
//! receive whose peers have all finished (hung-up channel) fails
//! immediately as a [`MachineError::Deadlock`].

use crate::cost::CostModel;
use crate::error::MachineError;
use crate::fabric::Fabric;
use crate::message::{Message, ProcId, Tag, Time, Word};
use crate::sched::{Process, RunReport, Step};
use crate::stats::{MachineStats, NetworkStats, ProcStats};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a compiled SPMD program is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event simulator: one thread, round-robin
    /// [`Scheduler`](crate::Scheduler), in-memory queues. The default.
    #[default]
    Simulated,
    /// One OS thread per processor over real `mpsc` channels, with a
    /// wall-clock receive timeout standing in for deadlock detection.
    Threaded {
        /// Fail a blocked receive after this long without any arrival.
        recv_timeout: Duration,
    },
}

impl Backend {
    /// The threaded backend with the default receive timeout.
    pub fn threaded() -> Self {
        Backend::Threaded {
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }
}

/// Default wall-clock window a blocked threaded receive waits before
/// reporting a timeout.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(5);

/// Shared high-water mark of messages in flight (sent, not yet consumed).
#[derive(Debug, Default)]
struct Gauge {
    cur: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    fn inc(&self) {
        let now = self.cur.fetch_add(1, Ordering::SeqCst) + 1;
        self.max.fetch_max(now, Ordering::SeqCst);
    }

    fn dec(&self) {
        self.cur.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One processor's thread-local view of the machine: its logical clock and
/// counters, a sender handle per peer, and the receiving end of its own
/// incoming channel with the per-`(src, tag)` demultiplexing stash.
#[derive(Debug)]
pub struct Endpoint {
    me: ProcId,
    n: usize,
    cost: CostModel,
    slowdown: u64,
    clock: Time,
    stats: ProcStats,
    /// `senders[q]` reaches processor `q`; `None` at `q == me` (self-sends
    /// are a code-generation bug, exactly as in the simulator).
    senders: Vec<Option<Sender<Message>>>,
    rx: Receiver<Message>,
    /// Typed-channel FIFOs, filled by draining `rx` in arrival order.
    stash: HashMap<(ProcId, Tag), VecDeque<Message>>,
    /// Messages sent per `(dst, tag)`, merged into the run report.
    sent: BTreeMap<(ProcId, Tag), u64>,
    gauge: Arc<Gauge>,
    recv_timeout: Duration,
}

impl Endpoint {
    /// Move everything already queued on the wire into the stash.
    fn drain(&mut self) {
        while let Ok(m) = self.rx.try_recv() {
            self.stash.entry((m.src, m.tag)).or_default().push_back(m);
        }
    }

    /// Consume a message: idle accounting and clock advance identical to
    /// [`Machine::try_recv`](crate::Machine::try_recv).
    fn consume(&mut self, msg: Message) -> Vec<Word> {
        let words = msg.payload.len();
        let ready = if msg.arrives_at > self.clock {
            self.stats.idle_cycles += msg.arrives_at.0 - self.clock.0;
            msg.arrives_at
        } else {
            self.clock
        };
        self.clock = ready.plus(self.cost.recv_cost(words) * self.slowdown);
        self.stats.recvs += 1;
        self.gauge.dec();
        msg.payload
    }

    /// Block until a `(src, tag)` message is stashed, or fail after
    /// `recv_timeout` with no arrivals at all. Any arrival resets the
    /// window: as long as traffic flows the system is live and the awaited
    /// message may still be in someone's future.
    fn wait_for(&mut self, src: ProcId, tag: Tag) -> Result<(), MachineError> {
        let mut deadline = Instant::now() + self.recv_timeout;
        loop {
            self.drain();
            if self.stash.get(&(src, tag)).is_some_and(|q| !q.is_empty()) {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(MachineError::RecvTimeout {
                    proc: self.me,
                    src,
                    tag,
                    waited_ms: self.recv_timeout.as_millis() as u64,
                });
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(m) => {
                    self.stash.entry((m.src, m.tag)).or_default().push_back(m);
                    deadline = Instant::now() + self.recv_timeout;
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(MachineError::RecvTimeout {
                        proc: self.me,
                        src,
                        tag,
                        waited_ms: self.recv_timeout.as_millis() as u64,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every peer has finished (or died): the awaited
                    // message can never arrive.
                    return Err(MachineError::Deadlock {
                        waiting: vec![(self.me, src, tag)],
                    });
                }
            }
        }
    }
}

impl Fabric for Endpoint {
    fn n_procs(&self) -> usize {
        self.n
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        debug_assert_eq!(p, self.me, "an endpoint only drives its own clock");
        self.clock = self.clock.plus(cycles * self.slowdown);
        self.stats.ops += 1;
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        debug_assert_ne!(
            src, dst,
            "coerce on the same processor must be a local read"
        );
        let words = payload.len();
        let send_cost = self.cost.send_cost(words) * self.slowdown;
        self.clock = self.clock.plus(send_cost);
        let sent_at = self.clock;
        let arrives_at = sent_at.plus(self.cost.flight);
        self.stats.sends += 1;
        self.stats.words_sent += words as u64;
        *self.sent.entry((dst, tag)).or_insert(0) += 1;
        self.gauge.inc();
        if let Some(tx) = &self.senders[dst.0] {
            // A hung-up receiver has already finished; the message simply
            // stays undelivered, exactly like an untaken simulator queue.
            let _ = tx.send(Message {
                src,
                dst,
                tag,
                payload,
                sent_at,
                arrives_at,
            });
        }
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        debug_assert_eq!(dst, self.me, "an endpoint only receives as itself");
        self.drain();
        let msg = self.stash.get_mut(&(src, tag))?.pop_front()?;
        Some(self.consume(msg))
    }
}

/// What one finished thread hands back for merging.
struct ThreadDone {
    clock: Time,
    stats: ProcStats,
    sent: BTreeMap<(ProcId, Tag), u64>,
    steps: u64,
}

/// Drives one [`Process`] per OS thread to completion and merges the
/// per-thread tallies into the same [`RunReport`] the
/// [`Scheduler`](crate::Scheduler) produces.
#[derive(Debug, Clone)]
pub struct ThreadedRunner {
    cost: CostModel,
    recv_timeout: Duration,
    step_budget: u64,
    slowdowns: Option<Vec<u64>>,
}

impl ThreadedRunner {
    /// A runner with the default receive timeout and no step budget.
    pub fn new(cost: CostModel) -> Self {
        ThreadedRunner {
            cost,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            step_budget: u64::MAX,
            slowdowns: None,
        }
    }

    /// Fail a blocked receive after `timeout` without any arrival.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Limit the number of steps *per processor* (runaway guard). The
    /// simulator budgets total steps instead; threads cannot share a
    /// counter without serializing on it.
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Per-processor slowdown factors, as
    /// [`Machine::with_slowdowns`](crate::Machine::with_slowdowns).
    ///
    /// # Panics
    ///
    /// Panics (at [`run`](Self::run) time) if the length differs from the
    /// process count, or here if any factor is zero.
    pub fn with_slowdowns(mut self, factors: Vec<u64>) -> Self {
        assert!(factors.iter().all(|&f| f > 0), "factors must be positive");
        self.slowdowns = Some(factors);
        self
    }

    /// Run `processes[p]` on its own thread as processor `p` until every
    /// process finishes.
    ///
    /// # Errors
    ///
    /// The root-most error any thread hit, ranked
    /// [`MachineError::ProcessFault`] >
    /// [`MachineError::StepBudgetExceeded`] >
    /// [`MachineError::RecvTimeout`] (cyclic deadlock) >
    /// [`MachineError::Deadlock`] (awaiting a finished peer) — later
    /// ranks are usually cascades of earlier ones, and which *thread*
    /// fails first is a wall-clock race the ranking hides.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or a slowdown vector of the wrong
    /// length was supplied.
    pub fn run<P: Process + Send>(&self, processes: &mut [P]) -> Result<RunReport, MachineError> {
        let n = processes.len();
        assert!(n > 0, "a machine needs at least one processor");
        if let Some(f) = &self.slowdowns {
            assert_eq!(f.len(), n, "one factor per processor");
        }
        let gauge = Arc::new(Gauge::default());
        let (txs, rxs): (Vec<Sender<Message>>, Vec<Receiver<Message>>) =
            (0..n).map(|_| channel()).unzip();
        let mut endpoints: Vec<Endpoint> = rxs
            .into_iter()
            .enumerate()
            .map(|(p, rx)| Endpoint {
                me: ProcId(p),
                n,
                cost: self.cost,
                slowdown: self.slowdowns.as_ref().map_or(1, |f| f[p]),
                clock: Time::ZERO,
                stats: ProcStats::default(),
                senders: txs
                    .iter()
                    .enumerate()
                    .map(|(q, tx)| (q != p).then(|| tx.clone()))
                    .collect(),
                rx,
                stash: HashMap::new(),
                sent: BTreeMap::new(),
                gauge: Arc::clone(&gauge),
                recv_timeout: self.recv_timeout,
            })
            .collect();
        // Drop the original senders so each receiver's only handles are
        // those held by peer endpoints — a peer finishing (dropping its
        // endpoint) is then observable as channel hang-up.
        drop(txs);

        let budget = self.step_budget;
        let results: Vec<Result<ThreadDone, MachineError>> = std::thread::scope(|s| {
            let handles: Vec<_> = processes
                .iter_mut()
                .zip(endpoints.drain(..))
                .enumerate()
                .map(|(p, (process, mut ep))| {
                    s.spawn(move || {
                        let me = ProcId(p);
                        let mut steps: u64 = 0;
                        loop {
                            if steps >= budget {
                                return Err(MachineError::StepBudgetExceeded { budget });
                            }
                            steps += 1;
                            match process.step(&mut ep, me)? {
                                Step::Ran => {}
                                Step::Done => break,
                                Step::BlockedOnRecv { src, tag } => ep.wait_for(src, tag)?,
                            }
                        }
                        Ok(ThreadDone {
                            clock: ep.clock,
                            stats: ep.stats,
                            sent: ep.sent,
                            steps,
                        })
                        // `ep` drops here, hanging up this processor's
                        // sender handles.
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(p, h)| {
                    h.join().unwrap_or_else(|_| {
                        Err(MachineError::ProcessFault {
                            proc: ProcId(p),
                            message: "process thread panicked".into(),
                        })
                    })
                })
                .collect()
        });

        // When one thread fails, its peers cascade into secondary errors,
        // so rank the causes: a fault or an exhausted budget is always the
        // root; a receive timeout is the root diagnosis of a cycle (the
        // first thread to give up hangs up its channels, turning the
        // *other* waiters' errors into hang-up deadlocks — which thread
        // times out first is a wall-clock race, so reporting by processor
        // id would make the error variant nondeterministic); a hang-up
        // deadlock wins only when nothing else went wrong (awaiting a
        // peer that finished normally).
        fn rank(e: &MachineError) -> u8 {
            match e {
                MachineError::ProcessFault { .. } => 0,
                MachineError::StepBudgetExceeded { .. } => 1,
                MachineError::RecvTimeout { .. } => 2,
                _ => 3,
            }
        }
        let mut worst: Option<MachineError> = None;
        let mut done = Vec::with_capacity(n);
        for r in results {
            match r {
                Ok(d) => done.push(d),
                Err(e) => match &worst {
                    Some(w) if rank(w) <= rank(&e) => {}
                    _ => worst = Some(e),
                },
            }
        }
        if let Some(e) = worst {
            return Err(e);
        }

        let mut pair_messages: BTreeMap<(ProcId, ProcId, Tag), u64> = BTreeMap::new();
        let mut network = NetworkStats::default();
        let mut steps: u64 = 0;
        let mut recvs: u64 = 0;
        let mut clocks = Vec::with_capacity(n);
        let mut procs = Vec::with_capacity(n);
        for (p, d) in done.into_iter().enumerate() {
            for ((dst, tag), count) in d.sent {
                pair_messages.insert((ProcId(p), dst, tag), count);
            }
            network.messages += d.stats.sends;
            network.words += d.stats.words_sent;
            recvs += d.stats.recvs;
            steps += d.steps;
            clocks.push(d.clock);
            procs.push(d.stats);
        }
        network.max_in_flight = gauge.max.load(Ordering::SeqCst);
        Ok(RunReport {
            stats: MachineStats {
                network,
                procs,
                clocks,
            },
            steps,
            undelivered: (network.messages - recvs) as usize,
            pair_messages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Scripted toy process from the scheduler tests, replayed on
    /// real threads.
    enum Action {
        Compute(u64),
        Send(usize, u32, Vec<i64>),
        Recv(usize, u32),
    }

    struct Scripted {
        script: Vec<Action>,
        pc: usize,
        received: Vec<Vec<i64>>,
    }

    impl Scripted {
        fn new(script: Vec<Action>) -> Self {
            Scripted {
                script,
                pc: 0,
                received: Vec::new(),
            }
        }
    }

    impl Process for Scripted {
        fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
            let Some(action) = self.script.get(self.pc) else {
                return Ok(Step::Done);
            };
            match action {
                Action::Compute(c) => {
                    fabric.tick(me, *c);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Send(dst, tag, payload) => {
                    fabric.send(me, ProcId(*dst), Tag(*tag), payload.clone());
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Recv(src, tag) => match fabric.try_recv(me, ProcId(*src), Tag(*tag)) {
                    Some(words) => {
                        self.received.push(words);
                        self.pc += 1;
                        Ok(Step::Ran)
                    }
                    None => Ok(Step::BlockedOnRecv {
                        src: ProcId(*src),
                        tag: Tag(*tag),
                    }),
                },
            }
        }
    }

    #[test]
    fn ping_pong_matches_simulator_makespan() {
        let c = CostModel::ipsc2();
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1]), Action::Recv(1, 1)]),
            Scripted::new(vec![Action::Recv(0, 0), Action::Send(0, 1, vec![2])]),
        ];
        let report = ThreadedRunner::new(c).run(&mut procs).unwrap();
        assert_eq!(report.stats.network.messages, 2);
        assert_eq!(report.undelivered, 0);
        // Same critical path the simulator computes: the logical clocks
        // are driven by arrival stamps, not wall time.
        let expected = 2 * (c.send_cost(1) + c.flight + c.recv_cost(1));
        assert_eq!(report.stats.makespan().0, expected);
        assert_eq!(procs[0].received, vec![vec![2]]);
    }

    #[test]
    fn pair_counts_recorded() {
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 3, vec![1]),
                Action::Send(1, 3, vec![2]),
                Action::Send(1, 4, vec![3]),
            ]),
            Scripted::new(vec![
                Action::Recv(0, 3),
                Action::Recv(0, 3),
                Action::Recv(0, 4),
            ]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(3))),
            Some(&2)
        );
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(4))),
            Some(&1)
        );
        // FIFO within the typed channel.
        assert_eq!(procs[1].received, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn cyclic_deadlock_times_out() {
        let mut procs = vec![
            Scripted::new(vec![Action::Recv(1, 0)]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_millis(50))
            .run(&mut procs)
            .unwrap_err();
        assert!(
            matches!(err, MachineError::RecvTimeout { .. }),
            "expected timeout, got {err}"
        );
    }

    #[test]
    fn waiting_on_finished_peer_is_deadlock() {
        // P1 waits for a message P0 never sends; P0 finishes immediately,
        // so the hang-up is detected without burning the timeout.
        let mut procs = vec![
            Scripted::new(vec![]),
            Scripted::new(vec![Action::Recv(0, 7)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .run(&mut procs)
            .unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => {
                assert_eq!(waiting, vec![(ProcId(1), ProcId(0), Tag(7))]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn unreceived_message_counts_as_undelivered() {
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1, 2, 3])]),
            Scripted::new(vec![Action::Compute(1)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.undelivered, 1);
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Forever;
        impl Process for Forever {
            fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
                fabric.tick(me, 1);
                Ok(Step::Ran)
            }
        }
        let mut procs = vec![Forever];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_step_budget(1000)
            .run(&mut procs)
            .unwrap_err();
        assert!(matches!(err, MachineError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn slowdowns_scale_local_work() {
        let mut procs = vec![
            Scripted::new(vec![Action::Compute(10)]),
            Scripted::new(vec![Action::Compute(10)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .with_slowdowns(vec![3, 1])
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.stats.clocks[0], Time(30));
        assert_eq!(report.stats.clocks[1], Time(10));
    }
}
