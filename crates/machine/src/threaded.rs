//! The threaded execution backend: one OS thread per processor, real
//! `std::sync::mpsc` channels for the interconnect.
//!
//! The simulator in [`fabric`](crate::fabric) interleaves every processor
//! on one thread and keeps the whole network in a single `HashMap`. This
//! module executes the *same* [`Process`] implementations preemptively:
//! each processor's process runs on its own thread against an
//! [`Endpoint`] — a per-thread [`Fabric`] holding that processor's logical
//! clock, statistics, and channel ends.
//!
//! # Why the results still match the simulator
//!
//! Everything a process observes is a function of sender-local state:
//! payloads are computed before the send, arrival stamps travel *inside*
//! the message (`sender clock + flight`), and a receive names its
//! `(src, tag)` channel explicitly. `mpsc` guarantees per-sender FIFO, and
//! the per-`(src, tag)` stash below preserves it per typed channel, so
//! every receive sees exactly the message the simulator would deliver —
//! whatever the OS scheduler does. Outputs, logical clocks (and hence the
//! makespan), and per-pair message counts are bit-identical across
//! backends; only `max_in_flight` (real concurrency) and the step total
//! (blocked-retry counts) are timing-dependent.
//!
//! # Topology
//!
//! Tags are created dynamically by the compiler, so a physical channel per
//! `(src, dst, tag)` triple is impossible to set up in advance. Instead
//! each processor owns one incoming `mpsc` channel (every peer holds a
//! clone of the sender) and demultiplexes arrivals into per-`(src, tag)`
//! FIFO stashes — a faithful realization of the typed-channel network,
//! since `mpsc` never reorders messages from one sender.
//!
//! # Deadlock
//!
//! Real threads cannot take the global "nobody progressed" snapshot the
//! [`Scheduler`](crate::Scheduler) uses, so a blocked receive bounds its
//! wait instead: if *no* traffic at all arrives for
//! [`recv_timeout`](ThreadedRunner::with_recv_timeout), the receive fails
//! with [`MachineError::RecvTimeout`] rather than hanging the run. A
//! receive whose peers have all finished (hung-up channel) fails
//! immediately as a [`MachineError::Deadlock`].

use crate::checkpoint::{Checkpoint, CheckpointCfg, RecoveryReport};
use crate::cost::CostModel;
use crate::error::MachineError;
use crate::fabric::Fabric;
use crate::fault::{FaultCounts, FaultPlan, FaultState};
use crate::message::{Message, ProcId, Tag, Time, Word};
use crate::reliable::{
    ack_tag, frame, is_ack_tag, unframe, Pending, RecvChan, RelConfig, SenderChan, ACK_TAG_BIT,
};
use crate::sched::{Process, RunReport, Step};
use crate::stats::{FaultReport, MachineStats, NetworkStats, ProcStats};
use crate::trace::{EventKind, Trace};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a compiled SPMD program is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The deterministic discrete-event simulator: one thread, round-robin
    /// [`Scheduler`](crate::Scheduler), in-memory queues. The default.
    #[default]
    Simulated,
    /// One OS thread per processor over real `mpsc` channels, with a
    /// wall-clock receive timeout standing in for deadlock detection.
    Threaded {
        /// Fail a blocked receive after this long without any arrival.
        recv_timeout: Duration,
    },
}

impl Backend {
    /// The threaded backend with the default receive timeout.
    pub fn threaded() -> Self {
        Backend::Threaded {
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }
}

/// Default wall-clock window a blocked threaded receive waits before
/// reporting a timeout.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(5);

/// `base + d`, saturating at a far-future instant instead of panicking
/// when a pathological `Duration` (e.g. `Duration::MAX` standing in for
/// "never") overflows the platform clock. Halving converges on the
/// largest representable offset, which is as good as infinity for a
/// deadline.
fn saturating_deadline(base: Instant, d: Duration) -> Instant {
    if let Some(t) = base.checked_add(d) {
        return t;
    }
    let mut cap = d;
    while cap > Duration::ZERO {
        cap /= 2;
        if let Some(t) = base.checked_add(cap) {
            return t;
        }
    }
    base
}

/// Shared high-water mark of messages in flight (sent, not yet consumed).
#[derive(Debug, Default)]
struct Gauge {
    cur: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    fn inc(&self) {
        let now = self.cur.fetch_add(1, Ordering::SeqCst) + 1;
        self.max.fetch_max(now, Ordering::SeqCst);
    }

    fn dec(&self) {
        self.cur.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The reliable-delivery state of one endpoint: its own [`FaultState`]
/// (each endpoint only dispatches frames it sends, so per-triple decision
/// streams stay private), sequence-tracked send/receive channels with
/// wall-clock retransmission deadlines, and protocol tallies.
#[derive(Debug)]
struct EndpointRel {
    fault: FaultState,
    cfg: RelConfig,
    senders: BTreeMap<(ProcId, Tag), SenderChan<Instant>>,
    recvs: BTreeMap<(ProcId, Tag), RecvChan>,
    /// Program-level sends per `(dst, tag)` — the backend-invariant pair
    /// counts for the run report.
    logical_sent: BTreeMap<(ProcId, Tag), u64>,
    /// Program-level receives per `(src, tag)`.
    logical_recvd: BTreeMap<(ProcId, Tag), u64>,
    retransmits: u64,
    acks_sent: u64,
    fatal: Option<MachineError>,
    /// Stable ack floors for independent-mode checkpointing: `Some(map)`
    /// means acks for `(src, tag)` advertise the stream position as of
    /// this endpoint's last checkpoint (0 for streams it predates)
    /// instead of the live cumulative, so peers keep the replay suffix
    /// in their retransmission windows. `None` advertises live.
    stable: Option<BTreeMap<(ProcId, Tag), u64>>,
}

impl EndpointRel {
    fn new(plan: FaultPlan, cfg: RelConfig, checkpointed: bool) -> Self {
        EndpointRel {
            fault: FaultState::new(plan),
            cfg,
            senders: BTreeMap::new(),
            recvs: BTreeMap::new(),
            logical_sent: BTreeMap::new(),
            logical_recvd: BTreeMap::new(),
            retransmits: 0,
            acks_sent: 0,
            fatal: None,
            stable: checkpointed.then(BTreeMap::new),
        }
    }

    fn all_acked(&self) -> bool {
        self.senders.values().all(|c| c.unacked.is_empty())
    }

    /// The earliest wall-clock retransmission deadline, if any. Backoff
    /// is per-frame, so the front (most-retried) frame can have a later
    /// deadline than the rest of the window: scan every pending frame.
    /// Delivered frames are excluded — they never retransmit, so their
    /// stale deadlines would only cause pointless wakeups.
    fn earliest_deadline(&self) -> Option<Instant> {
        self.senders
            .values()
            .flat_map(|c| {
                c.unacked
                    .iter()
                    .filter(|p| p.seq >= c.delivered)
                    .map(|p| p.deadline)
            })
            .min()
    }
}

/// Thread-local checkpoint control: the policy, the last serialized
/// checkpoint image (wire bytes, so every restore exercises the parse
/// path), and the recovery tally.
#[derive(Debug)]
struct CkptCtl {
    cfg: CheckpointCfg,
    /// Charged-op counter at the last checkpoint.
    last_op: u64,
    /// Logical clock and charged cost of the last checkpoint, for
    /// cost-amortized pacing ([`CheckpointCfg::amortized`]).
    last_at: Time,
    last_cost: u64,
    image: Vec<u8>,
    report: RecoveryReport,
}

/// One processor's thread-local view of the machine: its logical clock and
/// counters, a sender handle per peer, and the receiving end of its own
/// incoming channel with the per-`(src, tag)` demultiplexing stash.
#[derive(Debug)]
pub struct Endpoint {
    me: ProcId,
    n: usize,
    cost: CostModel,
    slowdown: u64,
    clock: Time,
    stats: ProcStats,
    /// `senders[q]` reaches processor `q`; `None` at `q == me` (self-sends
    /// are a code-generation bug, exactly as in the simulator).
    senders: Vec<Option<Sender<Message>>>,
    rx: Receiver<Message>,
    /// Typed-channel FIFOs, filled by draining `rx` in arrival order.
    stash: HashMap<(ProcId, Tag), VecDeque<Message>>,
    /// Messages sent per `(dst, tag)`, merged into the run report.
    sent: BTreeMap<(ProcId, Tag), u64>,
    /// Messages consumed per `(src, tag)` — the receive-side mirror of
    /// `sent`, merged into per-triple pending counts at teardown.
    recvd: BTreeMap<(ProcId, Tag), u64>,
    /// Set when the process sends to itself; surfaced as
    /// [`MachineError::SelfSend`] by the thread loop, as the scheduler
    /// does on the simulator.
    self_send: Option<ProcId>,
    /// Reliable-delivery state; `None` runs the raw fabric.
    rel: Option<Box<EndpointRel>>,
    /// Peers whose receive channel has hung up (their thread finished). A
    /// peer can only finish after its program-level receives completed, so
    /// a transmit that bounces off a dead peer is as good as acked.
    dead: Vec<bool>,
    gauge: Arc<Gauge>,
    recv_timeout: Duration,
    /// Checkpoint/restart control; `None` runs without crash recovery.
    ckpt: Option<CkptCtl>,
    /// Per-endpoint event trace, recorded exactly as the simulator's
    /// [`Machine`](crate::Machine) records its global one; merged by
    /// timestamp into the run report at teardown. Because every event's
    /// `at` comes from the backend-invariant logical clock, the merged
    /// trace matches the simulator's on the raw fabric.
    trace: Trace,
}

impl Endpoint {
    /// Move everything already queued on the wire into the stash.
    fn drain(&mut self) {
        while let Ok(m) = self.rx.try_recv() {
            self.stash.entry((m.src, m.tag)).or_default().push_back(m);
        }
    }

    /// Consume a message: idle accounting and clock advance identical to
    /// [`Machine::try_recv`](crate::Machine::try_recv).
    fn consume(&mut self, msg: Message) -> Vec<Word> {
        *self.recvd.entry((msg.src, msg.tag)).or_insert(0) += 1;
        let payload = msg.payload;
        self.charge_recv(msg.src, msg.tag, msg.arrives_at, payload.len());
        self.gauge.dec();
        payload
    }

    /// The accounting half of [`consume`](Endpoint::consume): idle until
    /// the arrival stamp if necessary, then pay the unpacking cost.
    fn charge_recv(&mut self, src: ProcId, tag: Tag, arrives_at: Time, words: usize) {
        let waited = arrives_at.0.saturating_sub(self.clock.0);
        let ready = if arrives_at > self.clock {
            self.stats.idle_cycles += waited;
            arrives_at
        } else {
            self.clock
        };
        let recv_cost = self.cost.recv_cost(words) * self.slowdown;
        self.clock = ready.plus(recv_cost);
        self.stats.recvs += 1;
        self.trace.record(
            self.me,
            self.clock,
            EventKind::Recv {
                src,
                tag,
                words,
                waited,
                cost: recv_cost,
            },
        );
    }

    /// Take and clear the recorded self-send fault, if any.
    fn take_self_send(&mut self) -> Option<ProcId> {
        self.self_send.take()
    }

    /// Take and clear the recorded fatal protocol error, if any.
    fn take_fatal(&mut self) -> Option<MachineError> {
        self.rel.as_mut().and_then(|r| r.fatal.take())
    }

    /// Reliable-mode ingestion: drain the wire, retire acknowledged sends,
    /// reassemble data frames into their streams, and acknowledge every
    /// batch ingested. Acks travel through this endpoint's fault state
    /// too, so a lossy plan can lose them — the peer's retransmission
    /// absorbs that.
    fn rel_pump(&mut self) {
        self.drain();
        let mut rel = self.rel.take().expect("rel_pump requires reliable mode");
        let chans: Vec<(ProcId, Tag)> = self.stash.keys().copied().collect();
        for (peer, tag) in chans {
            if is_ack_tag(tag) {
                while let Some(msg) = self
                    .stash
                    .get_mut(&(peer, tag))
                    .and_then(VecDeque::pop_front)
                {
                    self.gauge.dec();
                    // Interrupt-style ack processing: unpacking cost only,
                    // never idle waiting. Traced as compute, exactly as
                    // the simulator's `busy` is.
                    let before = self.clock;
                    self.clock = before.plus(self.cost.recv_cost(1) * self.slowdown);
                    self.trace.record_compute(self.me, before, self.clock);
                    let cum = msg.payload[0] as u64;
                    let live = msg.payload.get(1).map_or(cum, |&w| w as u64);
                    let data_tag = Tag(tag.0 & !ACK_TAG_BIT);
                    if let Some(chan) = rel.senders.get_mut(&(peer, data_tag)) {
                        chan.ack(cum);
                        chan.set_live(live, Instant::now());
                        chan.mark_alive();
                        self.trace.record(
                            self.me,
                            self.clock,
                            EventKind::Ack {
                                peer,
                                tag: data_tag,
                                cum,
                            },
                        );
                    }
                }
            } else {
                let mut drained = 0u64;
                while let Some(msg) = self
                    .stash
                    .get_mut(&(peer, tag))
                    .and_then(VecDeque::pop_front)
                {
                    self.gauge.dec();
                    let (seq, payload) = unframe(msg.payload);
                    rel.recvs.entry((peer, tag)).or_default().on_frame(
                        seq,
                        msg.arrives_at,
                        payload,
                    );
                    drained += 1;
                }
                if drained > 0 {
                    let live = rel.recvs[&(peer, tag)].cumulative();
                    let adv = match &rel.stable {
                        Some(floors) => floors.get(&(peer, tag)).copied().unwrap_or(0),
                        None => live,
                    };
                    rel.acks_sent += 1;
                    rel.fault.dispatch(
                        self,
                        self.me,
                        peer,
                        ack_tag(tag),
                        vec![adv as Word, live as Word],
                    );
                }
            }
        }
        self.rel = Some(rel);
    }

    /// Retransmit every unacknowledged frame whose wall-clock deadline
    /// has passed, doubling its backoff; flag
    /// [`MachineError::RetriesExhausted`] once the oldest *undelivered*
    /// frame of a stream runs dry. The whole expired undelivered suffix
    /// retransmits (go-back-N), not just the front: a checkpointing
    /// receiver acknowledges only its stable floor, so resending only
    /// the front would starve a restored receiver of everything past it.
    /// Frames below the live delivered floor are skipped entirely — the
    /// peer has them; they sit in the window purely as the crash-replay
    /// suffix.
    fn rel_service_timers(&mut self) {
        let mut rel = self.rel.take().expect("timers require reliable mode");
        if rel.fatal.is_none() {
            let now = Instant::now();
            let chans: Vec<(ProcId, Tag)> = rel.senders.keys().copied().collect();
            for (dst, tag) in chans {
                let resends: Vec<(u64, Vec<Word>)> = {
                    let chan = rel
                        .senders
                        .get_mut(&(dst, tag))
                        .expect("chan exists: key came from the map");
                    if self.dead[dst.0] {
                        // The peer's thread exited, which it can only do
                        // after completing its program-level receives: our
                        // data got through and only the ack was lost.
                        // Retire the window instead of retrying forever
                        // against a disconnected channel.
                        chan.unacked.clear();
                        continue;
                    }
                    let delivered = chan.delivered;
                    if let Some(p) = chan.unacked.iter().find(|p| p.seq >= delivered) {
                        if p.deadline <= now && p.retries >= rel.cfg.max_retries {
                            // The oldest undelivered seq is exactly the
                            // delivery point the peer last advanced us to.
                            rel.fatal = Some(MachineError::RetriesExhausted {
                                proc: self.me,
                                peer: dst,
                                tag,
                                retries: p.retries,
                                last_acked: p.seq,
                            });
                            break;
                        }
                    }
                    chan.unacked
                        .iter_mut()
                        .filter(|p| p.seq >= delivered && p.deadline <= now)
                        .map(|p| {
                            p.retries += 1;
                            p.deadline = saturating_deadline(now, rel.cfg.backoff_wall(p.retries));
                            (p.seq, p.frame.clone())
                        })
                        .collect()
                };
                for (seq, payload) in resends {
                    self.trace
                        .record(self.me, self.clock, EventKind::Retransmit { dst, tag, seq });
                    rel.retransmits += 1;
                    rel.fault.dispatch(self, self.me, dst, tag, payload);
                }
            }
        }
        self.rel = Some(rel);
    }

    /// Reliable-mode send: pump acks, service timers, then frame, track,
    /// and dispatch through the fault plan.
    fn rel_send(&mut self, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        debug_assert_eq!(
            tag.0 & ACK_TAG_BIT,
            0,
            "program tags must stay below the ack bit"
        );
        self.rel_pump();
        self.rel_service_timers();
        let rel = self.rel.as_mut().expect("rel_send requires reliable mode");
        *rel.logical_sent.entry((dst, tag)).or_insert(0) += 1;
        let fr = {
            let chan = rel.senders.entry((dst, tag)).or_default();
            let seq = chan.next_seq;
            chan.next_seq += 1;
            let fr = frame(seq, &payload);
            chan.unacked.push_back(Pending {
                seq,
                frame: fr.clone(),
                retries: 0,
                deadline: saturating_deadline(Instant::now(), rel.cfg.rto_wall),
            });
            fr
        };
        let mut rel = self.rel.take().expect("still in reliable mode");
        rel.fault.dispatch(self, self.me, dst, tag, fr);
        self.rel = Some(rel);
    }

    /// Reliable-mode receive attempt: pump, service timers, then pop the
    /// next in-order payload if the stream has one ready.
    fn rel_try_recv(&mut self, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        self.rel_pump();
        self.rel_service_timers();
        let rel = self.rel.as_mut().expect("rel recv requires reliable mode");
        let (arrives, payload) = rel.recvs.get_mut(&(src, tag))?.ready.pop_front()?;
        *rel.logical_recvd.entry((src, tag)).or_insert(0) += 1;
        self.charge_recv(src, tag, arrives, payload.len());
        Some(payload)
    }

    /// Reliable-mode block: wait until the `(src, tag)` stream has an
    /// in-order payload ready, retransmitting on schedule meanwhile. The
    /// liveness window resets on any arrival, exactly as
    /// [`wait_for`](Endpoint::wait_for) does.
    fn rel_wait_for(&mut self, src: ProcId, tag: Tag) -> Result<(), MachineError> {
        let mut liveness = saturating_deadline(Instant::now(), self.recv_timeout);
        let mut last_keepalive = Instant::now();
        loop {
            self.rel_pump();
            self.rel_service_timers();
            if let Some(e) = self.take_fatal() {
                return Err(e);
            }
            {
                let rel = self.rel.as_ref().expect("rel wait requires reliable mode");
                if rel
                    .recvs
                    .get(&(src, tag))
                    .is_some_and(|c| !c.ready.is_empty())
                {
                    return Ok(());
                }
            }
            let now = Instant::now();
            if now >= liveness {
                return Err(MachineError::RecvTimeout {
                    proc: self.me,
                    src,
                    tag,
                    waited_ms: self.recv_timeout.as_millis() as u64,
                });
            }
            // Receiver keepalive (checkpoint mode only): a starved
            // receiver re-advertises its floors every RTO, even on a
            // stream no frame has ever arrived on — a receiver restored
            // from a pre-traffic checkpoint has no recv chans, yet the
            // zero advertisement is exactly what rolls the sender's
            // delivered floor back. If a rollback-solicitation ack was
            // lost, this is the safety net that re-arms the replay.
            // Without checkpoints retransmission alone recovers and
            // black-holed streams must still starve into
            // RetriesExhausted, so stable = None stays silent.
            let rto_wall = self
                .rel
                .as_ref()
                .expect("rel wait requires reliable mode")
                .cfg
                .rto_wall;
            if now.duration_since(last_keepalive) >= rto_wall {
                last_keepalive = now;
                let floors = {
                    let rel = self.rel.as_ref().expect("rel wait requires reliable mode");
                    rel.stable.as_ref().map(|fl| {
                        (
                            fl.get(&(src, tag)).copied().unwrap_or(0),
                            rel.recvs.get(&(src, tag)).map_or(0, |c| c.cumulative()),
                        )
                    })
                };
                if let Some((adv, live)) = floors {
                    let mut rel = self.rel.take().expect("rel wait requires reliable mode");
                    rel.acks_sent += 1;
                    rel.fault.dispatch(
                        self,
                        self.me,
                        src,
                        ack_tag(tag),
                        vec![adv as Word, live as Word],
                    );
                    self.rel = Some(rel);
                }
            }
            // Sleep until the liveness deadline or the next retransmission
            // timer, whichever is sooner. In checkpoint mode the next
            // keepalive is a deadline too: a receiver with nothing in its
            // own send window would otherwise sleep the whole liveness
            // window and never advertise its floors.
            let rel = self.rel.as_ref().expect("rel wait requires reliable mode");
            let mut until = rel
                .earliest_deadline()
                .map_or(liveness, |d| d.min(liveness));
            if rel.stable.is_some() {
                until = until.min(saturating_deadline(last_keepalive, rel.cfg.rto_wall));
            }
            match self.rx.recv_timeout(until.saturating_duration_since(now)) {
                Ok(m) => {
                    self.stash.entry((m.src, m.tag)).or_default().push_back(m);
                    liveness = saturating_deadline(Instant::now(), self.recv_timeout);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Every peer is gone: the awaited payload — and any
                    // retransmission of it — can never arrive.
                    return Err(MachineError::Deadlock {
                        waiting: vec![(self.me, src, tag)],
                    });
                }
            }
        }
    }

    /// Post-completion linger: a finished process keeps answering the
    /// protocol — re-acking retransmitted data, retransmitting its own
    /// unacknowledged frames — until its send window is empty. Without
    /// this, a dropped final ack would starve the peer's retransmissions
    /// against a dead thread.
    fn rel_linger(&mut self) -> Result<(), MachineError> {
        loop {
            self.rel_pump();
            self.rel_service_timers();
            if let Some(e) = self.take_fatal() {
                return Err(e);
            }
            let rel = self.rel.as_ref().expect("linger requires reliable mode");
            if rel.all_acked() {
                return Ok(());
            }
            let until = rel
                .earliest_deadline()
                .unwrap_or_else(|| saturating_deadline(Instant::now(), Duration::from_millis(1)));
            match self
                .rx
                .recv_timeout(until.saturating_duration_since(Instant::now()))
            {
                Ok(m) => {
                    self.stash.entry((m.src, m.tag)).or_default().push_back(m);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // All peers finished their own linger, which requires
                    // their receive streams to be complete — the missing
                    // acks were sent and lost, not the data. Program-level
                    // delivery is audited separately from logical counts.
                    return Ok(());
                }
            }
        }
    }

    /// Capture this processor's complete state — process image, both
    /// sides of every reliable stream, program-level counters — into a
    /// serialized [`Checkpoint`], then advance the stable ack floors to
    /// the just-snapshotted positions (proactively re-acking every
    /// stream whose floor moved, so peers retire the frames this
    /// checkpoint made durable).
    ///
    /// `charge` puts the snapshot cost on the logical clock. Mid-run
    /// checkpoints charge; the initial image is provisioned before the
    /// clocks start, and the final one is an off-critical-path flush —
    /// crashes are op-indexed, so none can land after the last op and
    /// the final image is never a replay target.
    fn take_checkpoint(&mut self, process: &dyn Process, charge: bool) -> Result<(), MachineError> {
        let Some(process_state) = process.snapshot() else {
            return Err(MachineError::CheckpointUnsupported { proc: self.me });
        };
        let cfg = self.ckpt.as_ref().expect("checkpointing configured").cfg;
        let (bytes, at_op, new_floors) = {
            let rel = self
                .rel
                .as_ref()
                .expect("checkpointing requires reliable mode");
            let ckpt = Checkpoint {
                proc: self.me,
                at_op: rel.fault.ops(self.me),
                taken_at: self.clock,
                process: process_state,
                senders: rel
                    .senders
                    .iter()
                    .map(|(&(d, t), c)| (d, t, c.snapshot()))
                    .collect(),
                recvs: rel
                    .recvs
                    .iter()
                    .map(|(&(s, t), c)| (s, t, c.snapshot()))
                    .collect(),
                sent: rel
                    .logical_sent
                    .iter()
                    .map(|(&(d, t), &v)| (d, t, v))
                    .collect(),
                recvd: rel
                    .logical_recvd
                    .iter()
                    .map(|(&(s, t), &v)| (s, t, v))
                    .collect(),
                stable: rel
                    .recvs
                    .iter()
                    .map(|(&(s, t), c)| (s, t, c.cumulative()))
                    .collect(),
            };
            let floors: BTreeMap<(ProcId, Tag), u64> =
                ckpt.stable.iter().map(|&(s, t, v)| ((s, t), v)).collect();
            (ckpt.to_bytes(), ckpt.at_op, floors)
        };
        if charge {
            let before = self.clock;
            self.clock = before.plus(cfg.checkpoint_cost(bytes.len()) * self.slowdown);
            self.trace.record_compute(self.me, before, self.clock);
        }
        self.trace.record(
            self.me,
            self.clock,
            EventKind::CheckpointTaken {
                at_op,
                bytes: bytes.len() as u64,
            },
        );
        {
            let ck = self.ckpt.as_mut().expect("checkpointing configured");
            ck.report.checkpoints_taken += 1;
            ck.report.bytes_snapshotted += bytes.len() as u64;
            ck.last_op = at_op;
            ck.last_at = self.clock;
            ck.last_cost = cfg.checkpoint_cost(bytes.len());
            ck.image = bytes;
        }
        // The new floors are not proactively re-acked: each piggybacks on
        // the next batch ack of its stream, and a quiet stream is drained
        // by the final live acks at completion. An interrupt-style ack
        // costs real receive cycles at the peer, and the peer's delivered
        // floor already suppresses retransmission of everything the stale
        // stable floor still covers.
        let rel = self.rel.as_mut().expect("reliable mode");
        rel.stable = Some(new_floors);
        Ok(())
    }

    /// Crash recovery: roll this processor — and only this processor —
    /// back to its last checkpoint. The dead incarnation's incoming
    /// traffic is discarded (peer retransmissions regenerate anything
    /// that matters), the process image and reliable streams are rebuilt
    /// from the checkpoint, and the restored sender windows re-arm for
    /// retransmission so surviving peers' duplicate suppression absorbs
    /// the replay transparently.
    fn restore_from_checkpoint(
        &mut self,
        process: &mut dyn Process,
        crash_op: u64,
    ) -> Result<(), MachineError> {
        let (cfg, image) = {
            let ck = self.ckpt.as_ref().expect("checkpointing configured");
            (ck.cfg, ck.image.clone())
        };
        let ckpt = Checkpoint::from_bytes(&image).expect("internally written checkpoint parses");
        self.trace
            .record(self.me, self.clock, EventKind::Crash { at_op: crash_op });
        if !process.restore(&ckpt.process) {
            return Err(MachineError::CheckpointUnsupported { proc: self.me });
        }
        let stashed: usize = self.stash.values().map(VecDeque::len).sum();
        for _ in 0..stashed {
            self.gauge.dec();
        }
        self.stash.clear();
        while self.rx.try_recv().is_ok() {
            self.gauge.dec();
        }
        self.clock = self.clock.plus(cfg.reboot_cycles);
        std::thread::sleep(cfg.reboot_wall);
        let rearm = {
            let rel = self.rel.as_ref().expect("reliable mode");
            saturating_deadline(Instant::now(), rel.cfg.rto_wall)
        };
        {
            let rel = self.rel.as_mut().expect("reliable mode");
            rel.senders = ckpt
                .senders
                .iter()
                .map(|(dst, tag, s)| ((*dst, *tag), SenderChan::from_snapshot(s, rearm)))
                .collect();
            rel.recvs = ckpt
                .recvs
                .iter()
                .map(|(src, tag, r)| ((*src, *tag), RecvChan::from_snapshot(r)))
                .collect();
            rel.logical_sent = ckpt.sent.iter().map(|&(d, t, v)| ((d, t), v)).collect();
            rel.logical_recvd = ckpt.recvd.iter().map(|&(s, t, v)| ((s, t), v)).collect();
            rel.stable = Some(ckpt.stable.iter().map(|&(s, t, v)| ((s, t), v)).collect());
        }
        // Solicit replay: re-advertise the rolled-back cumulative on
        // every receive stream. Peers see the live component drop below
        // their delivered floor and immediately re-arm the suffix this
        // incarnation lost. (If this ack is dropped by the fabric, the
        // keepalive in `rel_wait_for` re-sends it once we block starved.)
        let solicits: Vec<(ProcId, Tag, u64)> = {
            let rel = self.rel.as_ref().expect("reliable mode");
            rel.recvs
                .iter()
                .map(|(&(src, tag), c)| (src, tag, c.cumulative()))
                .collect()
        };
        let mut rel = self.rel.take().expect("reliable mode");
        for (src, tag, cum) in solicits {
            rel.acks_sent += 1;
            rel.fault.dispatch(
                self,
                self.me,
                src,
                ack_tag(tag),
                vec![cum as Word, cum as Word],
            );
        }
        self.rel = Some(rel);
        for (dst, tag, s) in &ckpt.senders {
            for (seq, _) in &s.unacked {
                self.trace.record(
                    self.me,
                    self.clock,
                    EventKind::ReplayedFrame {
                        dst: *dst,
                        tag: *tag,
                        seq: *seq,
                    },
                );
            }
        }
        self.trace.record(
            self.me,
            self.clock,
            EventKind::Restore {
                from_op: ckpt.at_op,
                replayed: crash_op.saturating_sub(ckpt.at_op),
            },
        );
        let ck = self.ckpt.as_mut().expect("checkpointing configured");
        ck.last_op = crash_op;
        // Pacing restarts from the restore point; the restored image's
        // cost still amortizes the next snapshot.
        ck.last_at = self.clock;
        ck.report.crashes_survived += 1;
        ck.report.replayed_ops += crash_op.saturating_sub(ckpt.at_op);
        ck.report.replay_frames += ckpt.window_frames();
        ck.report.recovery_cycles += cfg.reboot_cycles;
        Ok(())
    }

    /// Step boundary housekeeping for crash faults: checkpoint first (so
    /// a crash landing on the same boundary restores with a zero-op
    /// replay), then roll the crash dice. An unrecoverable crash — no
    /// checkpointing configured — fails the thread with
    /// [`MachineError::Crashed`].
    fn crash_tick(&mut self, process: &mut dyn Process) -> Result<(), MachineError> {
        if self.rel.is_none() {
            return Ok(());
        }
        let ops = self.rel.as_ref().expect("reliable mode").fault.ops(self.me);
        if let Some(ck) = &self.ckpt {
            if ops >= ck.last_op + ck.cfg.interval_ops
                && ck.cfg.amortized(ck.last_at, ck.last_cost, self.clock)
            {
                self.take_checkpoint(&*process, true)?;
            }
        }
        let crashed = self
            .rel
            .as_mut()
            .expect("reliable mode")
            .fault
            .take_crash(self.me);
        if let Some(at_op) = crashed {
            if self.ckpt.is_some() {
                self.restore_from_checkpoint(process, at_op)?;
            } else {
                self.trace
                    .record(self.me, self.clock, EventKind::Crash { at_op });
                return Err(MachineError::Crashed {
                    proc: self.me,
                    at_op,
                });
            }
        }
        Ok(())
    }

    /// Completion housekeeping for a checkpointed processor: one final
    /// checkpoint makes the finished state durable, then the endpoint
    /// switches to live acknowledgements — and proactively re-acks every
    /// receive stream — so peers' retransmission windows drain and the
    /// run can terminate.
    fn ckpt_finish(&mut self, process: &dyn Process) -> Result<(), MachineError> {
        if self.ckpt.is_none() || self.rel.is_none() {
            return Ok(());
        }
        self.take_checkpoint(process, false)?;
        let mut rel = self.rel.take().expect("reliable mode");
        rel.stable = None;
        let streams: Vec<(ProcId, Tag, u64)> = rel
            .recvs
            .iter()
            .map(|(&(s, t), c)| (s, t, c.cumulative()))
            .collect();
        for (src, tag, cum) in streams {
            rel.acks_sent += 1;
            rel.fault.dispatch(
                self,
                self.me,
                src,
                ack_tag(tag),
                vec![cum as Word, cum as Word],
            );
        }
        self.rel = Some(rel);
        Ok(())
    }

    /// Block until a `(src, tag)` message is stashed, or fail after
    /// `recv_timeout` with no arrivals at all. Any arrival resets the
    /// window: as long as traffic flows the system is live and the awaited
    /// message may still be in someone's future.
    fn wait_for(&mut self, src: ProcId, tag: Tag) -> Result<(), MachineError> {
        let mut deadline = saturating_deadline(Instant::now(), self.recv_timeout);
        loop {
            self.drain();
            if self.stash.get(&(src, tag)).is_some_and(|q| !q.is_empty()) {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(MachineError::RecvTimeout {
                    proc: self.me,
                    src,
                    tag,
                    waited_ms: self.recv_timeout.as_millis() as u64,
                });
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(m) => {
                    self.stash.entry((m.src, m.tag)).or_default().push_back(m);
                    deadline = saturating_deadline(Instant::now(), self.recv_timeout);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(MachineError::RecvTimeout {
                        proc: self.me,
                        src,
                        tag,
                        waited_ms: self.recv_timeout.as_millis() as u64,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every peer has finished (or died): the awaited
                    // message can never arrive.
                    return Err(MachineError::Deadlock {
                        waiting: vec![(self.me, src, tag)],
                    });
                }
            }
        }
    }
}

impl Fabric for Endpoint {
    fn n_procs(&self) -> usize {
        self.n
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        debug_assert_eq!(p, self.me, "an endpoint only drives its own clock");
        let extra = self.rel.as_mut().map_or(0, |r| r.fault.stall_cycles(p));
        let before = self.clock;
        self.clock = before.plus((cycles + extra) * self.slowdown);
        self.stats.ops += 1;
        self.trace.record_compute(p, before, self.clock);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        if src == dst {
            // A self-send is a code-generation bug; record it for the
            // thread loop to surface, exactly as the simulator does.
            self.self_send.get_or_insert(src);
            return;
        }
        // Program sends route through the reliability layer when it is
        // on; protocol frames (dispatched while `rel` is detached) fall
        // through to the raw path below.
        if self.rel.is_some() {
            self.rel_send(dst, tag, payload);
            return;
        }
        let words = payload.len();
        let send_cost = self.cost.send_cost(words) * self.slowdown;
        self.clock = self.clock.plus(send_cost);
        let sent_at = self.clock;
        let arrives_at = sent_at.plus(self.cost.flight);
        self.stats.sends += 1;
        self.stats.words_sent += words as u64;
        *self.sent.entry((dst, tag)).or_insert(0) += 1;
        self.trace.record(
            src,
            sent_at,
            EventKind::Send {
                dst,
                tag,
                words,
                cost: send_cost,
            },
        );
        self.gauge.inc();
        if let Some(tx) = &self.senders[dst.0] {
            // A hung-up receiver has already finished; the message simply
            // stays undelivered, exactly like an untaken simulator queue.
            if tx
                .send(Message {
                    src,
                    dst,
                    tag,
                    payload,
                    sent_at,
                    arrives_at,
                })
                .is_err()
            {
                self.dead[dst.0] = true;
            }
        }
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        debug_assert_eq!(dst, self.me, "an endpoint only receives as itself");
        if self.rel.is_some() {
            return self.rel_try_recv(src, tag);
        }
        self.drain();
        let msg = self.stash.get_mut(&(src, tag))?.pop_front()?;
        Some(self.consume(msg))
    }

    fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        let send_cost = self.cost.send_cost(words) * self.slowdown;
        self.clock = self.clock.plus(send_cost);
        self.stats.sends += 1;
        self.stats.words_sent += words as u64;
        self.trace.record(
            src,
            self.clock,
            EventKind::FrameLost {
                dst,
                tag,
                words,
                cost: send_cost,
            },
        );
    }

    fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        debug_assert_eq!(src, self.me, "an endpoint only sends as itself");
        let sent_at = self.clock;
        let arrives_at = sent_at.plus(self.cost.flight).plus(extra);
        self.gauge.inc();
        if let Some(tx) = &self.senders[dst.0] {
            if tx
                .send(Message {
                    src,
                    dst,
                    tag,
                    payload,
                    sent_at,
                    arrives_at,
                })
                .is_err()
            {
                self.dead[dst.0] = true;
            }
        }
    }
}

/// What one finished thread hands back for merging.
struct ThreadDone {
    clock: Time,
    stats: ProcStats,
    sent: BTreeMap<(ProcId, Tag), u64>,
    recvd: BTreeMap<(ProcId, Tag), u64>,
    steps: u64,
    trace: Trace,
    rel: Option<ThreadRelDone>,
    recovery: Option<RecoveryReport>,
}

/// Reliable-mode tallies from one finished thread.
struct ThreadRelDone {
    logical_sent: BTreeMap<(ProcId, Tag), u64>,
    logical_recvd: BTreeMap<(ProcId, Tag), u64>,
    retransmits: u64,
    acks_sent: u64,
    dups: u64,
    max_gap: u64,
    injected: FaultCounts,
}

/// Drives one [`Process`] per OS thread to completion and merges the
/// per-thread tallies into the same [`RunReport`] the
/// [`Scheduler`](crate::Scheduler) produces.
#[derive(Debug, Clone)]
pub struct ThreadedRunner {
    cost: CostModel,
    recv_timeout: Duration,
    step_budget: u64,
    slowdowns: Option<Vec<u64>>,
    faults: Option<(FaultPlan, RelConfig)>,
    ckpt: Option<CheckpointCfg>,
    /// Trace configuration template, cloned (empty) onto each endpoint.
    /// Disabled by default. Note the cap applies *per processor* here —
    /// each thread bounds its own memory — where the simulator's cap is
    /// global.
    trace: Trace,
}

impl ThreadedRunner {
    /// A runner with the default receive timeout and no step budget.
    pub fn new(cost: CostModel) -> Self {
        ThreadedRunner {
            cost,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            step_budget: u64::MAX,
            slowdowns: None,
            faults: None,
            ckpt: None,
            trace: Trace::disabled(),
        }
    }

    /// Enable bounded event tracing, `cap` events *per processor*
    /// (keep-oldest policy; see [`with_trace_config`](Self::with_trace_config)).
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace = Trace::bounded(cap);
        self
    }

    /// Enable tracing with the cap/policy of a configured [`Trace`] — how
    /// a simulator machine's trace configuration is carried over to the
    /// threaded backend.
    pub fn with_trace_config(mut self, template: &Trace) -> Self {
        self.trace = template.like();
        self
    }

    /// Run over a faulty fabric with the reliable-delivery protocol
    /// interposed (wall-clock retransmission deadlines). The plan's
    /// per-transmission decisions stay deterministic, but *how many*
    /// transmissions occur depends on real-time retransmission races, so
    /// only program-visible results — outputs and logical pair counts —
    /// are reproducible, not the protocol tallies.
    pub fn with_faults(mut self, plan: FaultPlan, cfg: RelConfig) -> Self {
        self.faults = Some((plan, cfg));
        self
    }

    /// Periodic checkpoints with crash restart. Implies the reliable
    /// protocol (an empty fault plan if none was configured): the
    /// ack-lagging consistent cut and the replay path both live there.
    ///
    /// # Panics
    ///
    /// Panics on a coordinated-mode configuration — barrier-aligned
    /// global snapshots need the simulator's round structure; real
    /// threads have no global step boundary to align on.
    pub fn with_checkpoints(mut self, cfg: CheckpointCfg) -> Self {
        assert!(
            !cfg.coordinated,
            "coordinated checkpoints are simulator-only; use independent mode here"
        );
        self.ckpt = Some(cfg);
        self
    }

    /// Fail a blocked receive after `timeout` without any arrival.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Limit the number of steps *per processor* (runaway guard). The
    /// simulator budgets total steps instead; threads cannot share a
    /// counter without serializing on it.
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Per-processor slowdown factors, as
    /// [`Machine::with_slowdowns`](crate::Machine::with_slowdowns).
    ///
    /// # Panics
    ///
    /// Panics (at [`run`](Self::run) time) if the length differs from the
    /// process count, or here if any factor is zero.
    pub fn with_slowdowns(mut self, factors: Vec<u64>) -> Self {
        assert!(factors.iter().all(|&f| f > 0), "factors must be positive");
        self.slowdowns = Some(factors);
        self
    }

    /// Run `processes[p]` on its own thread as processor `p` until every
    /// process finishes.
    ///
    /// # Errors
    ///
    /// The root-most error any thread hit, ranked
    /// [`MachineError::Crashed`] (unrecoverable crash) >
    /// [`MachineError::ProcessFault`] >
    /// [`MachineError::StepBudgetExceeded`] >
    /// [`MachineError::RecvTimeout`] (cyclic deadlock) >
    /// [`MachineError::Deadlock`] (awaiting a finished peer) — later
    /// ranks are usually cascades of earlier ones, and which *thread*
    /// fails first is a wall-clock race the ranking hides.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or a slowdown vector of the wrong
    /// length was supplied.
    pub fn run<P: Process + Send>(&self, processes: &mut [P]) -> Result<RunReport, MachineError> {
        let n = processes.len();
        assert!(n > 0, "a machine needs at least one processor");
        if let Some(f) = &self.slowdowns {
            assert_eq!(f.len(), n, "one factor per processor");
        }
        let gauge = Arc::new(Gauge::default());
        let (txs, rxs): (Vec<Sender<Message>>, Vec<Receiver<Message>>) =
            (0..n).map(|_| channel()).unzip();
        // Checkpointing rides on the reliable protocol; enable it with an
        // empty fault plan when only checkpoints were requested.
        let faults = self
            .faults
            .clone()
            .or_else(|| self.ckpt.map(|_| (FaultPlan::none(), RelConfig::default())));
        let mut endpoints: Vec<Endpoint> = rxs
            .into_iter()
            .enumerate()
            .map(|(p, rx)| Endpoint {
                me: ProcId(p),
                n,
                cost: self.cost,
                slowdown: self.slowdowns.as_ref().map_or(1, |f| f[p]),
                clock: Time::ZERO,
                stats: ProcStats::default(),
                senders: txs
                    .iter()
                    .enumerate()
                    .map(|(q, tx)| (q != p).then(|| tx.clone()))
                    .collect(),
                rx,
                stash: HashMap::new(),
                sent: BTreeMap::new(),
                recvd: BTreeMap::new(),
                self_send: None,
                rel: faults.as_ref().map(|(plan, cfg)| {
                    Box::new(EndpointRel::new(plan.clone(), *cfg, self.ckpt.is_some()))
                }),
                dead: vec![false; n],
                gauge: Arc::clone(&gauge),
                recv_timeout: self.recv_timeout,
                ckpt: self.ckpt.map(|cfg| CkptCtl {
                    cfg,
                    last_op: 0,
                    last_at: Time(0),
                    last_cost: 0,
                    image: Vec::new(),
                    report: RecoveryReport::default(),
                }),
                trace: self.trace.like(),
            })
            .collect();
        // Drop the original senders so each receiver's only handles are
        // those held by peer endpoints — a peer finishing (dropping its
        // endpoint) is then observable as channel hang-up.
        drop(txs);

        let budget = self.step_budget;
        let results: Vec<Result<ThreadDone, MachineError>> = std::thread::scope(|s| {
            let handles: Vec<_> = processes
                .iter_mut()
                .zip(endpoints.drain(..))
                .enumerate()
                .map(|(p, (process, mut ep))| {
                    s.spawn(move || {
                        let me = ProcId(p);
                        let mut steps: u64 = 0;
                        if ep.ckpt.is_some() {
                            // Initial checkpoint: a restore target exists
                            // whatever the crash point. Free — the launch
                            // image exists before the clocks start.
                            ep.take_checkpoint(&*process, false)?;
                        }
                        loop {
                            if steps >= budget {
                                return Err(MachineError::StepBudgetExceeded { budget });
                            }
                            steps += 1;
                            let step = process.step(&mut ep, me)?;
                            if let Some(sp) = ep.take_self_send() {
                                return Err(MachineError::SelfSend { proc: sp });
                            }
                            if let Some(e) = ep.take_fatal() {
                                return Err(e);
                            }
                            match step {
                                Step::Ran => {
                                    ep.crash_tick(&mut *process)?;
                                }
                                Step::Done => {
                                    ep.ckpt_finish(&*process)?;
                                    ep.trace.record(me, ep.clock, EventKind::Finish);
                                    break;
                                }
                                Step::BlockedOnRecv { src, tag } => {
                                    if ep.rel.is_some() {
                                        ep.rel_wait_for(src, tag)?;
                                    } else {
                                        ep.wait_for(src, tag)?;
                                    }
                                }
                            }
                        }
                        if ep.rel.is_some() {
                            ep.rel_linger()?;
                        }
                        Ok(ThreadDone {
                            clock: ep.clock,
                            stats: ep.stats,
                            sent: ep.sent,
                            recvd: ep.recvd,
                            steps,
                            trace: std::mem::take(&mut ep.trace),
                            recovery: ep.ckpt.take().map(|c| c.report),
                            rel: ep.rel.take().map(|r| ThreadRelDone {
                                logical_sent: r.logical_sent,
                                logical_recvd: r.logical_recvd,
                                retransmits: r.retransmits,
                                acks_sent: r.acks_sent,
                                dups: r.recvs.values().map(|c| c.dups).sum(),
                                max_gap: r.recvs.values().map(|c| c.max_gap).max().unwrap_or(0),
                                injected: r.fault.counts(),
                            }),
                        })
                        // `ep` drops here, hanging up this processor's
                        // sender handles.
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(p, h)| {
                    h.join().unwrap_or_else(|_| {
                        Err(MachineError::ProcessFault {
                            proc: ProcId(p),
                            message: "process thread panicked".into(),
                        })
                    })
                })
                .collect()
        });

        // When one thread fails, its peers cascade into secondary errors,
        // so rank the causes: a fault or an exhausted budget is always the
        // root; a receive timeout is the root diagnosis of a cycle (the
        // first thread to give up hangs up its channels, turning the
        // *other* waiters' errors into hang-up deadlocks — which thread
        // times out first is a wall-clock race, so reporting by processor
        // id would make the error variant nondeterministic); a hang-up
        // deadlock wins only when nothing else went wrong (awaiting a
        // peer that finished normally).
        fn rank(e: &MachineError) -> u8 {
            match e {
                // An unrecoverable crash is the rootmost cause of all:
                // every peer of the dead processor cascades into
                // exhausted retries, timeouts, or hang-up deadlocks.
                MachineError::Crashed { .. } => 0,
                MachineError::ProcessFault { .. } => 1,
                MachineError::StepBudgetExceeded { .. } => 2,
                // A starved sender is the root cause; its peers cascade
                // into timeouts and hang-up deadlocks.
                MachineError::RetriesExhausted { .. } => 3,
                MachineError::RecvTimeout { .. } => 4,
                _ => 5,
            }
        }
        let mut worst: Option<MachineError> = None;
        let mut done = Vec::with_capacity(n);
        for r in results {
            match r {
                Ok(d) => done.push(d),
                Err(e) => match &worst {
                    Some(w) if rank(w) <= rank(&e) => {}
                    _ => worst = Some(e),
                },
            }
        }
        if let Some(e) = worst {
            return Err(e);
        }

        let reliable = faults.is_some();
        let mut recovery_total = self.ckpt.map(|_| RecoveryReport::default());
        let mut pair_messages: BTreeMap<(ProcId, ProcId, Tag), u64> = BTreeMap::new();
        let mut recvd_by_triple: BTreeMap<(ProcId, ProcId, Tag), u64> = BTreeMap::new();
        let mut network = NetworkStats::default();
        let mut steps: u64 = 0;
        let mut clocks = Vec::with_capacity(n);
        let mut procs = Vec::with_capacity(n);
        let mut fault_report = reliable.then(FaultReport::default);
        let mut traces = Vec::with_capacity(n);
        for (p, d) in done.into_iter().enumerate() {
            let me = ProcId(p);
            traces.push(d.trace);
            if let (Some(total), Some(r)) = (recovery_total.as_mut(), d.recovery.as_ref()) {
                total.merge(r);
            }
            if let Some(r) = d.rel {
                // Reliable mode: report *program-level* traffic; raw frame
                // counts (retransmits, acks, seq overhead) stay visible in
                // the per-processor and network stats.
                for ((dst, tag), count) in r.logical_sent {
                    pair_messages.insert((me, dst, tag), count);
                }
                for ((src, tag), count) in r.logical_recvd {
                    recvd_by_triple.insert((src, me, tag), count);
                }
                let fr = fault_report.as_mut().expect("reliable mode");
                fr.injected.merge(&r.injected);
                fr.retransmits += r.retransmits;
                fr.acks_sent += r.acks_sent;
                fr.dup_frames_dropped += r.dups;
                fr.max_gap = fr.max_gap.max(r.max_gap);
            } else {
                for ((dst, tag), count) in d.sent {
                    pair_messages.insert((me, dst, tag), count);
                }
                for ((src, tag), count) in d.recvd {
                    recvd_by_triple.insert((src, me, tag), count);
                }
            }
            network.messages += d.stats.sends;
            network.words += d.stats.words_sent;
            steps += d.steps;
            clocks.push(d.clock);
            procs.push(d.stats);
        }
        network.max_in_flight = gauge.max.load(Ordering::SeqCst);
        let pending: Vec<(ProcId, ProcId, Tag, usize)> = pair_messages
            .iter()
            .filter_map(|(&(src, dst, tag), &sent)| {
                let got = recvd_by_triple.get(&(src, dst, tag)).copied().unwrap_or(0);
                (sent > got).then_some((src, dst, tag, (sent - got) as usize))
            })
            .collect();
        let undelivered = pending.iter().map(|&(_, _, _, k)| k).sum();
        if let Some(fr) = fault_report.as_mut() {
            fr.raw_leftover = gauge.cur.load(Ordering::SeqCst) as usize;
        }
        Ok(RunReport {
            stats: MachineStats {
                network,
                procs,
                clocks,
            },
            steps,
            undelivered,
            pair_messages,
            pending,
            fault: fault_report,
            recovery: recovery_total,
            trace: Trace::merge(traces),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Scripted toy process from the scheduler tests, replayed on
    /// real threads.
    enum Action {
        Compute(u64),
        Send(usize, u32, Vec<i64>),
        Recv(usize, u32),
    }

    struct Scripted {
        script: Vec<Action>,
        pc: usize,
        received: Vec<Vec<i64>>,
    }

    impl Scripted {
        fn new(script: Vec<Action>) -> Self {
            Scripted {
                script,
                pc: 0,
                received: Vec::new(),
            }
        }
    }

    impl Process for Scripted {
        fn snapshot(&self) -> Option<Vec<u8>> {
            let mut b = Vec::new();
            b.extend_from_slice(&(self.pc as u64).to_le_bytes());
            b.extend_from_slice(&(self.received.len() as u64).to_le_bytes());
            for r in &self.received {
                b.extend_from_slice(&(r.len() as u64).to_le_bytes());
                for w in r {
                    b.extend_from_slice(&w.to_le_bytes());
                }
            }
            Some(b)
        }

        fn restore(&mut self, state: &[u8]) -> bool {
            let mut pos = 0;
            let u64_at = |p: &mut usize| -> Option<u64> {
                let v = u64::from_le_bytes(state.get(*p..*p + 8)?.try_into().ok()?);
                *p += 8;
                Some(v)
            };
            let Some(pc) = u64_at(&mut pos) else {
                return false;
            };
            let Some(n) = u64_at(&mut pos) else {
                return false;
            };
            let mut received = Vec::new();
            for _ in 0..n {
                let Some(len) = u64_at(&mut pos) else {
                    return false;
                };
                let mut words = Vec::new();
                for _ in 0..len {
                    let Some(w) = u64_at(&mut pos) else {
                        return false;
                    };
                    words.push(w as i64);
                }
                received.push(words);
            }
            self.pc = pc as usize;
            self.received = received;
            true
        }

        fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
            let Some(action) = self.script.get(self.pc) else {
                return Ok(Step::Done);
            };
            match action {
                Action::Compute(c) => {
                    fabric.tick(me, *c);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Send(dst, tag, payload) => {
                    fabric.send(me, ProcId(*dst), Tag(*tag), payload.clone());
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Recv(src, tag) => match fabric.try_recv(me, ProcId(*src), Tag(*tag)) {
                    Some(words) => {
                        self.received.push(words);
                        self.pc += 1;
                        Ok(Step::Ran)
                    }
                    None => Ok(Step::BlockedOnRecv {
                        src: ProcId(*src),
                        tag: Tag(*tag),
                    }),
                },
            }
        }
    }

    #[test]
    fn ping_pong_matches_simulator_makespan() {
        let c = CostModel::ipsc2();
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1]), Action::Recv(1, 1)]),
            Scripted::new(vec![Action::Recv(0, 0), Action::Send(0, 1, vec![2])]),
        ];
        let report = ThreadedRunner::new(c).run(&mut procs).unwrap();
        assert_eq!(report.stats.network.messages, 2);
        assert_eq!(report.undelivered, 0);
        // Same critical path the simulator computes: the logical clocks
        // are driven by arrival stamps, not wall time.
        let expected = 2 * (c.send_cost(1) + c.flight + c.recv_cost(1));
        assert_eq!(report.stats.makespan().0, expected);
        assert_eq!(procs[0].received, vec![vec![2]]);
    }

    #[test]
    fn pair_counts_recorded() {
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 3, vec![1]),
                Action::Send(1, 3, vec![2]),
                Action::Send(1, 4, vec![3]),
            ]),
            Scripted::new(vec![
                Action::Recv(0, 3),
                Action::Recv(0, 3),
                Action::Recv(0, 4),
            ]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(3))),
            Some(&2)
        );
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(4))),
            Some(&1)
        );
        // FIFO within the typed channel.
        assert_eq!(procs[1].received, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn cyclic_deadlock_times_out() {
        let mut procs = vec![
            Scripted::new(vec![Action::Recv(1, 0)]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_millis(50))
            .run(&mut procs)
            .unwrap_err();
        assert!(
            matches!(err, MachineError::RecvTimeout { .. }),
            "expected timeout, got {err}"
        );
    }

    #[test]
    fn waiting_on_finished_peer_is_deadlock() {
        // P1 waits for a message P0 never sends; P0 finishes immediately,
        // so the hang-up is detected without burning the timeout.
        let mut procs = vec![
            Scripted::new(vec![]),
            Scripted::new(vec![Action::Recv(0, 7)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .run(&mut procs)
            .unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => {
                assert_eq!(waiting, vec![(ProcId(1), ProcId(0), Tag(7))]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn unreceived_message_counts_as_undelivered() {
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1, 2, 3])]),
            Scripted::new(vec![Action::Compute(1)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.undelivered, 1);
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Forever;
        impl Process for Forever {
            fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
                fabric.tick(me, 1);
                Ok(Step::Ran)
            }
        }
        let mut procs = vec![Forever];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_step_budget(1000)
            .run(&mut procs)
            .unwrap_err();
        assert!(matches!(err, MachineError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn slowdowns_scale_local_work() {
        let mut procs = vec![
            Scripted::new(vec![Action::Compute(10)]),
            Scripted::new(vec![Action::Compute(10)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .with_slowdowns(vec![3, 1])
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.stats.clocks[0], Time(30));
        assert_eq!(report.stats.clocks[1], Time(10));
    }

    #[test]
    fn pending_triples_reported_at_teardown() {
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 0, vec![1]),
                Action::Send(1, 3, vec![2]),
            ]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let report = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap();
        assert_eq!(report.undelivered, 1);
        assert_eq!(report.pending, vec![(ProcId(0), ProcId(1), Tag(3), 1)]);
    }

    #[test]
    fn self_send_surfaces_as_error() {
        let mut procs = vec![
            Scripted::new(vec![Action::Send(0, 0, vec![1])]),
            Scripted::new(vec![]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .run(&mut procs)
            .unwrap_err();
        assert_eq!(err, MachineError::SelfSend { proc: ProcId(0) });
    }

    /// A short RTO so lossy tests retransmit promptly.
    fn fast_rel() -> RelConfig {
        RelConfig {
            rto_wall: Duration::from_millis(2),
            ..RelConfig::default()
        }
    }

    fn stream_scripts() -> Vec<Scripted> {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            a.push(Action::Send(1, 0, vec![i]));
            b.push(Action::Recv(0, 0));
        }
        a.push(Action::Recv(1, 1));
        b.push(Action::Send(0, 1, vec![99]));
        vec![Scripted::new(a), Scripted::new(b)]
    }

    #[test]
    fn reliable_empty_plan_delivers_in_order() {
        let mut procs = stream_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(FaultPlan::none(), fast_rel())
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected);
        assert_eq!(report.undelivered, 0);
        assert!(report.pending.is_empty());
        let fr = report.fault.expect("reliable run carries a report");
        assert_eq!(fr.injected.total(), 0);
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(0))),
            Some(&10),
            "logical pair counts see program messages, not protocol frames"
        );
    }

    #[test]
    fn reliable_lossy_plan_recovers_exactly_once_in_order() {
        let plan = FaultPlan::seeded(7)
            .with_drops(250)
            .with_dups(150)
            .with_delays(100, 5_000)
            .with_reorders(100)
            .with_fault_budget(6);
        let mut procs = stream_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected, "exactly-once, in-order");
        assert_eq!(report.undelivered, 0);
        let fr = report.fault.expect("reliable run carries a report");
        assert!(fr.injected.total() > 0, "the plan injected faults");
    }

    #[test]
    fn reliable_black_hole_exhausts_retries() {
        let plan = FaultPlan::seeded(0).with_black_hole(ProcId(0), ProcId(1), Tag(0));
        let cfg = RelConfig {
            rto_wall: Duration::from_millis(2),
            max_retries: 3,
            ..RelConfig::default()
        };
        let mut procs = vec![
            Scripted::new(vec![Action::Send(1, 0, vec![1])]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .with_faults(plan, cfg)
            .run(&mut procs)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RetriesExhausted {
                proc: ProcId(0),
                peer: ProcId(1),
                tag: Tag(0),
                retries: 3,
                last_acked: 0,
            }
        );
    }

    #[test]
    fn linger_deadline_saturates_instead_of_overflowing() {
        // `Instant + Duration::MAX` panics; the saturating helper must
        // instead land on a far-future deadline ("never"), not clamp to
        // now (which would busy-spin the linger loop).
        let base = Instant::now();
        let d = saturating_deadline(base, Duration::MAX);
        assert!(
            d >= base + Duration::from_secs(3600),
            "far future, got {d:?}"
        );
        assert_eq!(saturating_deadline(base, Duration::ZERO), base);
        assert_eq!(
            saturating_deadline(base, Duration::from_millis(1)),
            base + Duration::from_millis(1)
        );
    }

    /// The sim recovery tests' stream pair, with computes interleaved on
    /// the sender so its charged-op counter (which crash and checkpoint
    /// points key on) advances.
    fn crash_scripts() -> Vec<Scripted> {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            a.push(Action::Send(1, 0, vec![i]));
            a.push(Action::Compute(10));
            b.push(Action::Recv(0, 0));
        }
        a.push(Action::Recv(1, 1));
        b.push(Action::Send(0, 1, vec![99]));
        vec![Scripted::new(a), Scripted::new(b)]
    }

    #[test]
    fn sender_crash_recovery_is_transparent_on_threads() {
        let mut clean = crash_scripts();
        let clean_report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(FaultPlan::none(), fast_rel())
            .run(&mut clean)
            .unwrap();
        let plan = FaultPlan::seeded(3).with_crash(ProcId(0), 5);
        // Amortized pacing off: this test pins exact checkpoint op
        // boundaries (crash at 5 must restore from the op-4 snapshot).
        let ckpt = CheckpointCfg::every(2)
            .with_amortization(0)
            .with_reboot(5_000, Duration::from_millis(1));
        let mut procs = crash_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .with_checkpoints(ckpt)
            .run(&mut procs)
            .unwrap();
        assert_eq!(
            procs[1].received, clean[1].received,
            "recovered output == fault-free output"
        );
        assert_eq!(procs[0].received, vec![vec![99]]);
        assert_eq!(report.pair_messages, clean_report.pair_messages);
        assert_eq!(report.undelivered, 0);
        let rec = report.recovery.expect("checkpointed run carries a report");
        assert_eq!(rec.crashes_survived, 1);
        assert!(rec.checkpoints_taken >= 3, "{rec:?}");
        assert_eq!(rec.replayed_ops, 1, "crash at op 5, checkpoint at op 4");
        assert_eq!(report.fault.unwrap().injected.crashes, 1);
    }

    #[test]
    fn receiver_crash_replays_the_lost_suffix_on_threads() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(1), 0);
        let mut procs = crash_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_faults(plan, fast_rel())
            .with_checkpoints(CheckpointCfg::every(4))
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected, "exactly-once after replay");
        assert_eq!(procs[0].received, vec![vec![99]]);
        assert_eq!(report.recovery.unwrap().crashes_survived, 1);
    }

    #[test]
    fn unrecovered_crash_surfaces_as_crashed_on_threads() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(0), 2);
        let mut procs = vec![
            Scripted::new(vec![
                Action::Send(1, 0, vec![1]),
                Action::Compute(1),
                Action::Compute(1),
                Action::Compute(1),
            ]),
            Scripted::new(vec![Action::Recv(0, 0)]),
        ];
        let err = ThreadedRunner::new(CostModel::zero())
            .with_recv_timeout(Duration::from_secs(30))
            .with_faults(plan, fast_rel())
            .run(&mut procs)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::Crashed {
                proc: ProcId(0),
                at_op: 2
            }
        );
    }

    #[test]
    fn checkpoints_alone_enable_the_reliable_path() {
        let mut procs = crash_scripts();
        let report = ThreadedRunner::new(CostModel::ipsc2())
            .with_checkpoints(CheckpointCfg::every(2))
            .run(&mut procs)
            .unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(procs[1].received, expected);
        assert_eq!(report.undelivered, 0);
        let rec = report.recovery.expect("report present without any crash");
        assert_eq!(rec.crashes_survived, 0);
        assert!(rec.checkpoints_taken >= 4, "{rec:?}");
        assert!(rec.bytes_snapshotted > 0);
        assert!(report.fault.is_some(), "reliable protocol was interposed");
    }
}
