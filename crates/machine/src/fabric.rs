//! The machine fabric: clocks + network + statistics.

use crate::cost::CostModel;
use crate::error::MachineError;
use crate::message::{Message, ProcId, Tag, Time, Word};
use crate::network::Network;
use crate::stats::{MachineStats, ProcStats};
use crate::trace::{EventKind, Trace};
use pdc_metrics::{Ctr, MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a [`Process`](crate::Process) sees of the machine it runs on:
/// enough to charge instruction costs and exchange typed messages, and
/// nothing else.
///
/// Two implementations exist:
///
/// * [`Machine`] — the deterministic discrete-event simulator, where one
///   thread interleaves every processor and the whole network is a set of
///   in-memory queues;
/// * [`Endpoint`](crate::threaded::Endpoint) — one *per-thread* view of
///   the machine used by the threaded backend, where each processor runs
///   on its own OS thread and messages travel over real
///   [`std::sync::mpsc`] channels.
///
/// Because message *content* visible to a process depends only on FIFO
/// order within `(src, dst, tag)` channels — never on global interleaving
/// (see [`Scheduler`](crate::Scheduler)) — and arrival stamps are computed
/// from sender-local state, a `Process` driven through this trait produces
/// identical results, logical clocks, and traffic counts on both
/// implementations.
pub trait Fabric {
    /// Number of processors.
    fn n_procs(&self) -> usize;

    /// The cost model in force.
    fn cost_model(&self) -> &CostModel;

    /// Charge `cycles` of computation to processor `p` (scaled by its
    /// slowdown factor) and count one executed instruction.
    fn tick(&mut self, p: ProcId, cycles: u64);

    /// Asynchronous typed send (`csend`): charge the sender and hand the
    /// message to the transport stamped with its arrival time.
    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>);

    /// Borrowing variant of [`send`](Fabric::send): semantically
    /// identical, but the fabric copies (or serializes) the payload
    /// itself instead of taking ownership. Fabrics with a zero-copy wire
    /// (the threaded backend's rings) override this so steady-state
    /// sends never allocate; the default just clones.
    fn send_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word]) {
        self.send(src, dst, tag, payload.to_vec());
    }

    /// Typed receive attempt (`crecv`): consume the oldest matching
    /// message if one is pending, else `None` (caller must block).
    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>>;

    /// Receive into a caller-owned buffer: like
    /// [`try_recv`](Fabric::try_recv) but the payload lands in `out`
    /// (cleared first), letting the fabric recycle its own buffer.
    /// Returns whether a message was consumed. The default copies from
    /// `try_recv`.
    fn try_recv_into(&mut self, dst: ProcId, src: ProcId, tag: Tag, out: &mut Vec<Word>) -> bool {
        match self.try_recv(dst, src, tag) {
            Some(payload) => {
                out.clear();
                out.extend_from_slice(&payload);
                true
            }
            None => false,
        }
    }

    /// A send whose frame the transport loses: charge the sender exactly
    /// as [`send`](Fabric::send) would (the words left the CPU) but
    /// deliver nothing. Fault-injection hook — the default implementation
    /// charges nobody and delivers nothing, which is correct for fabrics
    /// that do not model send cost.
    fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        let _ = (src, dst, tag, words);
    }

    /// Deposit a transport-manufactured frame — a duplicate or a delayed
    /// copy — without charging the sender, arriving `extra` cycles later
    /// than a regular send issued now would. The default implementation
    /// falls back to a plain [`send`](Fabric::send).
    fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        let _ = extra;
        self.send(src, dst, tag, payload);
    }

    /// Borrowing variant of [`inject`](Fabric::inject); the default
    /// clones into the owned form.
    fn inject_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word], extra: u64) {
        self.inject(src, dst, tag, payload.to_vec(), extra);
    }

    /// The metrics registry this fabric records into, when it has one.
    /// Clients above the fabric (the SPMD VM's scratch-reuse counters)
    /// record through this instead of threading a registry handle of
    /// their own. The default has none.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }
}

/// A mutable reference to a fabric is itself a fabric, so wrappers like
/// [`FaultyFabric`](crate::FaultyFabric) can borrow rather than own.
/// Every method — including the provided ones — delegates explicitly so
/// an implementation's overrides are never bypassed.
impl<F: Fabric + ?Sized> Fabric for &mut F {
    fn n_procs(&self) -> usize {
        (**self).n_procs()
    }

    fn cost_model(&self) -> &CostModel {
        (**self).cost_model()
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        (**self).tick(p, cycles);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        (**self).send(src, dst, tag, payload);
    }

    fn send_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word]) {
        (**self).send_ref(src, dst, tag, payload);
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        (**self).try_recv(dst, src, tag)
    }

    fn try_recv_into(&mut self, dst: ProcId, src: ProcId, tag: Tag, out: &mut Vec<Word>) -> bool {
        (**self).try_recv_into(dst, src, tag, out)
    }

    fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        (**self).send_lost(src, dst, tag, words);
    }

    fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        (**self).inject(src, dst, tag, payload, extra);
    }

    fn inject_ref(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: &[Word], extra: u64) {
        (**self).inject_ref(src, dst, tag, payload, extra);
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        (**self).metrics()
    }
}

/// The simulated multiprocessor: `n` logical clocks, a typed-channel
/// network, a [`CostModel`], and statistics.
///
/// A `Machine` is passive — it does not run anything by itself. A client
/// (normally the [`Scheduler`](crate::Scheduler) driving
/// [`Process`](crate::Process) implementations) charges instruction costs
/// with [`tick`](Machine::tick), moves data with [`send`](Machine::send) /
/// [`try_recv`](Machine::try_recv), and reads the final clocks from
/// [`stats`](Machine::stats).
#[derive(Debug)]
pub struct Machine {
    n: usize,
    cost: CostModel,
    clocks: Vec<Time>,
    network: Network,
    procs: Vec<ProcStats>,
    trace: Trace,
    /// Per-processor slowdown factors (1 = nominal speed). Every cycle a
    /// processor spends computing, packing, or unpacking is multiplied by
    /// its factor — a heterogeneous machine for the §5.4 load-balancing
    /// experiments. Network flight time is unaffected.
    slowdown: Vec<u64>,
    /// Set when a process sends a message to itself — a code-generation
    /// bug the driver must surface as [`MachineError::SelfSend`]. The
    /// fabric records it rather than panicking so release builds fail
    /// loudly too (the frame is *not* delivered).
    self_send: Option<ProcId>,
    /// The metrics registry (always present; flight-recorder-only by
    /// default). `Arc` so a live sampler or the threaded driver can
    /// share the same registry.
    metrics: Arc<MetricsRegistry>,
    /// When the reliable-delivery layer is interposed, every frame the
    /// fabric itself moves is raw transport — data, retransmits, acks —
    /// and the *protocol* records logical metrics at its own send/recv
    /// points instead. Set by the scheduler's recoverable path.
    raw_transport: bool,
}

impl Machine {
    /// A machine with `n` processors, all clocks at zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, cost: CostModel) -> Self {
        assert!(n > 0, "a machine needs at least one processor");
        Machine {
            n,
            cost,
            clocks: vec![Time::ZERO; n],
            network: Network::new(),
            procs: vec![ProcStats::default(); n],
            trace: Trace::disabled(),
            slowdown: vec![1; n],
            self_send: None,
            metrics: Arc::new(MetricsRegistry::flight_only(n)),
            raw_transport: false,
        }
    }

    /// Enable full metrics recording (counters, histograms, channel
    /// tables). The default records only the always-on flight recorder.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Arc::new(MetricsRegistry::new(self.n));
        self
    }

    /// Install a shared registry (e.g. one a live sampler also holds).
    ///
    /// # Panics
    ///
    /// Panics if the registry's shard count differs from `n_procs`.
    pub fn enable_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        assert_eq!(
            registry.n_procs(),
            self.n,
            "one metrics shard per processor"
        );
        self.metrics = registry;
    }

    /// The registry this machine records into.
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Snapshot the metrics registry — what a
    /// [`RunReport`](crate::RunReport) carries.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Mark every subsequent fabric-level frame as raw transport (the
    /// reliable layer is interposed and records logical metrics at its
    /// own boundary). See the `raw_transport` field.
    pub(crate) fn set_raw_transport(&mut self, raw: bool) {
        self.raw_transport = raw;
    }

    /// Enable bounded event tracing (keep-oldest overflow policy).
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace = Trace::bounded(cap);
        self
    }

    /// Install a caller-configured trace (e.g. keep-newest policy).
    pub fn enable_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Make the machine heterogeneous: processor `p` takes
    /// `factors[p]` cycles for every nominal cycle of local work.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != n` or any factor is zero.
    pub fn with_slowdowns(mut self, factors: Vec<u64>) -> Self {
        assert_eq!(factors.len(), self.n, "one factor per processor");
        assert!(factors.iter().all(|&f| f > 0), "factors must be positive");
        self.slowdown = factors;
        self
    }

    /// The slowdown factor of processor `p`.
    pub fn slowdown(&self, p: ProcId) -> u64 {
        self.slowdown[p.0]
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.n
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Current logical clock of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn clock(&self, p: ProcId) -> Time {
        self.clocks[p.0]
    }

    /// Charge `cycles` of computation to processor `p` (scaled by its
    /// slowdown factor) and count one executed instruction.
    pub fn tick(&mut self, p: ProcId, cycles: u64) {
        let before = self.clocks[p.0];
        self.clocks[p.0] = before.plus(cycles * self.slowdown[p.0]);
        self.procs[p.0].ops += 1;
        self.metrics.count(p.0, Ctr::Ops, 1);
        self.trace.record_compute(p, before, self.clocks[p.0]);
    }

    /// Asynchronous typed send (`csend`): charges the sender the start-up
    /// plus per-word cost and deposits the message with an arrival stamp of
    /// `sender clock + flight`.
    ///
    /// A self-send (`src == dst`) is a code-generation bug — the compiler
    /// must turn same-processor coercions into local reads (§3.1). The
    /// fabric records it (see [`take_self_send`](Machine::take_self_send))
    /// and delivers nothing; the scheduler surfaces it as
    /// [`MachineError::SelfSend`] in every build profile.
    pub fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        if src == dst {
            self.self_send.get_or_insert(src);
            return;
        }
        let words = payload.len();
        let send_cost = self.cost.send_cost(words) * self.slowdown[src.0];
        self.clocks[src.0] = self.clocks[src.0].plus(send_cost);
        let sent_at = self.clocks[src.0];
        let arrives_at = sent_at.plus(self.cost.flight);
        self.procs[src.0].sends += 1;
        self.procs[src.0].words_sent += words as u64;
        self.metrics.count(src.0, Ctr::WireFrames, 1);
        self.metrics.count(src.0, Ctr::WireWords, words as u64);
        if !self.raw_transport {
            self.metrics
                .logical_send(src.0, dst.0 as u64, tag.0 as u64, words as u64, sent_at.0);
        }
        self.trace.record(
            src,
            sent_at,
            EventKind::Send {
                dst,
                tag,
                words,
                cost: send_cost,
            },
        );
        self.network.deliver(Message {
            src,
            dst,
            tag,
            payload,
            sent_at,
            arrives_at,
        });
    }

    /// Typed receive attempt (`crecv`): if a matching message is pending,
    /// consume it, advance the receiver's clock past the arrival time plus
    /// the unpacking cost, and return the payload. `None` means the caller
    /// must block until the sender has progressed.
    pub fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        let msg = self.network.take(src, dst, tag)?;
        let words = msg.payload.len();
        let before = self.clocks[dst.0];
        let ready = if msg.arrives_at > before {
            self.procs[dst.0].idle_cycles += msg.arrives_at.0 - before.0;
            msg.arrives_at
        } else {
            before
        };
        let recv_cost = self.cost.recv_cost(words) * self.slowdown[dst.0];
        self.clocks[dst.0] = ready.plus(recv_cost);
        self.procs[dst.0].recvs += 1;
        self.metrics.logical_recv(
            dst.0,
            src.0 as u64,
            tag.0 as u64,
            words as u64,
            self.clocks[dst.0].0,
        );
        self.trace.record(
            dst,
            self.clocks[dst.0],
            EventKind::Recv {
                src,
                tag,
                words,
                waited: msg.arrives_at.0.saturating_sub(before.0),
                cost: recv_cost,
            },
        );
        Some(msg.payload)
    }

    /// Is a message pending for `(src → dst, tag)`?
    pub fn has_pending(&self, dst: ProcId, src: ProcId, tag: Tag) -> bool {
        self.network.has_pending(src, dst, tag)
    }

    /// Take and clear the recorded self-send fault, if any. Drivers call
    /// this after every process step; `Some(p)` must become
    /// [`MachineError::SelfSend`].
    pub fn take_self_send(&mut self) -> Option<ProcId> {
        self.self_send.take()
    }

    /// A send whose frame the transport loses: the sender pays the full
    /// packing cost and the trace records the loss, but nothing enters
    /// the network. Fault-injection primitive.
    pub fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        let send_cost = self.cost.send_cost(words) * self.slowdown[src.0];
        self.clocks[src.0] = self.clocks[src.0].plus(send_cost);
        self.procs[src.0].sends += 1;
        self.procs[src.0].words_sent += words as u64;
        self.metrics.count(src.0, Ctr::FramesLost, 1);
        self.trace.record(
            src,
            self.clocks[src.0],
            EventKind::FrameLost {
                dst,
                tag,
                words,
                cost: send_cost,
            },
        );
    }

    /// Deposit a transport-manufactured frame — a duplicate or a delayed
    /// copy — without charging the sender. It arrives at
    /// `sender clock + flight + extra`, as if the transport had been
    /// holding it since the matching [`send_lost`](Machine::send_lost).
    pub fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        let sent_at = self.clocks[src.0];
        let arrives_at = sent_at.plus(self.cost.flight).plus(extra);
        self.metrics.count(src.0, Ctr::WireFrames, 1);
        self.metrics
            .count(src.0, Ctr::WireWords, payload.len() as u64);
        self.network.deliver(Message {
            src,
            dst,
            tag,
            payload,
            sent_at,
            arrives_at,
        });
    }

    /// Consume the oldest pending message for `(src → dst, tag)` with **no**
    /// clock or statistics effect — the reliable-delivery layer's pump uses
    /// this to do sequence-number bookkeeping out of band, then charges the
    /// receiver in program order via [`charge_recv`](Machine::charge_recv).
    pub fn take_raw(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Message> {
        self.network.take(src, dst, tag)
    }

    /// Charge `dst` for receiving a `words`-long payload that arrived at
    /// `arrives_at`: idle until the arrival if necessary, then pay the
    /// unpacking cost. The accounting half of [`try_recv`](Machine::try_recv),
    /// for payloads already pulled out via [`take_raw`](Machine::take_raw).
    pub fn charge_recv(
        &mut self,
        dst: ProcId,
        src: ProcId,
        tag: Tag,
        arrives_at: Time,
        words: usize,
    ) {
        let before = self.clocks[dst.0];
        let ready = if arrives_at > before {
            self.procs[dst.0].idle_cycles += arrives_at.0 - before.0;
            arrives_at
        } else {
            before
        };
        let recv_cost = self.cost.recv_cost(words) * self.slowdown[dst.0];
        self.clocks[dst.0] = ready.plus(recv_cost);
        self.procs[dst.0].recvs += 1;
        self.metrics.logical_recv(
            dst.0,
            src.0 as u64,
            tag.0 as u64,
            words as u64,
            self.clocks[dst.0].0,
        );
        self.trace.record(
            dst,
            self.clocks[dst.0],
            EventKind::Recv {
                src,
                tag,
                words,
                waited: arrives_at.0.saturating_sub(before.0),
                cost: recv_cost,
            },
        );
    }

    /// Advance `p`'s clock by `cycles` of protocol work (slowdown-scaled)
    /// without counting an executed instruction — ack processing, timer
    /// service, and similar bookkeeping the program never wrote. Traced
    /// as compute: the processor really is busy over the interval.
    pub fn busy(&mut self, p: ProcId, cycles: u64) {
        let before = self.clocks[p.0];
        self.clocks[p.0] = before.plus(cycles * self.slowdown[p.0]);
        self.trace.record_compute(p, before, self.clocks[p.0]);
    }

    /// Advance `p`'s clock to at least `t` — how a retransmission timer
    /// "fires" in simulated time when every processor is otherwise stuck.
    pub fn advance_clock_to(&mut self, p: ProcId, t: Time) {
        if t > self.clocks[p.0] {
            self.clocks[p.0] = t;
        }
    }

    /// Drop every in-flight message addressed to `p`, returning how many
    /// were discarded. Crash recovery calls this when restoring `p` from
    /// a checkpoint: frames en route to the dead incarnation must not
    /// reach the restored one out of sequence-window order. Cumulative
    /// pair counts are left untouched.
    pub fn discard_incoming(&mut self, p: ProcId) -> usize {
        self.network.discard_to(p)
    }

    /// Drop every in-flight message on the fabric (coordinated-rollback
    /// recovery: the whole machine returns to a consistent cut and
    /// re-execution regenerates the traffic). Returns how many were
    /// discarded.
    pub fn discard_all_in_flight(&mut self) -> usize {
        self.network.discard_all()
    }

    /// Record that the process on `p` finished (for the trace).
    pub fn finish(&mut self, p: ProcId) {
        let at = self.clocks[p.0];
        self.trace.record(p, at, EventKind::Finish);
    }

    /// Validate a processor id.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidProcessor`] when out of range.
    pub fn check_proc(&self, p: ProcId) -> Result<(), MachineError> {
        if p.0 < self.n {
            Ok(())
        } else {
            Err(MachineError::InvalidProcessor { proc: p, n: self.n })
        }
    }

    /// Messages still queued (should be zero at the end of a clean run).
    pub fn undelivered(&self) -> usize {
        self.network.in_flight()
    }

    /// Triples with queued messages, for diagnostics.
    pub fn pending_triples(&self) -> Vec<(ProcId, ProcId, Tag, usize)> {
        self.network.pending_triples()
    }

    /// Snapshot all statistics.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            network: self.network.stats(),
            procs: self.procs.clone(),
            clocks: self.clocks.clone(),
        }
    }

    /// The event trace recorded so far. Open compute intervals are not
    /// yet flushed; prefer [`snapshot_trace`](Machine::snapshot_trace)
    /// for a finished run.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Flush open compute intervals and clone the trace — what a
    /// [`RunReport`](crate::RunReport) carries.
    pub fn snapshot_trace(&mut self) -> Trace {
        self.trace.flush();
        self.trace.clone()
    }

    /// Mutable trace access for the protocol layers (retransmit/ack
    /// events recorded by the scheduler's reliable-delivery state).
    pub(crate) fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Cumulative messages delivered per `(src, dst, tag)` triple.
    pub fn pair_counts(&self) -> BTreeMap<(ProcId, ProcId, Tag), u64> {
        self.network.pair_counts().clone()
    }
}

impl Fabric for Machine {
    fn n_procs(&self) -> usize {
        Machine::n_procs(self)
    }

    fn cost_model(&self) -> &CostModel {
        Machine::cost_model(self)
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        Machine::tick(self, p, cycles);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        Machine::send(self, src, dst, tag, payload);
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        Machine::try_recv(self, dst, src, tag)
    }

    fn send_lost(&mut self, src: ProcId, dst: ProcId, tag: Tag, words: usize) {
        Machine::send_lost(self, src, dst, tag, words);
    }

    fn inject(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>, extra: u64) {
        Machine::inject(self, src, dst, tag, payload, extra);
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_one_clock() {
        let mut m = Machine::new(3, CostModel::ipsc2());
        m.tick(ProcId(1), 7);
        assert_eq!(m.clock(ProcId(0)), Time(0));
        assert_eq!(m.clock(ProcId(1)), Time(7));
    }

    #[test]
    fn send_charges_sender_and_stamps_arrival() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c);
        m.send(ProcId(0), ProcId(1), Tag(0), vec![1, 2, 3]);
        assert_eq!(m.clock(ProcId(0)), Time(c.send_cost(3)));
        // Receiver has not moved yet.
        assert_eq!(m.clock(ProcId(1)), Time(0));
        let got = m.try_recv(ProcId(1), ProcId(0), Tag(0)).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
        // Receiver clock jumped to arrival + unpack cost.
        let expected = c.send_cost(3) + c.flight + c.recv_cost(3);
        assert_eq!(m.clock(ProcId(1)), Time(expected));
        assert_eq!(m.stats().procs[1].idle_cycles, c.send_cost(3) + c.flight);
    }

    #[test]
    fn recv_of_missing_message_returns_none() {
        let mut m = Machine::new(2, CostModel::zero());
        assert!(m.try_recv(ProcId(1), ProcId(0), Tag(9)).is_none());
        // A miss does not touch the clock or stats.
        assert_eq!(m.clock(ProcId(1)), Time(0));
        assert_eq!(m.stats().procs[1].recvs, 0);
    }

    #[test]
    fn busy_receiver_does_not_idle() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c);
        m.send(ProcId(0), ProcId(1), Tag(0), vec![5]);
        // Receiver is busy well past the arrival time.
        m.tick(ProcId(1), 1_000_000);
        m.try_recv(ProcId(1), ProcId(0), Tag(0)).unwrap();
        assert_eq!(m.stats().procs[1].idle_cycles, 0);
        assert_eq!(m.clock(ProcId(1)), Time(1_000_000 + c.recv_cost(1)));
    }

    #[test]
    fn check_proc_bounds() {
        let m = Machine::new(2, CostModel::zero());
        assert!(m.check_proc(ProcId(1)).is_ok());
        assert!(matches!(
            m.check_proc(ProcId(2)),
            Err(MachineError::InvalidProcessor { .. })
        ));
    }

    #[test]
    fn trace_records_send_recv_finish() {
        let mut m = Machine::new(2, CostModel::zero()).with_trace(16);
        m.send(ProcId(0), ProcId(1), Tag(1), vec![1]);
        m.try_recv(ProcId(1), ProcId(0), Tag(1)).unwrap();
        m.finish(ProcId(0));
        let kinds: Vec<_> = m.trace().events().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Send { .. }));
        assert!(matches!(kinds[1], EventKind::Recv { .. }));
        assert!(matches!(kinds[2], EventKind::Finish));
    }

    #[test]
    fn trace_coalesces_ticks_and_records_costs() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c).with_trace(16);
        m.tick(ProcId(0), 3);
        m.tick(ProcId(0), 4);
        m.send(ProcId(0), ProcId(1), Tag(0), vec![1, 2]);
        m.try_recv(ProcId(1), ProcId(0), Tag(0)).unwrap();
        let evs: Vec<_> = m.snapshot_trace().events().cloned().collect();
        // Two ticks coalesced into one compute interval, flushed by the send.
        assert_eq!(evs[0].kind, EventKind::Compute { cycles: 7 });
        assert_eq!(evs[0].at, Time(7));
        assert_eq!(
            evs[1].kind,
            EventKind::Send {
                dst: ProcId(1),
                tag: Tag(0),
                words: 2,
                cost: c.send_cost(2),
            }
        );
        match evs[2].kind {
            EventKind::Recv { waited, cost, .. } => {
                assert_eq!(cost, c.recv_cost(2));
                assert_eq!(waited, 7 + c.send_cost(2) + c.flight);
            }
            ref other => panic!("expected recv, got {other:?}"),
        }
        // Intervals tile the receiver's timeline: at - duration = start.
        assert_eq!(evs[2].start(), Time(0));
        assert_eq!(evs[2].at, m.clock(ProcId(1)));
    }

    #[test]
    fn send_lost_traced_as_frame_lost() {
        let mut m = Machine::new(2, CostModel::ipsc2()).with_trace(16);
        m.send_lost(ProcId(0), ProcId(1), Tag(3), 2);
        let evs: Vec<_> = m.snapshot_trace().events().cloned().collect();
        assert!(matches!(
            evs[0].kind,
            EventKind::FrameLost { tag: Tag(3), .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Machine::new(0, CostModel::zero());
    }

    #[test]
    fn self_send_is_recorded_not_delivered() {
        let mut m = Machine::new(2, CostModel::ipsc2());
        m.send(ProcId(1), ProcId(1), Tag(0), vec![1, 2]);
        assert_eq!(m.take_self_send(), Some(ProcId(1)));
        assert_eq!(m.take_self_send(), None, "take clears the fault");
        assert!(m.try_recv(ProcId(1), ProcId(1), Tag(0)).is_none());
        assert_eq!(m.undelivered(), 0);
        // No charge either: a self-send is a bug, not a machine event.
        assert_eq!(m.clock(ProcId(1)), Time(0));
    }

    #[test]
    fn send_lost_charges_sender_without_delivery() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c);
        m.send_lost(ProcId(0), ProcId(1), Tag(0), 3);
        assert_eq!(m.clock(ProcId(0)), Time(c.send_cost(3)));
        assert_eq!(m.stats().procs[0].sends, 1);
        assert_eq!(m.stats().procs[0].words_sent, 3);
        assert!(m.try_recv(ProcId(1), ProcId(0), Tag(0)).is_none());
        assert_eq!(m.undelivered(), 0);
    }

    #[test]
    fn inject_delivers_without_charging_sender() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c);
        m.inject(ProcId(0), ProcId(1), Tag(0), vec![9], 250);
        assert_eq!(m.clock(ProcId(0)), Time(0));
        assert_eq!(m.stats().procs[0].sends, 0);
        assert_eq!(m.try_recv(ProcId(1), ProcId(0), Tag(0)), Some(vec![9]));
        // Arrival = sender clock (0) + flight + extra.
        assert_eq!(m.clock(ProcId(1)), Time(c.flight + 250 + c.recv_cost(1)));
    }

    #[test]
    fn take_raw_plus_charge_recv_equals_try_recv() {
        let c = CostModel::ipsc2();
        let mut a = Machine::new(2, c);
        let mut b = Machine::new(2, c);
        a.send(ProcId(0), ProcId(1), Tag(0), vec![1, 2]);
        b.send(ProcId(0), ProcId(1), Tag(0), vec![1, 2]);
        a.try_recv(ProcId(1), ProcId(0), Tag(0)).unwrap();
        let msg = b.take_raw(ProcId(1), ProcId(0), Tag(0)).unwrap();
        // take_raw alone moves nothing.
        assert_eq!(b.clock(ProcId(1)), Time(0));
        b.charge_recv(
            ProcId(1),
            ProcId(0),
            Tag(0),
            msg.arrives_at,
            msg.payload.len(),
        );
        assert_eq!(a.clock(ProcId(1)), b.clock(ProcId(1)));
        assert_eq!(
            a.stats().procs[1].idle_cycles,
            b.stats().procs[1].idle_cycles
        );
        assert_eq!(a.stats().procs[1].recvs, b.stats().procs[1].recvs);
    }

    #[test]
    fn busy_and_advance_clock_to() {
        let mut m = Machine::new(2, CostModel::zero()).with_slowdowns(vec![2, 1]);
        m.busy(ProcId(0), 10);
        assert_eq!(m.clock(ProcId(0)), Time(20), "busy is slowdown-scaled");
        assert_eq!(m.stats().procs[0].ops, 0, "busy counts no instruction");
        m.advance_clock_to(ProcId(0), Time(15));
        assert_eq!(m.clock(ProcId(0)), Time(20), "never moves backwards");
        m.advance_clock_to(ProcId(0), Time(120));
        assert_eq!(m.clock(ProcId(0)), Time(120));
    }

    #[test]
    fn mut_ref_fabric_delegates_overrides() {
        fn lose<F: Fabric>(mut f: F) {
            f.send_lost(ProcId(0), ProcId(1), Tag(0), 2);
        }
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c);
        lose(&mut m);
        // Machine's override ran (charged the sender), not the no-op default.
        assert_eq!(m.clock(ProcId(0)), Time(c.send_cost(2)));
    }
}

#[cfg(test)]
mod slowdown_tests {
    use super::*;

    #[test]
    fn slowdown_scales_local_work() {
        let mut m = Machine::new(2, CostModel::ipsc2()).with_slowdowns(vec![3, 1]);
        m.tick(ProcId(0), 10);
        m.tick(ProcId(1), 10);
        assert_eq!(m.clock(ProcId(0)), Time(30));
        assert_eq!(m.clock(ProcId(1)), Time(10));
        assert_eq!(m.slowdown(ProcId(0)), 3);
    }

    #[test]
    fn slowdown_scales_packing_but_not_flight() {
        let c = CostModel::ipsc2();
        let mut m = Machine::new(2, c).with_slowdowns(vec![2, 1]);
        m.send(ProcId(0), ProcId(1), Tag(0), vec![1]);
        // Sender pays doubled packing cost.
        assert_eq!(m.clock(ProcId(0)), Time(2 * c.send_cost(1)));
        m.try_recv(ProcId(1), ProcId(0), Tag(0)).unwrap();
        // Arrival = send completion + unscaled flight; receiver unpacks
        // at nominal speed (factor 1).
        assert_eq!(
            m.clock(ProcId(1)),
            Time(2 * c.send_cost(1) + c.flight + c.recv_cost(1))
        );
    }

    #[test]
    #[should_panic(expected = "one factor per processor")]
    fn slowdown_length_checked() {
        let _ = Machine::new(2, CostModel::zero()).with_slowdowns(vec![1]);
    }
}
