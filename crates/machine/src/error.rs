//! Machine-level failures.

use crate::message::{ProcId, Tag};
use std::error::Error;
use std::fmt;

/// A failure detected by the machine fabric or scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A processor id outside `0..n` was used.
    InvalidProcessor {
        /// The offending id.
        proc: ProcId,
        /// Number of processors in the machine.
        n: usize,
    },
    /// A processor attempted to send a message to itself. The compiler is
    /// expected to turn same-processor coercions into local reads (§3.1),
    /// so a self-send indicates a code-generation bug.
    SelfSend {
        /// The processor that sent to itself.
        proc: ProcId,
    },
    /// Every unfinished process is blocked on a receive that no pending or
    /// future message can satisfy.
    Deadlock {
        /// For each blocked processor: (receiver, awaited source, tag).
        waiting: Vec<(ProcId, ProcId, Tag)>,
    },
    /// A process reported an internal error (payload is its rendering).
    ProcessFault {
        /// The processor whose process faulted.
        proc: ProcId,
        /// Human-readable description.
        message: String,
    },
    /// The scheduler exceeded its step budget (runaway program guard).
    StepBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The reliable-delivery layer retransmitted a frame its configured
    /// maximum number of times without ever seeing an acknowledgement —
    /// the peer is suspected dead (crashed without recovery) or the link
    /// is black-holed. Names the starved stream and the last sequence
    /// number the peer ever acknowledged, so operators can distinguish "a
    /// peer that answered for a while and went silent" (crash) from "a
    /// stream that never delivered anything" (dead link).
    RetriesExhausted {
        /// The sending processor that gave up.
        proc: ProcId,
        /// The suspected-dead peer that never acknowledged.
        peer: ProcId,
        /// The tag of the starved stream.
        tag: Tag,
        /// How many retransmissions were attempted.
        retries: u32,
        /// Cumulative acknowledgement last received from the peer on this
        /// stream: every sequence number below it was confirmed. 0 means
        /// the peer never acknowledged anything.
        last_acked: u64,
    },
    /// A processor crashed (per the fault plan) with no checkpointing
    /// configured, so it cannot be restored. The threaded backend reports
    /// this directly from the dying thread; the simulator usually
    /// surfaces the peers' view ([`MachineError::RetriesExhausted`])
    /// instead, because the dead processor simply stops scheduling.
    Crashed {
        /// The processor that crashed.
        proc: ProcId,
        /// The charged-op counter at which it crashed.
        at_op: u64,
    },
    /// Checkpointing was requested but the process running on `proc`
    /// does not implement state snapshots
    /// ([`Process::snapshot`](crate::Process::snapshot) returned `None`).
    CheckpointUnsupported {
        /// The processor whose process cannot snapshot.
        proc: ProcId,
    },
    /// A threaded-backend receive was waiting on a peer whose thread
    /// died (panicked or aborted with its own error) before satisfying
    /// the receive. Detected *immediately* from the peer's liveness
    /// status — waiters do not burn the full receive-timeout window. A
    /// pure cascade: the dead peer's own root error always outranks it
    /// in the final report, but the variant names exactly who died so
    /// blocked receives can explain themselves.
    PeerDied {
        /// The processor whose receive was cut short.
        proc: ProcId,
        /// The peer whose thread died.
        peer: ProcId,
    },
    /// A threaded-backend receive saw no traffic at all for the configured
    /// wall-clock window. Real threads cannot take the global no-progress
    /// snapshot the simulator's deadlock detector uses, so a cyclic
    /// deadlock surfaces as this timeout instead of hanging the run.
    RecvTimeout {
        /// The processor whose receive starved.
        proc: ProcId,
        /// Source it was waiting on.
        src: ProcId,
        /// Tag it was waiting on.
        tag: Tag,
        /// The wall-clock window that elapsed, in milliseconds.
        waited_ms: u64,
    },
}

impl MachineError {
    /// For a [`MachineError::Deadlock`], the circular wait among the
    /// blocked processors, if one exists. Each entry is `(receiver,
    /// awaited source, tag)` and the awaited source of each entry is the
    /// receiver of the next (wrapping around). The cycle is rotated to
    /// start at its smallest-numbered processor, which makes it directly
    /// comparable with the cycle the static analyzer reports for the
    /// same program. `None` for other errors and for deadlocks without a
    /// cycle (e.g. a processor awaiting an already-finished peer).
    pub fn wait_cycle(&self) -> Option<Vec<(ProcId, ProcId, Tag)>> {
        let MachineError::Deadlock { waiting } = self else {
            return None;
        };
        // Each blocked processor waits on exactly one peer, so the
        // wait-for graph is functional: chase out-edges from each node
        // until we revisit one. A revisit inside the current chase is a
        // cycle; a node seen in an earlier chase leads out of one.
        let edges: std::collections::BTreeMap<ProcId, (ProcId, Tag)> = waiting
            .iter()
            .map(|&(p, src, tag)| (p, (src, tag)))
            .collect();
        let mut done: std::collections::BTreeSet<ProcId> = Default::default();
        for &start in edges.keys() {
            let mut path: Vec<ProcId> = Vec::new();
            let mut cur = start;
            while edges.contains_key(&cur) && !done.contains(&cur) {
                if let Some(at) = path.iter().position(|&p| p == cur) {
                    let cycle: Vec<ProcId> = path[at..].to_vec();
                    let min = cycle.iter().enumerate().min_by_key(|(_, p)| **p)?.0;
                    return Some(
                        (0..cycle.len())
                            .map(|i| {
                                let p = cycle[(min + i) % cycle.len()];
                                let (src, tag) = edges[&p];
                                (p, src, tag)
                            })
                            .collect(),
                    );
                }
                path.push(cur);
                cur = edges[&cur].0;
            }
            done.extend(path);
        }
        None
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidProcessor { proc, n } => {
                write!(f, "processor {proc} out of range (machine has {n})")
            }
            MachineError::SelfSend { proc } => {
                write!(f, "processor {proc} sent a message to itself")
            }
            MachineError::Deadlock { waiting } => {
                write!(f, "deadlock: ")?;
                for (i, (p, src, tag)) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p} awaits {tag} from {src}")?;
                }
                if let Some(cycle) = self.wait_cycle() {
                    write!(f, "; circular wait: ")?;
                    for (p, _, tag) in &cycle {
                        write!(f, "{p} -{tag}-> ")?;
                    }
                    write!(f, "{}", cycle[0].0)?;
                    let extra = waiting.len() - cycle.len();
                    if extra > 0 {
                        write!(f, " ({extra} more blocked behind the cycle)")?;
                    }
                }
                Ok(())
            }
            MachineError::ProcessFault { proc, message } => {
                write!(f, "process fault on {proc}: {message}")
            }
            MachineError::StepBudgetExceeded { budget } => {
                write!(f, "step budget of {budget} exceeded")
            }
            MachineError::RetriesExhausted {
                proc,
                peer,
                tag,
                retries,
                last_acked,
            } => {
                write!(
                    f,
                    "retries exhausted: {proc} retransmitted {tag} to {peer} \
                     {retries} times without an ack; peer suspected dead "
                )?;
                if *last_acked == 0 {
                    write!(f, "(never acknowledged anything on this stream)")
                } else {
                    write!(f, "(last acknowledged seq {})", last_acked - 1)
                }
            }
            MachineError::Crashed { proc, at_op } => {
                write!(
                    f,
                    "processor {proc} crashed at op {at_op} with no checkpoint to restore from"
                )
            }
            MachineError::CheckpointUnsupported { proc } => {
                write!(
                    f,
                    "checkpointing requested but the process on {proc} does not \
                     support state snapshots"
                )
            }
            MachineError::PeerDied { proc, peer } => {
                write!(
                    f,
                    "peer died: {proc} was receiving from {peer} when {peer}'s \
                     thread terminated abnormally"
                )
            }
            MachineError::RecvTimeout {
                proc,
                src,
                tag,
                waited_ms,
            } => {
                write!(
                    f,
                    "receive timeout: {proc} waited {waited_ms} ms for {tag} from {src} \
                     with no traffic arriving (likely deadlock)"
                )
            }
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_deadlock_lists_waiters() {
        let e = MachineError::Deadlock {
            waiting: vec![
                (ProcId(0), ProcId(1), Tag(3)),
                (ProcId(1), ProcId(0), Tag(4)),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("P0 awaits t3 from P1"));
        assert!(s.contains("P1 awaits t4 from P0"));
        assert!(s.contains("circular wait: P0 -t3-> P1 -t4-> P0"), "{s}");
    }

    #[test]
    fn wait_cycle_rotates_to_smallest_and_counts_the_tail() {
        // P3 -> P2 -> P1 -> P2 is a 2-cycle with P3 blocked behind it.
        let e = MachineError::Deadlock {
            waiting: vec![
                (ProcId(3), ProcId(2), Tag(7)),
                (ProcId(2), ProcId(1), Tag(5)),
                (ProcId(1), ProcId(2), Tag(6)),
            ],
        };
        let cycle = e.wait_cycle().expect("cycle");
        assert_eq!(
            cycle,
            vec![
                (ProcId(1), ProcId(2), Tag(6)),
                (ProcId(2), ProcId(1), Tag(5))
            ]
        );
        let s = e.to_string();
        assert!(s.contains("circular wait: P1 -t6-> P2 -t5-> P1"), "{s}");
        assert!(s.contains("(1 more blocked behind the cycle)"), "{s}");
    }

    #[test]
    fn no_cycle_when_awaiting_a_finished_peer() {
        // Both waiters block on P9, which is not itself blocked (it
        // finished without sending) — a starvation chain, not a cycle.
        let e = MachineError::Deadlock {
            waiting: vec![
                (ProcId(0), ProcId(9), Tag(1)),
                (ProcId(1), ProcId(0), Tag(2)),
            ],
        };
        assert_eq!(e.wait_cycle(), None);
        assert!(!e.to_string().contains("circular wait"));
    }

    #[test]
    fn display_retries_exhausted_names_the_stream() {
        let e = MachineError::RetriesExhausted {
            proc: ProcId(2),
            peer: ProcId(0),
            tag: Tag(9),
            retries: 16,
            last_acked: 0,
        };
        let s = e.to_string();
        assert!(s.contains("P2"));
        assert!(s.contains("P0"));
        assert!(s.contains("t9"));
        assert!(s.contains("16"));
        assert!(s.contains("suspected dead"), "{s}");
        assert!(s.contains("never acknowledged"), "{s}");
    }

    #[test]
    fn display_retries_exhausted_reports_last_acked_seq() {
        let e = MachineError::RetriesExhausted {
            proc: ProcId(1),
            peer: ProcId(3),
            tag: Tag(2),
            retries: 8,
            last_acked: 5,
        };
        let s = e.to_string();
        // Cumulative ack 5 means seqs 0..=4 were confirmed.
        assert!(s.contains("last acknowledged seq 4"), "{s}");
        assert!(s.contains("suspected dead"), "{s}");
    }

    #[test]
    fn display_crash_errors() {
        let e = MachineError::Crashed {
            proc: ProcId(3),
            at_op: 120,
        };
        let s = e.to_string();
        assert!(s.contains("P3"), "{s}");
        assert!(s.contains("120"), "{s}");
        assert!(s.contains("no checkpoint"), "{s}");
        let u = MachineError::CheckpointUnsupported { proc: ProcId(1) }.to_string();
        assert!(u.contains("P1"), "{u}");
        assert!(u.contains("snapshot"), "{u}");
    }

    #[test]
    fn display_peer_died_names_both_sides() {
        let e = MachineError::PeerDied {
            proc: ProcId(2),
            peer: ProcId(5),
        };
        let s = e.to_string();
        assert!(s.contains("P2"), "{s}");
        assert!(s.contains("P5"), "{s}");
        assert!(s.contains("died"), "{s}");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineError>();
    }
}
