//! Machine-level failures.

use crate::message::{ProcId, Tag};
use std::error::Error;
use std::fmt;

/// A failure detected by the machine fabric or scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A processor id outside `0..n` was used.
    InvalidProcessor {
        /// The offending id.
        proc: ProcId,
        /// Number of processors in the machine.
        n: usize,
    },
    /// A processor attempted to send a message to itself. The compiler is
    /// expected to turn same-processor coercions into local reads (§3.1),
    /// so a self-send indicates a code-generation bug.
    SelfSend {
        /// The processor that sent to itself.
        proc: ProcId,
    },
    /// Every unfinished process is blocked on a receive that no pending or
    /// future message can satisfy.
    Deadlock {
        /// For each blocked processor: (receiver, awaited source, tag).
        waiting: Vec<(ProcId, ProcId, Tag)>,
    },
    /// A process reported an internal error (payload is its rendering).
    ProcessFault {
        /// The processor whose process faulted.
        proc: ProcId,
        /// Human-readable description.
        message: String,
    },
    /// The scheduler exceeded its step budget (runaway program guard).
    StepBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The reliable-delivery layer retransmitted a frame its configured
    /// maximum number of times without ever seeing an acknowledgement —
    /// the peer is unreachable (every copy was dropped by the fault plan)
    /// or gone. Names the starved stream so tests and operators can see
    /// exactly which channel died.
    RetriesExhausted {
        /// The sending processor that gave up.
        proc: ProcId,
        /// The peer that never acknowledged.
        peer: ProcId,
        /// The tag of the starved stream.
        tag: Tag,
        /// How many retransmissions were attempted.
        retries: u32,
    },
    /// A threaded-backend receive saw no traffic at all for the configured
    /// wall-clock window. Real threads cannot take the global no-progress
    /// snapshot the simulator's deadlock detector uses, so a cyclic
    /// deadlock surfaces as this timeout instead of hanging the run.
    RecvTimeout {
        /// The processor whose receive starved.
        proc: ProcId,
        /// Source it was waiting on.
        src: ProcId,
        /// Tag it was waiting on.
        tag: Tag,
        /// The wall-clock window that elapsed, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidProcessor { proc, n } => {
                write!(f, "processor {proc} out of range (machine has {n})")
            }
            MachineError::SelfSend { proc } => {
                write!(f, "processor {proc} sent a message to itself")
            }
            MachineError::Deadlock { waiting } => {
                write!(f, "deadlock: ")?;
                for (i, (p, src, tag)) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p} awaits {tag} from {src}")?;
                }
                Ok(())
            }
            MachineError::ProcessFault { proc, message } => {
                write!(f, "process fault on {proc}: {message}")
            }
            MachineError::StepBudgetExceeded { budget } => {
                write!(f, "step budget of {budget} exceeded")
            }
            MachineError::RetriesExhausted {
                proc,
                peer,
                tag,
                retries,
            } => {
                write!(
                    f,
                    "retries exhausted: {proc} retransmitted {tag} to {peer} \
                     {retries} times without an ack"
                )
            }
            MachineError::RecvTimeout {
                proc,
                src,
                tag,
                waited_ms,
            } => {
                write!(
                    f,
                    "receive timeout: {proc} waited {waited_ms} ms for {tag} from {src} \
                     with no traffic arriving (likely deadlock)"
                )
            }
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_deadlock_lists_waiters() {
        let e = MachineError::Deadlock {
            waiting: vec![
                (ProcId(0), ProcId(1), Tag(3)),
                (ProcId(1), ProcId(0), Tag(4)),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("P0 awaits t3 from P1"));
        assert!(s.contains("P1 awaits t4 from P0"));
    }

    #[test]
    fn display_retries_exhausted_names_the_stream() {
        let e = MachineError::RetriesExhausted {
            proc: ProcId(2),
            peer: ProcId(0),
            tag: Tag(9),
            retries: 16,
        };
        let s = e.to_string();
        assert!(s.contains("P2"));
        assert!(s.contains("P0"));
        assert!(s.contains("t9"));
        assert!(s.contains("16"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineError>();
    }
}
