//! Typed FIFO channels between processor pairs.

use crate::message::{Message, ProcId, Tag};
use crate::stats::NetworkStats;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The interconnect: one FIFO queue per `(src, dst, tag)` triple.
///
/// Matching on a triple reproduces the Intel NX semantics the paper's
/// generated code relies on: `crecv(type, …)` consumes the oldest pending
/// message of that type from the named source. Because each communication
/// stream created by the compiler gets its own tag, FIFO order within a
/// triple is exactly program order on the sender.
#[derive(Debug, Default)]
pub struct Network {
    queues: HashMap<(ProcId, ProcId, Tag), VecDeque<Message>>,
    stats: NetworkStats,
    /// Cumulative messages delivered per `(src, dst, tag)` triple —
    /// never decremented on take. Differential tests compare these
    /// counts across execution backends.
    sent: BTreeMap<(ProcId, ProcId, Tag), u64>,
}

impl Network {
    /// An empty interconnect.
    pub fn new() -> Self {
        Network::default()
    }

    /// Deposit a message. The caller (the machine fabric) has already
    /// stamped `arrives_at`.
    pub fn deliver(&mut self, msg: Message) {
        self.stats.messages += 1;
        self.stats.words += msg.payload.len() as u64;
        *self.sent.entry((msg.src, msg.dst, msg.tag)).or_insert(0) += 1;
        let q = self.queues.entry((msg.src, msg.dst, msg.tag)).or_default();
        q.push_back(msg);
        let depth = self.queues.values().map(VecDeque::len).sum::<usize>() as u64;
        if depth > self.stats.max_in_flight {
            self.stats.max_in_flight = depth;
        }
    }

    /// Pop the oldest message matching `(src, dst, tag)`, if any.
    pub fn take(&mut self, src: ProcId, dst: ProcId, tag: Tag) -> Option<Message> {
        self.queues.get_mut(&(src, dst, tag))?.pop_front()
    }

    /// Is a matching message pending?
    pub fn has_pending(&self, src: ProcId, dst: ProcId, tag: Tag) -> bool {
        self.queues
            .get(&(src, dst, tag))
            .is_some_and(|q| !q.is_empty())
    }

    /// Number of messages currently queued (all triples).
    pub fn in_flight(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Cumulative per-`(src, dst, tag)` message counts.
    pub fn pair_counts(&self) -> &BTreeMap<(ProcId, ProcId, Tag), u64> {
        &self.sent
    }

    /// Drop every queued message destined for `dst`, returning how many
    /// were discarded. Used by crash recovery: frames in flight toward a
    /// crashed processor are addressed to its dead incarnation and must
    /// not survive into the restored one (the reliable layer's
    /// retransmit path regenerates them). The cumulative `sent` counts
    /// are *not* rewound — deliveries happened, recovery merely
    /// invalidates them.
    pub fn discard_to(&mut self, dst: ProcId) -> usize {
        let mut dropped = 0;
        for (&(_, d, _), q) in self.queues.iter_mut() {
            if d == dst {
                dropped += q.len();
                q.clear();
            }
        }
        dropped
    }

    /// Drop every queued message (all triples), returning how many were
    /// discarded. Used by coordinated-checkpoint recovery, where the
    /// whole machine rolls back to a consistent cut and deterministic
    /// re-execution regenerates all in-flight traffic.
    pub fn discard_all(&mut self) -> usize {
        let mut dropped = 0;
        for q in self.queues.values_mut() {
            dropped += q.len();
            q.clear();
        }
        dropped
    }

    /// All triples that still hold undelivered messages — used in error
    /// reporting when a run finishes with orphaned traffic.
    pub fn pending_triples(&self) -> Vec<(ProcId, ProcId, Tag, usize)> {
        let mut v: Vec<_> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&(s, d, t), q)| (s, d, t, q.len()))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Time;

    fn msg(src: usize, dst: usize, tag: u32, val: i64) -> Message {
        Message {
            src: ProcId(src),
            dst: ProcId(dst),
            tag: Tag(tag),
            payload: vec![val],
            sent_at: Time::ZERO,
            arrives_at: Time::ZERO,
        }
    }

    #[test]
    fn fifo_within_triple() {
        let mut n = Network::new();
        n.deliver(msg(0, 1, 5, 10));
        n.deliver(msg(0, 1, 5, 20));
        assert_eq!(n.take(ProcId(0), ProcId(1), Tag(5)).unwrap().payload, [10]);
        assert_eq!(n.take(ProcId(0), ProcId(1), Tag(5)).unwrap().payload, [20]);
        assert!(n.take(ProcId(0), ProcId(1), Tag(5)).is_none());
    }

    #[test]
    fn tags_are_independent_streams() {
        let mut n = Network::new();
        n.deliver(msg(0, 1, 1, 100));
        n.deliver(msg(0, 1, 2, 200));
        // Taking tag 2 first does not disturb tag 1.
        assert_eq!(n.take(ProcId(0), ProcId(1), Tag(2)).unwrap().payload, [200]);
        assert_eq!(n.take(ProcId(0), ProcId(1), Tag(1)).unwrap().payload, [100]);
    }

    #[test]
    fn stats_count_messages_and_words() {
        let mut n = Network::new();
        n.deliver(Message {
            payload: vec![1, 2, 3],
            ..msg(0, 1, 0, 0)
        });
        n.deliver(msg(1, 0, 0, 9));
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.words, 4);
        assert_eq!(s.max_in_flight, 2);
        assert_eq!(n.in_flight(), 2);
    }

    #[test]
    fn pending_triples_sorted() {
        let mut n = Network::new();
        n.deliver(msg(1, 0, 2, 0));
        n.deliver(msg(0, 1, 1, 0));
        let p = n.pending_triples();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].0, ProcId(0));
        assert_eq!(p[1].0, ProcId(1));
    }
}
