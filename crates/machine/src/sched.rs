//! The deterministic scheduler.

use crate::cost::CostModel;
use crate::error::MachineError;
use crate::fabric::{Fabric, Machine};
use crate::fault::{FaultPlan, FaultState};
use crate::message::{ProcId, Tag, Time, Word};
use crate::reliable::{
    ack_tag, frame, unframe, Pending, RecvChan, RelConfig, SenderChan, ACK_TAG_BIT,
};
use crate::stats::{FaultReport, MachineStats};
use crate::trace::{EventKind, Trace};
use std::collections::BTreeMap;

/// What a process did on one scheduling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Made progress; schedule it again.
    Ran,
    /// Needs a message `(src, tag)` that is not yet available. The
    /// scheduler parks the process until the message exists.
    BlockedOnRecv {
        /// Source the process is waiting on.
        src: ProcId,
        /// Tag the process is waiting on.
        tag: Tag,
    },
    /// The process has terminated normally.
    Done,
}

/// A process that can be driven by the [`Scheduler`] (simulated backend)
/// or by [`ThreadedRunner`](crate::ThreadedRunner) (one OS thread per
/// processor).
///
/// The process is called with a view of the machine fabric and its own
/// processor id; it performs some bounded amount of work (typically one
/// instruction), charging costs via [`Fabric::tick`] / [`Fabric::send`] /
/// [`Fabric::try_recv`], and reports a [`Step`].
///
/// # Errors
///
/// Implementations report internal faults (type errors, I-structure
/// violations, …) as [`MachineError::ProcessFault`]; the scheduler aborts
/// the run on the first fault.
pub trait Process {
    /// Execute one step on processor `me`.
    fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError>;
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final statistics snapshot (clocks, traffic, per-processor counters).
    pub stats: MachineStats,
    /// Total scheduler steps executed across all processes.
    pub steps: u64,
    /// Messages left in the network after all processes finished. A clean
    /// run leaves zero; a non-zero count usually means mismatched
    /// send/receive loops in generated code.
    pub undelivered: usize,
    /// Cumulative messages sent per `(src, dst, tag)` triple over the
    /// whole run. Because FIFO order within a typed channel is exactly
    /// program order on the sender, these counts are identical across
    /// execution backends and are the key invariant the differential
    /// tests compare. Under the reliability layer these are the
    /// *program-level* counts — retransmissions and acks are protocol
    /// traffic and tallied in [`fault`](RunReport::fault) instead.
    pub pair_messages: BTreeMap<(ProcId, ProcId, Tag), u64>,
    /// The triples behind [`undelivered`](RunReport::undelivered), with
    /// queue depths — diagnostic parity between the backends.
    pub pending: Vec<(ProcId, ProcId, Tag, usize)>,
    /// Fault-injection and reliable-delivery accounting; `None` when the
    /// run used the raw fabric.
    pub fault: Option<FaultReport>,
    /// The event trace of the run — empty unless tracing was enabled
    /// ([`Machine::with_trace`](crate::Machine::with_trace) on the
    /// simulator, [`ThreadedRunner::with_trace`](crate::ThreadedRunner::with_trace)
    /// on real threads). Check [`Trace::dropped`] before treating it as
    /// complete: a bounded trace silently truncates at its cap.
    pub trace: Trace,
}

/// Drives a set of [`Process`]es over a [`Machine`] until all finish.
///
/// Scheduling is round-robin: each live process runs until it blocks on a
/// receive whose message has not been sent yet, terminates, or exhausts a
/// per-turn quantum. Because message *content* visible to a process depends
/// only on FIFO order within typed channels (never on global interleaving),
/// results and logical-clock times are independent of the quantum; the
/// quantum exists only to bound memory growth of in-flight traffic.
#[derive(Debug)]
pub struct Scheduler {
    quantum: u64,
    step_budget: u64,
}

impl Scheduler {
    /// A scheduler with the default quantum (4096 steps per turn) and step
    /// budget (`u64::MAX`, effectively unbounded).
    pub fn new() -> Self {
        Scheduler {
            quantum: 4096,
            step_budget: u64::MAX,
        }
    }

    /// Limit the total number of steps (guards tests against runaway
    /// generated programs).
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Set the per-turn quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Run `processes[p]` on processor `p` until every process is done.
    ///
    /// # Errors
    ///
    /// * [`MachineError::Deadlock`] if every unfinished process is blocked
    ///   on a receive that no pending message satisfies;
    /// * [`MachineError::StepBudgetExceeded`] if the budget runs out;
    /// * any [`MachineError::ProcessFault`] raised by a process.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != machine.n_procs()`.
    pub fn run(
        &self,
        machine: &mut Machine,
        processes: &mut [&mut dyn Process],
    ) -> Result<RunReport, MachineError> {
        assert_eq!(
            processes.len(),
            machine.n_procs(),
            "one process per processor"
        );
        let n = processes.len();
        let mut done = vec![false; n];
        let mut blocked: Vec<Option<(ProcId, Tag)>> = vec![None; n];
        let mut steps: u64 = 0;
        loop {
            let mut progressed = false;
            for p in 0..n {
                if done[p] {
                    continue;
                }
                let me = ProcId(p);
                // Skip a parked process whose message still has not arrived.
                if let Some((src, tag)) = blocked[p] {
                    if !machine.has_pending(me, src, tag) {
                        continue;
                    }
                    blocked[p] = None;
                }
                let mut quantum = self.quantum;
                loop {
                    if steps >= self.step_budget {
                        return Err(MachineError::StepBudgetExceeded {
                            budget: self.step_budget,
                        });
                    }
                    steps += 1;
                    let step = processes[p].step(&mut *machine, me)?;
                    if let Some(sp) = machine.take_self_send() {
                        return Err(MachineError::SelfSend { proc: sp });
                    }
                    match step {
                        Step::Ran => {
                            progressed = true;
                            quantum -= 1;
                            if quantum == 0 {
                                break;
                            }
                        }
                        Step::BlockedOnRecv { src, tag } => {
                            if machine.has_pending(me, src, tag) {
                                // The message exists; let the process retry
                                // immediately (the recv will now succeed).
                                progressed = true;
                                continue;
                            }
                            blocked[p] = Some((src, tag));
                            break;
                        }
                        Step::Done => {
                            done[p] = true;
                            machine.finish(me);
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
            if !progressed {
                let waiting = blocked
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !done[*p])
                    .filter_map(|(p, b)| b.map(|(src, tag)| (ProcId(p), src, tag)))
                    .collect();
                return Err(MachineError::Deadlock { waiting });
            }
        }
        Ok(RunReport {
            stats: machine.stats(),
            steps,
            undelivered: machine.undelivered(),
            pair_messages: machine.pair_counts(),
            pending: machine.pending_triples(),
            fault: None,
            trace: machine.snapshot_trace(),
        })
    }

    /// Run `processes[p]` on processor `p` over a faulty fabric, with the
    /// reliable-delivery protocol interposed: every program send is
    /// sequence-numbered and retransmitted on a logical-clock timeout
    /// until acknowledged; every program receive is deduplicated and
    /// reordered back into sequence. The `plan` decides which frames the
    /// transport mistreats (acks included — they travel through the same
    /// faulty fabric under [`ack_tag`]).
    ///
    /// Everything stays deterministic: fault decisions are pure functions
    /// of the plan, and retransmission timers fire in logical time, so
    /// identical inputs give identical outputs, clocks, and
    /// [`FaultReport`]s run after run.
    ///
    /// # Errors
    ///
    /// The vanilla [`run`](Scheduler::run) errors, plus
    /// [`MachineError::RetriesExhausted`] when a frame is retransmitted
    /// `cfg.max_retries` times without an acknowledgement.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != machine.n_procs()`.
    pub fn run_faulty(
        &self,
        machine: &mut Machine,
        processes: &mut [&mut dyn Process],
        plan: &FaultPlan,
        cfg: RelConfig,
    ) -> Result<RunReport, MachineError> {
        assert_eq!(
            processes.len(),
            machine.n_procs(),
            "one process per processor"
        );
        let n = processes.len();
        let mut fault = FaultState::new(plan.clone());
        let mut rel = RelState::new(n, cfg);
        let mut done = vec![false; n];
        let mut last_block: Vec<Option<(ProcId, Tag)>> = vec![None; n];
        let mut steps: u64 = 0;
        loop {
            let round_activity = rel.activity;
            let mut progressed = false;
            for p in 0..n {
                let me = ProcId(p);
                if done[p] {
                    // A finished process still owes the protocol: ingest
                    // late frames, re-ack retransmissions, retire acks,
                    // and service its own retransmission timers.
                    rel.pump_acks(machine, me);
                    rel.pump_all_data(machine, &mut fault, me);
                    rel.service_timers(machine, &mut fault, me);
                    if let Some(e) = rel.fatal.take() {
                        return Err(e);
                    }
                    continue;
                }
                let mut quantum = self.quantum;
                loop {
                    if steps >= self.step_budget {
                        return Err(MachineError::StepBudgetExceeded {
                            budget: self.step_budget,
                        });
                    }
                    steps += 1;
                    let step = {
                        let mut view = ReliableView {
                            m: &mut *machine,
                            fault: &mut fault,
                            rel: &mut rel,
                        };
                        processes[p].step(&mut view, me)?
                    };
                    if let Some(sp) = machine.take_self_send() {
                        return Err(MachineError::SelfSend { proc: sp });
                    }
                    if let Some(e) = rel.fatal.take() {
                        return Err(e);
                    }
                    match step {
                        Step::Ran => {
                            progressed = true;
                            last_block[p] = None;
                            quantum -= 1;
                            if quantum == 0 {
                                break;
                            }
                        }
                        Step::BlockedOnRecv { src, tag } => {
                            last_block[p] = Some((src, tag));
                            // The pump may have just completed the stream;
                            // retry immediately if so. No parking otherwise:
                            // the next frame may need a retransmission that
                            // only this round's timer service can trigger.
                            if rel.has_ready(me, src, tag) {
                                progressed = true;
                                continue;
                            }
                            break;
                        }
                        Step::Done => {
                            done[p] = true;
                            machine.finish(me);
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if done.iter().all(|&d| d) && rel.all_acked() {
                break;
            }
            if !progressed && rel.activity == round_activity {
                // Nothing moved on its own. If a retransmission timer is
                // set, simulated time jumps to the earliest deadline — the
                // discrete-event "wait for the timer to fire".
                if let Some((p, t)) = rel.earliest_deadline() {
                    machine.advance_clock_to(p, t);
                    rel.service_timers(machine, &mut fault, p);
                    if let Some(e) = rel.fatal.take() {
                        return Err(e);
                    }
                    if rel.activity != round_activity {
                        continue;
                    }
                }
                let waiting = last_block
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !done[*p])
                    .filter_map(|(p, b)| b.map(|(src, tag)| (ProcId(p), src, tag)))
                    .collect();
                return Err(MachineError::Deadlock { waiting });
            }
        }
        Ok(RunReport {
            stats: machine.stats(),
            steps,
            undelivered: rel.undelivered(),
            pair_messages: rel.logical_sent.clone(),
            pending: rel.pending_triples(),
            trace: machine.snapshot_trace(),
            fault: Some(FaultReport {
                injected: fault.counts(),
                retransmits: rel.retransmits,
                acks_sent: rel.acks_sent,
                dup_frames_dropped: rel.dup_total(),
                max_gap: rel.max_gap(),
                raw_leftover: machine.undelivered(),
            }),
        })
    }
}

/// Per-processor protocol state for a reliable simulated run.
#[derive(Debug, Default)]
struct RelProc {
    /// Send side, one stream per `(dst, tag)`.
    senders: BTreeMap<(ProcId, Tag), SenderChan<Time>>,
    /// Receive side, one stream per `(src, tag)`.
    recvs: BTreeMap<(ProcId, Tag), RecvChan>,
}

/// Whole-machine protocol state for [`Scheduler::run_faulty`].
#[derive(Debug)]
struct RelState {
    procs: Vec<RelProc>,
    cfg: RelConfig,
    /// Program-level sends per `(src, dst, tag)` — the backend-invariant
    /// counts reported as `pair_messages`.
    logical_sent: BTreeMap<(ProcId, ProcId, Tag), u64>,
    /// Program-level receives per `(src, dst, tag)`.
    logical_recvd: BTreeMap<(ProcId, ProcId, Tag), u64>,
    retransmits: u64,
    acks_sent: u64,
    /// Monotone counter bumped by every protocol event (frame ingested,
    /// ack retired, retransmission) — the no-progress detector compares
    /// it across a scheduling round.
    activity: u64,
    /// First fatal protocol error, surfaced after the faulting step.
    fatal: Option<MachineError>,
}

impl RelState {
    fn new(n: usize, cfg: RelConfig) -> Self {
        RelState {
            procs: (0..n).map(|_| RelProc::default()).collect(),
            cfg,
            logical_sent: BTreeMap::new(),
            logical_recvd: BTreeMap::new(),
            retransmits: 0,
            acks_sent: 0,
            activity: 0,
            fatal: None,
        }
    }

    /// Consume every pending ack frame addressed to `me`, retiring
    /// acknowledged sends. Ack processing is interrupt-style: it charges
    /// the unpacking cost but never idles the processor waiting.
    fn pump_acks(&mut self, m: &mut Machine, me: ProcId) {
        let chans: Vec<(ProcId, Tag)> = self.procs[me.0].senders.keys().copied().collect();
        for (dst, tag) in chans {
            while let Some(msg) = m.take_raw(me, dst, ack_tag(tag)) {
                let cum = msg.payload[0] as u64;
                let cost = m.cost_model().recv_cost(1);
                m.busy(me, cost);
                let chan = self.procs[me.0]
                    .senders
                    .get_mut(&(dst, tag))
                    .expect("chan exists: key came from the map");
                chan.ack(cum);
                let now = m.clock(me);
                m.trace_mut().record(
                    me,
                    now,
                    EventKind::Ack {
                        peer: dst,
                        tag,
                        cum,
                    },
                );
                self.activity += 1;
            }
        }
    }

    /// Ingest every raw data frame pending for `(src → me, tag)` into the
    /// stream's [`RecvChan`], then acknowledge the batch. Acks travel
    /// through the faulty fabric too — a lost ack is just another fault
    /// the retransmission path absorbs.
    fn pump_data(
        &mut self,
        m: &mut Machine,
        fault: &mut FaultState,
        me: ProcId,
        src: ProcId,
        tag: Tag,
    ) {
        let mut drained = 0u64;
        let chan = self.procs[me.0].recvs.entry((src, tag)).or_default();
        while let Some(msg) = m.take_raw(me, src, tag) {
            let (seq, payload) = unframe(msg.payload);
            chan.on_frame(seq, msg.arrives_at, payload);
            drained += 1;
        }
        if drained > 0 {
            self.activity += drained;
            let cum = self.procs[me.0].recvs[&(src, tag)].cumulative();
            fault.dispatch(m, me, src, ack_tag(tag), vec![cum as Word]);
            self.acks_sent += 1;
        }
    }

    /// [`pump_data`](RelState::pump_data) over every stream `me` has ever
    /// received on — housekeeping for finished processes.
    fn pump_all_data(&mut self, m: &mut Machine, fault: &mut FaultState, me: ProcId) {
        let chans: Vec<(ProcId, Tag)> = self.procs[me.0].recvs.keys().copied().collect();
        for (src, tag) in chans {
            self.pump_data(m, fault, me, src, tag);
        }
    }

    /// Retransmit the oldest unacknowledged frame of any stream whose
    /// deadline has passed, doubling its backoff; flag
    /// [`MachineError::RetriesExhausted`] once a frame runs out of
    /// retries. Only the oldest frame per stream retransmits — the
    /// cumulative ack it provokes retires everything the receiver
    /// already has.
    fn service_timers(&mut self, m: &mut Machine, fault: &mut FaultState, me: ProcId) {
        if self.fatal.is_some() {
            return;
        }
        let now = m.clock(me);
        let chans: Vec<(ProcId, Tag)> = self.procs[me.0].senders.keys().copied().collect();
        for (dst, tag) in chans {
            let resend = {
                let chan = self.procs[me.0]
                    .senders
                    .get_mut(&(dst, tag))
                    .expect("chan exists: key came from the map");
                let Some(p) = chan.unacked.front_mut() else {
                    continue;
                };
                if p.deadline > now {
                    continue;
                }
                if p.retries >= self.cfg.max_retries {
                    self.fatal = Some(MachineError::RetriesExhausted {
                        proc: me,
                        peer: dst,
                        tag,
                        retries: p.retries,
                    });
                    return;
                }
                p.retries += 1;
                p.deadline = now.plus(self.cfg.backoff_cycles(p.retries));
                (p.seq, p.frame.clone())
            };
            let (seq, payload) = resend;
            let at = m.clock(me);
            m.trace_mut()
                .record(me, at, EventKind::Retransmit { dst, tag, seq });
            fault.dispatch(m, me, dst, tag, payload);
            self.retransmits += 1;
            self.activity += 1;
        }
    }

    /// Is an in-order payload ready for the program on `(src → me, tag)`?
    fn has_ready(&self, me: ProcId, src: ProcId, tag: Tag) -> bool {
        self.procs[me.0]
            .recvs
            .get(&(src, tag))
            .is_some_and(|c| !c.ready.is_empty())
    }

    /// Has every sent frame been acknowledged?
    fn all_acked(&self) -> bool {
        self.procs
            .iter()
            .all(|rp| rp.senders.values().all(|c| c.unacked.is_empty()))
    }

    /// The earliest retransmission deadline across all streams, if any.
    fn earliest_deadline(&self) -> Option<(ProcId, Time)> {
        let mut best: Option<(ProcId, Time)> = None;
        for (p, rp) in self.procs.iter().enumerate() {
            for chan in rp.senders.values() {
                if let Some(pending) = chan.unacked.front() {
                    if best.is_none_or(|(_, t)| pending.deadline < t) {
                        best = Some((ProcId(p), pending.deadline));
                    }
                }
            }
        }
        best
    }

    /// Program-level messages sent but never received.
    fn undelivered(&self) -> usize {
        self.logical_sent
            .iter()
            .map(|(k, &s)| {
                s.saturating_sub(self.logical_recvd.get(k).copied().unwrap_or(0)) as usize
            })
            .sum()
    }

    /// The triples behind [`undelivered`](RelState::undelivered).
    fn pending_triples(&self) -> Vec<(ProcId, ProcId, Tag, usize)> {
        self.logical_sent
            .iter()
            .filter_map(|(&(src, dst, tag), &s)| {
                let r = self
                    .logical_recvd
                    .get(&(src, dst, tag))
                    .copied()
                    .unwrap_or(0);
                (s > r).then_some((src, dst, tag, (s - r) as usize))
            })
            .collect()
    }

    fn dup_total(&self) -> u64 {
        self.procs
            .iter()
            .flat_map(|rp| rp.recvs.values())
            .map(|c| c.dups)
            .sum()
    }

    fn max_gap(&self) -> u64 {
        self.procs
            .iter()
            .flat_map(|rp| rp.recvs.values())
            .map(|c| c.max_gap)
            .max()
            .unwrap_or(0)
    }
}

/// The fabric a process sees during [`Scheduler::run_faulty`]: sends are
/// framed, tracked, and dispatched through the fault plan; receives pop
/// reassembled in-order payloads and charge the receiver exactly as a
/// vanilla receive would.
struct ReliableView<'a> {
    m: &'a mut Machine,
    fault: &'a mut FaultState,
    rel: &'a mut RelState,
}

impl Fabric for ReliableView<'_> {
    fn n_procs(&self) -> usize {
        self.m.n_procs()
    }

    fn cost_model(&self) -> &CostModel {
        self.m.cost_model()
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        let extra = self.fault.stall_cycles(p);
        self.m.tick(p, cycles + extra);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        debug_assert_eq!(
            tag.0 & ACK_TAG_BIT,
            0,
            "program tags must stay below the ack bit"
        );
        if src == dst {
            // Delegate so the self-send fault is recorded uniformly.
            self.m.send(src, dst, tag, payload);
            return;
        }
        self.rel.pump_acks(self.m, src);
        self.rel.service_timers(self.m, self.fault, src);
        *self.rel.logical_sent.entry((src, dst, tag)).or_insert(0) += 1;
        let seq = {
            let chan = self.rel.procs[src.0].senders.entry((dst, tag)).or_default();
            let s = chan.next_seq;
            chan.next_seq += 1;
            s
        };
        let fr = frame(seq, &payload);
        self.fault.dispatch(self.m, src, dst, tag, fr.clone());
        let deadline = self.m.clock(src).plus(self.rel.cfg.rto_cycles);
        self.rel.procs[src.0]
            .senders
            .get_mut(&(dst, tag))
            .expect("chan created above")
            .unacked
            .push_back(Pending {
                seq,
                frame: fr,
                retries: 0,
                deadline,
            });
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        self.rel.pump_acks(self.m, dst);
        self.rel.service_timers(self.m, self.fault, dst);
        self.rel.pump_data(self.m, self.fault, dst, src, tag);
        let chan = self.rel.procs[dst.0].recvs.get_mut(&(src, tag))?;
        let (arrives, payload) = chan.ready.pop_front()?;
        self.m.charge_recv(dst, src, tag, arrives, payload.len());
        *self.rel.logical_recvd.entry((src, dst, tag)).or_insert(0) += 1;
        Some(payload)
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// A toy process defined by a script of actions (shared with the
    /// `faulty_tests` sibling module).
    pub(super) enum Action {
        Compute(u64),
        Send(usize, u32, Vec<i64>),
        Recv(usize, u32),
    }

    pub(super) struct Scripted {
        script: Vec<Action>,
        pc: usize,
        pub(super) received: Vec<Vec<i64>>,
    }

    impl Scripted {
        pub(super) fn new(script: Vec<Action>) -> Self {
            Scripted {
                script,
                pc: 0,
                received: Vec::new(),
            }
        }
    }

    impl Process for Scripted {
        fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
            let Some(action) = self.script.get(self.pc) else {
                return Ok(Step::Done);
            };
            match action {
                Action::Compute(c) => {
                    machine.tick(me, *c);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Send(dst, tag, payload) => {
                    machine.send(me, ProcId(*dst), Tag(*tag), payload.clone());
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Recv(src, tag) => match machine.try_recv(me, ProcId(*src), Tag(*tag)) {
                    Some(words) => {
                        self.received.push(words);
                        self.pc += 1;
                        Ok(Step::Ran)
                    }
                    None => Ok(Step::BlockedOnRecv {
                        src: ProcId(*src),
                        tag: Tag(*tag),
                    }),
                },
            }
        }
    }

    fn run2(a: Vec<Action>, b: Vec<Action>, cost: CostModel) -> (RunReport, Machine) {
        let mut m = Machine::new(2, cost);
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let report = Scheduler::new().run(&mut m, &mut ps).expect("run ok");
        (report, m)
    }

    #[test]
    fn ping_pong_completes() {
        let (report, _) = run2(
            vec![Action::Send(1, 0, vec![1]), Action::Recv(1, 1)],
            vec![Action::Recv(0, 0), Action::Send(0, 1, vec![2])],
            CostModel::ipsc2(),
        );
        assert_eq!(report.stats.network.messages, 2);
        assert_eq!(report.undelivered, 0);
    }

    #[test]
    fn receiver_first_order_still_completes() {
        // P0 blocks on a recv whose send happens later on P1.
        let (report, _) = run2(
            vec![Action::Recv(1, 0)],
            vec![Action::Compute(50), Action::Send(0, 0, vec![9])],
            CostModel::ipsc2(),
        );
        assert_eq!(report.stats.network.messages, 1);
    }

    #[test]
    fn cross_deadlock_detected() {
        let mut m = Machine::new(2, CostModel::zero());
        let mut pa = Scripted::new(vec![Action::Recv(1, 0)]);
        let mut pb = Scripted::new(vec![Action::Recv(0, 0)]);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let err = Scheduler::new().run(&mut m, &mut ps).unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn makespan_reflects_critical_path() {
        let c = CostModel::ipsc2();
        let (report, _) = run2(
            vec![Action::Compute(500), Action::Send(1, 0, vec![1])],
            vec![Action::Recv(0, 0), Action::Compute(100)],
            c,
        );
        // Critical path: 500 compute + send + flight + recv + 100 compute.
        let expected = 500 + c.send_cost(1) + c.flight + c.recv_cost(1) + 100;
        assert_eq!(report.stats.makespan().0, expected);
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Forever;
        impl Process for Forever {
            fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
                machine.tick(me, 1);
                Ok(Step::Ran)
            }
        }
        let mut m = Machine::new(1, CostModel::zero());
        let mut fv = Forever;
        let mut ps: Vec<&mut dyn Process> = vec![&mut fv];
        let err = Scheduler::new()
            .with_step_budget(1000)
            .run(&mut m, &mut ps)
            .unwrap_err();
        assert!(matches!(err, MachineError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn self_send_surfaces_as_error() {
        let mut m = Machine::new(2, CostModel::zero());
        let mut pa = Scripted::new(vec![Action::Send(0, 0, vec![1])]);
        let mut pb = Scripted::new(vec![]);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let err = Scheduler::new().run(&mut m, &mut ps).unwrap_err();
        assert_eq!(err, MachineError::SelfSend { proc: ProcId(0) });
    }

    #[test]
    fn quantum_does_not_change_results() {
        let build = || {
            (
                vec![
                    Action::Compute(10),
                    Action::Send(1, 0, vec![1, 2]),
                    Action::Recv(1, 1),
                    Action::Compute(5),
                ],
                vec![
                    Action::Recv(0, 0),
                    Action::Compute(7),
                    Action::Send(0, 1, vec![3]),
                ],
            )
        };
        let mut results = Vec::new();
        for quantum in [1, 2, 3, 1000] {
            let (a, b) = build();
            let mut m = Machine::new(2, CostModel::ipsc2());
            let mut pa = Scripted::new(a);
            let mut pb = Scripted::new(b);
            let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
            let report = Scheduler::new()
                .with_quantum(quantum)
                .run(&mut m, &mut ps)
                .unwrap();
            results.push((report.stats.makespan(), report.stats.network));
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::tests::{Action, Scripted};
    use super::*;
    use crate::cost::CostModel;
    use crate::fault::FaultPlan;

    /// A 10-message stream 0 → 1 plus an unrelated reply, exercising
    /// FIFO recovery end to end.
    fn stream_scripts() -> (Vec<Action>, Vec<Action>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            a.push(Action::Send(1, 0, vec![i]));
            a.push(Action::Compute(10));
            b.push(Action::Recv(0, 0));
        }
        a.push(Action::Recv(1, 1));
        b.push(Action::Send(0, 1, vec![99]));
        (a, b)
    }

    fn run_faulty2(
        a: Vec<Action>,
        b: Vec<Action>,
        plan: &FaultPlan,
        cfg: RelConfig,
    ) -> Result<(RunReport, Vec<Vec<Word>>), MachineError> {
        let mut m = Machine::new(2, CostModel::ipsc2());
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let report = Scheduler::new().run_faulty(&mut m, &mut ps, plan, cfg)?;
        Ok((report, pb.received))
    }

    #[test]
    fn empty_plan_delivers_in_order_with_quiet_report() {
        let (a, b) = stream_scripts();
        let (report, received) =
            run_faulty2(a, b, &FaultPlan::none(), RelConfig::default()).unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(received, expected);
        assert_eq!(report.undelivered, 0);
        assert!(report.pending.is_empty());
        let fr = report.fault.expect("reliable run carries a report");
        assert_eq!(fr.injected.total(), 0);
        assert_eq!(fr.retransmits, 0);
        assert_eq!(fr.dup_frames_dropped, 0);
        assert_eq!(fr.max_gap, 0);
        // Logical pair counts see the program's messages, not the acks.
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(0))),
            Some(&10)
        );
        assert_eq!(report.pair_messages.len(), 2);
    }

    #[test]
    fn lossy_plan_recovers_exactly_once_in_order() {
        let plan = FaultPlan::seeded(7)
            .with_drops(250)
            .with_dups(150)
            .with_delays(100, 5_000)
            .with_reorders(100)
            .with_fault_budget(6);
        let (a, b) = stream_scripts();
        let (report, received) = run_faulty2(a, b, &plan, RelConfig::default()).unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(received, expected, "exactly-once, in-order delivery");
        assert_eq!(report.undelivered, 0);
        let fr = report.fault.expect("reliable run carries a report");
        assert!(fr.injected.total() > 0, "the plan actually injected faults");
        assert!(
            fr.retransmits > 0 || fr.injected.drops == 0,
            "drops force retransmissions"
        );
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let plan = FaultPlan::seeded(21)
            .with_drops(300)
            .with_dups(200)
            .with_fault_budget(8);
        let run = || {
            let (a, b) = stream_scripts();
            let (report, received) = run_faulty2(a, b, &plan, RelConfig::default()).unwrap();
            (
                received,
                report.stats.makespan(),
                report.fault.unwrap(),
                report.pair_messages,
            )
        };
        assert_eq!(run(), run(), "logical time makes faulty runs deterministic");
    }

    #[test]
    fn stalls_slow_one_processor() {
        let quiet = FaultPlan::none();
        let stalled = FaultPlan::seeded(0).with_stall(ProcId(0), 2, 1_000_000);
        let (a, b) = stream_scripts();
        let (base, _) = run_faulty2(a, b, &quiet, RelConfig::default()).unwrap();
        let (a, b) = stream_scripts();
        let (slow, received) = run_faulty2(a, b, &stalled, RelConfig::default()).unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(received, expected);
        assert_eq!(slow.fault.unwrap().injected.stall_cycles, 1_000_000);
        assert!(
            slow.stats.makespan().0 >= base.stats.makespan().0 + 1_000_000,
            "the stall is on the critical path"
        );
    }

    #[test]
    fn black_hole_exhausts_retries_and_names_the_stream() {
        let plan = FaultPlan::seeded(0).with_black_hole(ProcId(0), ProcId(1), Tag(0));
        let cfg = RelConfig {
            rto_cycles: 500,
            max_retries: 3,
            ..RelConfig::default()
        };
        let err = run_faulty2(
            vec![Action::Send(1, 0, vec![1])],
            vec![Action::Recv(0, 0)],
            &plan,
            cfg,
        )
        .unwrap_err();
        assert_eq!(
            err,
            MachineError::RetriesExhausted {
                proc: ProcId(0),
                peer: ProcId(1),
                tag: Tag(0),
                retries: 3,
            }
        );
    }

    #[test]
    fn cyclic_deadlock_still_detected_under_reliability() {
        let err = run_faulty2(
            vec![Action::Recv(1, 0)],
            vec![Action::Recv(0, 0)],
            &FaultPlan::none(),
            RelConfig::default(),
        )
        .unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn self_send_surfaces_under_reliability() {
        let err = run_faulty2(
            vec![Action::Send(0, 0, vec![1])],
            vec![],
            &FaultPlan::none(),
            RelConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, MachineError::SelfSend { proc: ProcId(0) });
    }
}
