//! The deterministic scheduler.

use crate::checkpoint::{Checkpoint, CheckpointCfg, RecoveryReport};
use crate::cost::CostModel;
use crate::error::MachineError;
use crate::fabric::{Fabric, Machine};
use crate::fault::{FaultPlan, FaultState};
use crate::message::{ProcId, Tag, Time, Word};
use crate::reliable::{
    ack_tag, frame_arc, is_ack_tag, unframe, Pending, RecvChan, RelConfig, SenderChan, ACK_TAG_BIT,
};
use crate::stats::{FaultReport, MachineStats};
use crate::trace::{EventKind, Trace};
use pdc_metrics::{Ctr, FlightKind, MetricsRegistry, NO_PEER};
use std::collections::BTreeMap;

/// What a process did on one scheduling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Made progress; schedule it again.
    Ran,
    /// Needs a message `(src, tag)` that is not yet available. The
    /// scheduler parks the process until the message exists.
    BlockedOnRecv {
        /// Source the process is waiting on.
        src: ProcId,
        /// Tag the process is waiting on.
        tag: Tag,
    },
    /// The process has terminated normally.
    Done,
}

/// A process that can be driven by the [`Scheduler`] (simulated backend)
/// or by [`ThreadedRunner`](crate::ThreadedRunner) (one OS thread per
/// processor).
///
/// The process is called with a view of the machine fabric and its own
/// processor id; it performs some bounded amount of work (typically one
/// instruction), charging costs via [`Fabric::tick`] / [`Fabric::send`] /
/// [`Fabric::try_recv`], and reports a [`Step`].
///
/// # Errors
///
/// Implementations report internal faults (type errors, I-structure
/// violations, …) as [`MachineError::ProcessFault`]; the scheduler aborts
/// the run on the first fault.
pub trait Process {
    /// Execute one step on processor `me`.
    fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError>;

    /// Serialize the process's complete execution state — program
    /// counter, registers, memory, everything [`restore`](Process::restore)
    /// needs to resume as if nothing happened — for a
    /// [`Checkpoint`](crate::Checkpoint). `None` (the default) means the
    /// process cannot be checkpointed, and requesting crash recovery for
    /// it fails with [`MachineError::CheckpointUnsupported`].
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Reinstate state captured by [`snapshot`](Process::snapshot),
    /// returning `false` if the image is unusable. The default restores
    /// nothing.
    fn restore(&mut self, state: &[u8]) -> bool {
        let _ = state;
        false
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final statistics snapshot (clocks, traffic, per-processor counters).
    pub stats: MachineStats,
    /// Total scheduler steps executed across all processes.
    pub steps: u64,
    /// Messages left in the network after all processes finished. A clean
    /// run leaves zero; a non-zero count usually means mismatched
    /// send/receive loops in generated code.
    pub undelivered: usize,
    /// Cumulative messages sent per `(src, dst, tag)` triple over the
    /// whole run. Because FIFO order within a typed channel is exactly
    /// program order on the sender, these counts are identical across
    /// execution backends and are the key invariant the differential
    /// tests compare. Under the reliability layer these are the
    /// *program-level* counts — retransmissions and acks are protocol
    /// traffic and tallied in [`fault`](RunReport::fault) instead.
    pub pair_messages: BTreeMap<(ProcId, ProcId, Tag), u64>,
    /// The triples behind [`undelivered`](RunReport::undelivered), with
    /// queue depths — diagnostic parity between the backends.
    pub pending: Vec<(ProcId, ProcId, Tag, usize)>,
    /// Fault-injection and reliable-delivery accounting; `None` when the
    /// run used the raw fabric.
    pub fault: Option<FaultReport>,
    /// Checkpoint/restart accounting; `None` unless checkpointing was
    /// configured ([`Scheduler::run_recoverable`] with a
    /// [`CheckpointCfg`], or `Job::with_checkpoints` at the driver).
    pub recovery: Option<RecoveryReport>,
    /// The event trace of the run — empty unless tracing was enabled
    /// ([`Machine::with_trace`](crate::Machine::with_trace) on the
    /// simulator, [`ThreadedRunner::with_trace`](crate::ThreadedRunner::with_trace)
    /// on real threads). Check [`Trace::dropped`] before treating it as
    /// complete: a bounded trace silently truncates at its cap.
    pub trace: Trace,
    /// Metrics snapshot at the end of the run. Always present: the
    /// flight recorder is always on, so even a metrics-off run carries
    /// each processor's recent history. Full counters/histograms need
    /// [`Machine::with_metrics`](crate::Machine::with_metrics) /
    /// `ThreadedRunner::with_metrics` (check
    /// [`MetricsSnapshot::full`](pdc_metrics::MetricsSnapshot)).
    pub metrics: pdc_metrics::MetricsSnapshot,
}

/// Drives a set of [`Process`]es over a [`Machine`] until all finish.
///
/// Scheduling is round-robin: each live process runs until it blocks on a
/// receive whose message has not been sent yet, terminates, or exhausts a
/// per-turn quantum. Because message *content* visible to a process depends
/// only on FIFO order within typed channels (never on global interleaving),
/// results and logical-clock times are independent of the quantum; the
/// quantum exists only to bound memory growth of in-flight traffic.
#[derive(Debug)]
pub struct Scheduler {
    quantum: u64,
    step_budget: u64,
}

impl Scheduler {
    /// A scheduler with the default quantum (4096 steps per turn) and step
    /// budget (`u64::MAX`, effectively unbounded).
    pub fn new() -> Self {
        Scheduler {
            quantum: 4096,
            step_budget: u64::MAX,
        }
    }

    /// Limit the total number of steps (guards tests against runaway
    /// generated programs).
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Set the per-turn quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Run `processes[p]` on processor `p` until every process is done.
    ///
    /// # Errors
    ///
    /// * [`MachineError::Deadlock`] if every unfinished process is blocked
    ///   on a receive that no pending message satisfies;
    /// * [`MachineError::StepBudgetExceeded`] if the budget runs out;
    /// * any [`MachineError::ProcessFault`] raised by a process.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != machine.n_procs()`.
    pub fn run(
        &self,
        machine: &mut Machine,
        processes: &mut [&mut dyn Process],
    ) -> Result<RunReport, MachineError> {
        assert_eq!(
            processes.len(),
            machine.n_procs(),
            "one process per processor"
        );
        let n = processes.len();
        let mut done = vec![false; n];
        let mut blocked: Vec<Option<(ProcId, Tag)>> = vec![None; n];
        let mut steps: u64 = 0;
        loop {
            let mut progressed = false;
            for p in 0..n {
                if done[p] {
                    continue;
                }
                let me = ProcId(p);
                // Skip a parked process whose message still has not arrived.
                if let Some((src, tag)) = blocked[p] {
                    if !machine.has_pending(me, src, tag) {
                        continue;
                    }
                    blocked[p] = None;
                }
                let mut quantum = self.quantum;
                loop {
                    if steps >= self.step_budget {
                        return Err(MachineError::StepBudgetExceeded {
                            budget: self.step_budget,
                        });
                    }
                    steps += 1;
                    let step = processes[p].step(&mut *machine, me)?;
                    if let Some(sp) = machine.take_self_send() {
                        return Err(MachineError::SelfSend { proc: sp });
                    }
                    match step {
                        Step::Ran => {
                            progressed = true;
                            quantum -= 1;
                            if quantum == 0 {
                                break;
                            }
                        }
                        Step::BlockedOnRecv { src, tag } => {
                            if machine.has_pending(me, src, tag) {
                                // The message exists; let the process retry
                                // immediately (the recv will now succeed).
                                progressed = true;
                                continue;
                            }
                            blocked[p] = Some((src, tag));
                            break;
                        }
                        Step::Done => {
                            done[p] = true;
                            machine.finish(me);
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
            if !progressed {
                let waiting = blocked
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !done[*p])
                    .filter_map(|(p, b)| b.map(|(src, tag)| (ProcId(p), src, tag)))
                    .collect();
                return Err(MachineError::Deadlock { waiting });
            }
        }
        Ok(RunReport {
            stats: machine.stats(),
            steps,
            undelivered: machine.undelivered(),
            pair_messages: machine.pair_counts(),
            pending: machine.pending_triples(),
            fault: None,
            recovery: None,
            trace: machine.snapshot_trace(),
            metrics: machine.metrics_snapshot(),
        })
    }

    /// Run `processes[p]` on processor `p` over a faulty fabric, with the
    /// reliable-delivery protocol interposed: every program send is
    /// sequence-numbered and retransmitted on a logical-clock timeout
    /// until acknowledged; every program receive is deduplicated and
    /// reordered back into sequence. The `plan` decides which frames the
    /// transport mistreats (acks included — they travel through the same
    /// faulty fabric under [`ack_tag`]).
    ///
    /// Everything stays deterministic: fault decisions are pure functions
    /// of the plan, and retransmission timers fire in logical time, so
    /// identical inputs give identical outputs, clocks, and
    /// [`FaultReport`]s run after run.
    ///
    /// # Errors
    ///
    /// The vanilla [`run`](Scheduler::run) errors, plus
    /// [`MachineError::RetriesExhausted`] when a frame is retransmitted
    /// `cfg.max_retries` times without an acknowledgement.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != machine.n_procs()`.
    pub fn run_faulty(
        &self,
        machine: &mut Machine,
        processes: &mut [&mut dyn Process],
        plan: &FaultPlan,
        cfg: RelConfig,
    ) -> Result<RunReport, MachineError> {
        self.run_recoverable(machine, processes, plan, cfg, None)
    }

    /// [`run_faulty`](Scheduler::run_faulty) with crash recovery: when
    /// `ckpt` is set, every processor's complete state (process image,
    /// reliable-delivery windows, logical counters) is checkpointed at
    /// the configured charged-op interval, and a processor the `plan`
    /// crashes is restarted from its last [`Checkpoint`] — the reliable
    /// layer's retransmissions replay the lost suffix and the peers'
    /// duplicate suppression makes the recovery transparent.
    ///
    /// In independent mode (the default) only the crashed processor rolls
    /// back: receivers advertise *lagged* acks (the position of their
    /// last checkpoint), so peers' retransmission windows always hold the
    /// replay suffix. In [`coordinated`](CheckpointCfg::coordinated) mode
    /// all processors snapshot at one scheduler round boundary and all
    /// roll back together, with in-flight traffic discarded and
    /// regenerated by deterministic re-execution.
    ///
    /// Everything, the reboot delay included, runs in logical time:
    /// identical inputs give bit-identical reports, crashes and all.
    ///
    /// # Errors
    ///
    /// The [`run_faulty`](Scheduler::run_faulty) errors, plus
    /// [`MachineError::CheckpointUnsupported`] when a process cannot
    /// snapshot, and [`MachineError::Crashed`] when a processor crashes
    /// with no checkpointing configured and everyone else still finishes.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != machine.n_procs()`.
    pub fn run_recoverable(
        &self,
        machine: &mut Machine,
        processes: &mut [&mut dyn Process],
        plan: &FaultPlan,
        cfg: RelConfig,
        ckpt: Option<CheckpointCfg>,
    ) -> Result<RunReport, MachineError> {
        assert_eq!(
            processes.len(),
            machine.n_procs(),
            "one process per processor"
        );
        let n = processes.len();
        // In reliable mode every wire frame — data, retransmission, ack,
        // keepalive — goes through `Machine::send` via `FaultState::
        // dispatch`. Logical sends are recorded at the `ReliableView`
        // boundary instead, so tell the machine its send path is raw
        // transport only.
        machine.set_raw_transport(true);
        let mut fault = FaultState::new(plan.clone());
        let mut rel = RelState::new(n, cfg);
        let mut done = vec![false; n];
        let mut dead = vec![false; n];
        let mut first_crash: Option<(ProcId, u64)> = None;
        let mut last_block: Vec<Option<(ProcId, Tag)>> = vec![None; n];
        let mut steps: u64 = 0;
        let mut solicit_attempts: u32 = 0;
        let mut recovery = ckpt.map(|cfg| RecoveryCtl::new(cfg, n));
        if let Some(rc) = &mut recovery {
            if !rc.cfg.coordinated {
                // Independent mode lags acknowledgements behind the last
                // checkpoint from the very start.
                for st in rel.stable.iter_mut() {
                    *st = Some(BTreeMap::new());
                }
            }
            // Initial checkpoint of every processor, so a restore target
            // exists whatever the crash point. Free: the launch image
            // exists before the clocks start.
            for p in 0..n {
                rc.ckpts[p] = snapshot_proc(
                    machine,
                    &rel,
                    &fault,
                    processes,
                    ProcId(p),
                    &rc.cfg,
                    &mut rc.report,
                    false,
                )?;
                rc.mark_taken(p, machine.clock(ProcId(p)));
            }
        }
        loop {
            // Coordinated snapshots happen between rounds: every
            // processor is at a step boundary, so the cut is barrier
            // aligned by construction.
            if let Some(rc) = &mut recovery {
                if rc.cfg.coordinated {
                    let min_ops = (0..n).map(|q| fault.ops(ProcId(q))).min().unwrap_or(0);
                    if min_ops >= rc.global_last_op + rc.cfg.interval_ops {
                        for q in 0..n {
                            rc.ckpts[q] = snapshot_proc(
                                machine,
                                &rel,
                                &fault,
                                processes,
                                ProcId(q),
                                &rc.cfg,
                                &mut rc.report,
                                true,
                            )?;
                        }
                        rc.global_last_op = min_ops;
                    }
                }
            }
            let round_activity = rel.activity;
            let mut progressed = false;
            let mut global_rollback: Option<(ProcId, u64)> = None;
            'round: for p in 0..n {
                let me = ProcId(p);
                if dead[p] {
                    continue;
                }
                if done[p] {
                    // A finished process still owes the protocol: ingest
                    // late frames, re-ack retransmissions, retire acks,
                    // and service its own retransmission timers.
                    rel.pump_acks(machine, me);
                    rel.pump_all_data(machine, &mut fault, me);
                    rel.service_timers(machine, &mut fault, me);
                    if let Some(e) = rel.fatal.take() {
                        return Err(e);
                    }
                    continue;
                }
                let mut quantum = self.quantum;
                loop {
                    if steps >= self.step_budget {
                        return Err(MachineError::StepBudgetExceeded {
                            budget: self.step_budget,
                        });
                    }
                    steps += 1;
                    let step = {
                        let mut view = ReliableView {
                            m: &mut *machine,
                            fault: &mut fault,
                            rel: &mut rel,
                        };
                        processes[p].step(&mut view, me)?
                    };
                    if let Some(sp) = machine.take_self_send() {
                        return Err(MachineError::SelfSend { proc: sp });
                    }
                    if let Some(e) = rel.fatal.take() {
                        return Err(e);
                    }
                    match step {
                        Step::Ran => {
                            progressed = true;
                            last_block[p] = None;
                            // Step boundary: checkpoint first (so a crash
                            // landing on the same boundary restores with a
                            // zero-op replay), then roll the crash dice.
                            if let Some(rc) = &mut recovery {
                                if !rc.cfg.coordinated
                                    && fault.ops(me) >= rc.last_ckpt_op[p] + rc.cfg.interval_ops
                                    && rc.cfg.amortized(
                                        rc.last_ckpt_at[p],
                                        rc.last_ckpt_cost[p],
                                        machine.clock(me),
                                    )
                                {
                                    rc.ckpts[p] = snapshot_proc(
                                        machine,
                                        &rel,
                                        &fault,
                                        processes,
                                        me,
                                        &rc.cfg,
                                        &mut rc.report,
                                        true,
                                    )?;
                                    rc.last_ckpt_op[p] = fault.ops(me);
                                    rc.mark_taken(p, machine.clock(me));
                                    advance_stable_floors(&mut rel, me);
                                }
                            }
                            if let Some(crash_op) = fault.take_crash(me) {
                                match &mut recovery {
                                    Some(rc) if rc.cfg.coordinated => {
                                        global_rollback = Some((me, crash_op));
                                        break 'round;
                                    }
                                    Some(rc) => {
                                        restore_proc(
                                            machine,
                                            &mut rel,
                                            &mut fault,
                                            processes,
                                            me,
                                            crash_op,
                                            &rc.ckpts[p],
                                            &rc.cfg,
                                            &mut rc.report,
                                        )?;
                                        rc.last_ckpt_op[p] = crash_op;
                                        // Pacing restarts from the restore
                                        // point; the restored image's cost
                                        // still amortizes the next snapshot.
                                        rc.last_ckpt_at[p] = machine.clock(me);
                                        break;
                                    }
                                    None => {
                                        // No checkpoint to restore from: the
                                        // processor is simply gone. Its own
                                        // windows are cleared so termination
                                        // ignores it; peers retransmitting to
                                        // it exhaust their retries and name
                                        // it as the suspected-dead peer.
                                        let at = machine.clock(me);
                                        machine.trace_mut().record(
                                            me,
                                            at,
                                            EventKind::Crash { at_op: crash_op },
                                        );
                                        dead[p] = true;
                                        first_crash.get_or_insert((me, crash_op));
                                        rel.procs[p].senders.clear();
                                        break;
                                    }
                                }
                            }
                            quantum -= 1;
                            if quantum == 0 {
                                break;
                            }
                        }
                        Step::BlockedOnRecv { src, tag } => {
                            last_block[p] = Some((src, tag));
                            // A blocked processor's NIC still services every
                            // other stream — ingest and ack cross-traffic so
                            // peers sending to us don't exhaust their retries
                            // against a processor that is merely waiting.
                            // (The threaded backend's pump drains all streams;
                            // this keeps the backends' protocol behaviour
                            // aligned.)
                            rel.pump_all_data(machine, &mut fault, me);
                            // The pump may have just completed the stream;
                            // retry immediately if so. No parking otherwise:
                            // the next frame may need a retransmission that
                            // only this round's timer service can trigger.
                            if rel.has_ready(me, src, tag) {
                                progressed = true;
                                continue;
                            }
                            rel.recv_keepalive(machine, &mut fault, me, src, tag);
                            break;
                        }
                        Step::Done => {
                            done[p] = true;
                            machine.finish(me);
                            progressed = true;
                            if let Some(rc) = &mut recovery {
                                if !rc.cfg.coordinated {
                                    // Final checkpoint makes the finished
                                    // state durable; from here the processor
                                    // advertises live acks so peers' windows
                                    // drain and the run can terminate. Free:
                                    // op-indexed crashes can't land after the
                                    // last op, so this image is never a
                                    // replay target.
                                    rc.ckpts[p] = snapshot_proc(
                                        machine,
                                        &rel,
                                        &fault,
                                        processes,
                                        me,
                                        &rc.cfg,
                                        &mut rc.report,
                                        false,
                                    )?;
                                    rc.last_ckpt_op[p] = fault.ops(me);
                                    rel.stable[p] = None;
                                    let streams: Vec<(ProcId, Tag)> =
                                        rel.procs[p].recvs.keys().copied().collect();
                                    for (src, tag) in streams {
                                        let cum = rel.procs[p].recvs[&(src, tag)].cumulative();
                                        fault.dispatch(
                                            machine,
                                            me,
                                            src,
                                            ack_tag(tag),
                                            &[cum as Word, cum as Word],
                                        );
                                        rel.acks_sent += 1;
                                        machine.metrics_registry().count(p, Ctr::AcksSent, 1);
                                    }
                                }
                            }
                            break;
                        }
                    }
                }
            }
            if let Some((victim, crash_op)) = global_rollback {
                let rc = recovery
                    .as_mut()
                    .expect("coordinated rollback implies recovery state");
                restore_all(
                    machine,
                    &mut rel,
                    processes,
                    victim,
                    crash_op,
                    &rc.ckpts,
                    &rc.cfg,
                    &fault,
                    &mut rc.report,
                    &mut done,
                )?;
                continue;
            }
            if (0..n).all(|p| done[p] || dead[p]) && rel.all_acked() {
                break;
            }
            if progressed {
                solicit_attempts = 0;
            }
            if !progressed && rel.activity == round_activity {
                // Nothing moved on its own. If a retransmission timer is
                // set, simulated time jumps to the earliest deadline — the
                // discrete-event "wait for the timer to fire".
                if let Some((p, t)) = rel.earliest_deadline() {
                    machine.advance_clock_to(p, t);
                    rel.service_timers(machine, &mut fault, p);
                    if let Some(e) = rel.fatal.take() {
                        return Err(e);
                    }
                    if rel.activity != round_activity {
                        continue;
                    }
                }
                // A finished peer can no longer crash — its op-indexed
                // faults are exhausted — so delivered-but-unstable frames
                // held as its replay suffix are dead weight, and if the
                // peer's final live ack was dropped nothing else will ever
                // retire them. Retiring them here mirrors the threaded
                // backend, where a finished peer's channel hang-up clears
                // the sender's window.
                let mut retired = false;
                for rp in rel.procs.iter_mut() {
                    for (&(dst, _), chan) in rp.senders.iter_mut() {
                        if done[dst.0]
                            && !chan.unacked.is_empty()
                            && chan.unacked.iter().all(|f| f.seq < chan.delivered)
                        {
                            chan.unacked.clear();
                            retired = true;
                        }
                    }
                }
                if retired {
                    continue;
                }
                // Replay solicitation of last resort: with every timer
                // suppressed by delivered floors, a blocked checkpoint-mode
                // receiver re-advertises its floors before we give up. The
                // attempt bound outlasts any bounded fault budget while a
                // genuine cycle still terminates as a deadlock.
                if solicit_attempts < 16 {
                    solicit_attempts += 1;
                    let mut fired = 0;
                    for (p, b) in last_block.iter().enumerate() {
                        if done[p] || dead[p] {
                            continue;
                        }
                        if let Some((src, tag)) = b {
                            fired +=
                                rel.force_keepalive(machine, &mut fault, ProcId(p), *src, *tag);
                        }
                    }
                    if fired > 0 {
                        continue;
                    }
                }
                let waiting = last_block
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !done[*p] && !dead[*p])
                    .filter_map(|(p, b)| b.map(|(src, tag)| (ProcId(p), src, tag)))
                    .collect();
                return Err(MachineError::Deadlock { waiting });
            }
        }
        if let Some((proc, at_op)) = first_crash {
            // Everyone else finished cleanly, but a processor died
            // unrecoverably along the way — the run is not a success.
            return Err(MachineError::Crashed { proc, at_op });
        }
        Ok(RunReport {
            stats: machine.stats(),
            steps,
            undelivered: rel.undelivered(),
            pair_messages: rel.logical_sent.clone(),
            pending: rel.pending_triples(),
            trace: machine.snapshot_trace(),
            fault: Some(FaultReport {
                injected: fault.counts(),
                retransmits: rel.retransmits,
                acks_sent: rel.acks_sent,
                dup_frames_dropped: rel.dup_total(),
                max_gap: rel.max_gap(),
                raw_leftover: machine.undelivered(),
            }),
            recovery: recovery.map(|rc| rc.report),
            metrics: machine.metrics_snapshot(),
        })
    }
}

/// Bookkeeping for an actively checkpointed run.
struct RecoveryCtl {
    cfg: CheckpointCfg,
    /// Serialized last checkpoint per processor — stored as wire bytes so
    /// every restore also exercises the parse path.
    ckpts: Vec<Vec<u8>>,
    /// Op counter at each processor's last checkpoint (independent mode).
    last_ckpt_op: Vec<u64>,
    /// Logical clock and charged cost of each processor's last
    /// checkpoint, for cost-amortized pacing
    /// ([`CheckpointCfg::amortized`]).
    last_ckpt_at: Vec<Time>,
    last_ckpt_cost: Vec<u64>,
    /// Minimum op counter at the last global snapshot (coordinated mode).
    global_last_op: u64,
    report: RecoveryReport,
}

impl RecoveryCtl {
    fn new(cfg: CheckpointCfg, n: usize) -> Self {
        RecoveryCtl {
            cfg,
            ckpts: vec![Vec::new(); n],
            last_ckpt_op: vec![0; n],
            last_ckpt_at: vec![Time(0); n],
            last_ckpt_cost: vec![0; n],
            global_last_op: 0,
            report: RecoveryReport::default(),
        }
    }

    /// Record pacing state for a checkpoint of `p` just taken at `now`.
    fn mark_taken(&mut self, p: usize, now: Time) {
        self.last_ckpt_at[p] = now;
        self.last_ckpt_cost[p] = self.cfg.checkpoint_cost(self.ckpts[p].len());
    }
}

/// Serialize `me`'s complete state into a restorable checkpoint image.
///
/// `charge` puts the snapshot cost on the processor's clock. Mid-run
/// checkpoints charge; the initial image is provisioned before the
/// clocks start, and the final one is an off-critical-path flush —
/// crashes are op-indexed, so none can land after the last op and the
/// final image is never a replay target (it only flips the protocol to
/// live acknowledgements).
#[allow(clippy::too_many_arguments)]
fn snapshot_proc(
    m: &mut Machine,
    rel: &RelState,
    fault: &FaultState,
    processes: &mut [&mut dyn Process],
    me: ProcId,
    cfg: &CheckpointCfg,
    recov: &mut RecoveryReport,
    charge: bool,
) -> Result<Vec<u8>, MachineError> {
    let Some(process) = processes[me.0].snapshot() else {
        return Err(MachineError::CheckpointUnsupported { proc: me });
    };
    let rp = &rel.procs[me.0];
    let ckpt = Checkpoint {
        proc: me,
        at_op: fault.ops(me),
        taken_at: m.clock(me),
        process,
        senders: rp
            .senders
            .iter()
            .map(|(&(d, t), c)| (d, t, c.snapshot()))
            .collect(),
        recvs: rp
            .recvs
            .iter()
            .map(|(&(s, t), c)| (s, t, c.snapshot()))
            .collect(),
        sent: rel
            .logical_sent
            .iter()
            .filter(|(&(s, _, _), _)| s == me)
            .map(|(&(_, d, t), &v)| (d, t, v))
            .collect(),
        recvd: rel
            .logical_recvd
            .iter()
            .filter(|(&(_, d, _), _)| d == me)
            .map(|(&(s, _, t), &v)| (s, t, v))
            .collect(),
        stable: rp
            .recvs
            .iter()
            .map(|(&(s, t), c)| (s, t, c.cumulative()))
            .collect(),
    };
    let bytes = ckpt.to_bytes();
    if charge {
        m.busy(me, cfg.checkpoint_cost(bytes.len()));
    }
    let at = m.clock(me);
    m.trace_mut().record(
        me,
        at,
        EventKind::CheckpointTaken {
            at_op: ckpt.at_op,
            bytes: bytes.len() as u64,
        },
    );
    recov.checkpoints_taken += 1;
    recov.bytes_snapshotted += bytes.len() as u64;
    let reg = m.metrics_registry();
    reg.count(me.0, Ctr::CheckpointsTaken, 1);
    reg.count(me.0, Ctr::CheckpointBytes, bytes.len() as u64);
    reg.flight(
        me.0,
        FlightKind::Checkpoint,
        NO_PEER,
        ckpt.at_op,
        bytes.len() as u64,
        at.0,
    );
    Ok(bytes)
}

/// After an independent-mode checkpoint of `me`, advance its stable ack
/// floors to the just-snapshotted cumulative positions. The new floors
/// are not proactively re-acked: each piggybacks on the next batch ack
/// of its stream, and a stream that has gone quiet is drained by the
/// final live acks at completion. An iPSC-style ack costs real receive
/// cycles at the peer, so announcing floors eagerly would tax exactly
/// the fault-free runs checkpointing is supposed to leave alone —
/// meanwhile the peer's delivered floor already suppresses every
/// retransmission of the frames the stale stable floor still covers.
fn advance_stable_floors(rel: &mut RelState, me: ProcId) {
    let new_floors: BTreeMap<(ProcId, Tag), u64> = rel.procs[me.0]
        .recvs
        .iter()
        .map(|(&k, c)| (k, c.cumulative()))
        .collect();
    rel.stable[me.0] = Some(new_floors);
}

/// Independent-mode crash recovery: roll `me` — and only `me` — back to
/// its last checkpoint. Surviving peers' retransmission windows hold the
/// lost suffix (their acks were lagged to this very checkpoint), and
/// their duplicate suppression absorbs the restored processor's replayed
/// sends, so nobody else moves.
#[allow(clippy::too_many_arguments)]
fn restore_proc(
    m: &mut Machine,
    rel: &mut RelState,
    fault: &mut FaultState,
    processes: &mut [&mut dyn Process],
    me: ProcId,
    crash_op: u64,
    bytes: &[u8],
    cfg: &CheckpointCfg,
    recov: &mut RecoveryReport,
) -> Result<(), MachineError> {
    let ckpt = Checkpoint::from_bytes(bytes).expect("internally written checkpoint parses");
    let t_crash = m.clock(me);
    m.trace_mut()
        .record(me, t_crash, EventKind::Crash { at_op: crash_op });
    if !processes[me.0].restore(&ckpt.process) {
        return Err(MachineError::CheckpointUnsupported { proc: me });
    }
    // Frames in flight toward the dead incarnation are stale; the
    // reliable layer regenerates anything that matters.
    m.discard_incoming(me);
    m.advance_clock_to(me, t_crash.plus(cfg.reboot_cycles));
    let now = m.clock(me);
    let rearm = now.plus(rel.cfg.rto_cycles);
    let rp = &mut rel.procs[me.0];
    rp.senders = ckpt
        .senders
        .iter()
        .map(|(dst, tag, s)| ((*dst, *tag), SenderChan::from_snapshot(s, rearm)))
        .collect();
    rp.recvs = ckpt
        .recvs
        .iter()
        .map(|(src, tag, r)| ((*src, *tag), RecvChan::from_snapshot(r)))
        .collect();
    rel.logical_sent.retain(|&(s, _, _), _| s != me);
    for (dst, tag, v) in &ckpt.sent {
        rel.logical_sent.insert((me, *dst, *tag), *v);
    }
    rel.logical_recvd.retain(|&(_, d, _), _| d != me);
    for (src, tag, v) in &ckpt.recvd {
        rel.logical_recvd.insert((*src, me, *tag), *v);
    }
    rel.stable[me.0] = Some(ckpt.stable.iter().map(|(s, t, v)| ((*s, *t), *v)).collect());
    rel.procs[me.0].keepalive.clear();
    // Solicit replay: re-advertise the rolled-back cumulative on every
    // receive stream. Peers see the live component drop below their
    // delivered floor and immediately re-arm the suffix this incarnation
    // lost. (If this ack is dropped by the fabric, the keepalive path
    // re-sends it once we block starved.)
    let solicits: Vec<(ProcId, Tag, u64)> = rel.procs[me.0]
        .recvs
        .iter()
        .map(|(&(src, tag), c)| (src, tag, c.cumulative()))
        .collect();
    for (src, tag, cum) in solicits {
        fault.dispatch(m, me, src, ack_tag(tag), &[cum as Word, cum as Word]);
        rel.acks_sent += 1;
        m.metrics_registry().count(me.0, Ctr::AcksSent, 1);
    }
    for (dst, tag, s) in &ckpt.senders {
        for (seq, _) in &s.unacked {
            m.trace_mut().record(
                me,
                now,
                EventKind::ReplayedFrame {
                    dst: *dst,
                    tag: *tag,
                    seq: *seq,
                },
            );
        }
    }
    m.trace_mut().record(
        me,
        now,
        EventKind::Restore {
            from_op: ckpt.at_op,
            replayed: crash_op.saturating_sub(ckpt.at_op),
        },
    );
    recov.crashes_survived += 1;
    recov.replayed_ops += crash_op.saturating_sub(ckpt.at_op);
    recov.replay_frames += ckpt.window_frames();
    recov.recovery_cycles += cfg.reboot_cycles;
    let reg = m.metrics_registry();
    reg.count(me.0, Ctr::CrashesSurvived, 1);
    reg.count(me.0, Ctr::ReplayFrames, ckpt.window_frames());
    reg.flight(
        me.0,
        FlightKind::Restore,
        NO_PEER,
        ckpt.at_op,
        crash_op.saturating_sub(ckpt.at_op),
        now.0,
    );
    rel.activity += 1;
    Ok(())
}

/// Coordinated-mode crash recovery: roll *every* processor back to the
/// last barrier-aligned global cut, discard all in-flight traffic, and
/// let deterministic re-execution regenerate it bit-identically.
/// Survivors' clocks are not rolled back — the re-executed work is
/// charged again, which is the honest cost of coordinated recovery.
#[allow(clippy::too_many_arguments)]
fn restore_all(
    m: &mut Machine,
    rel: &mut RelState,
    processes: &mut [&mut dyn Process],
    victim: ProcId,
    crash_op: u64,
    ckpts: &[Vec<u8>],
    cfg: &CheckpointCfg,
    fault: &FaultState,
    recov: &mut RecoveryReport,
    done: &mut [bool],
) -> Result<(), MachineError> {
    let t_crash = m.clock(victim);
    m.trace_mut()
        .record(victim, t_crash, EventKind::Crash { at_op: crash_op });
    m.discard_all_in_flight();
    m.advance_clock_to(victim, t_crash.plus(cfg.reboot_cycles));
    rel.logical_sent.clear();
    rel.logical_recvd.clear();
    let mut from_op = 0;
    for q in 0..processes.len() {
        let qid = ProcId(q);
        let ckpt = Checkpoint::from_bytes(&ckpts[q]).expect("internally written checkpoint parses");
        if !processes[q].restore(&ckpt.process) {
            return Err(MachineError::CheckpointUnsupported { proc: qid });
        }
        let rearm = m.clock(qid).plus(rel.cfg.rto_cycles);
        let rp = &mut rel.procs[q];
        rp.senders = ckpt
            .senders
            .iter()
            .map(|(dst, tag, s)| ((*dst, *tag), SenderChan::from_snapshot(s, rearm)))
            .collect();
        rp.recvs = ckpt
            .recvs
            .iter()
            .map(|(src, tag, r)| ((*src, *tag), RecvChan::from_snapshot(r)))
            .collect();
        for (dst, tag, v) in &ckpt.sent {
            rel.logical_sent.insert((qid, *dst, *tag), *v);
        }
        for (src, tag, v) in &ckpt.recvd {
            rel.logical_recvd.insert((*src, qid, *tag), *v);
        }
        for (dst, tag, s) in &ckpt.senders {
            for (seq, _) in &s.unacked {
                let at = m.clock(qid);
                m.trace_mut().record(
                    qid,
                    at,
                    EventKind::ReplayedFrame {
                        dst: *dst,
                        tag: *tag,
                        seq: *seq,
                    },
                );
            }
        }
        recov.replayed_ops += fault.ops(qid).saturating_sub(ckpt.at_op);
        recov.replay_frames += ckpt.window_frames();
        m.metrics_registry()
            .count(q, Ctr::ReplayFrames, ckpt.window_frames());
        done[q] = false;
        if q == victim.0 {
            from_op = ckpt.at_op;
        }
    }
    let at = m.clock(victim);
    m.trace_mut().record(
        victim,
        at,
        EventKind::Restore {
            from_op,
            replayed: crash_op.saturating_sub(from_op),
        },
    );
    recov.crashes_survived += 1;
    recov.recovery_cycles += cfg.reboot_cycles;
    let reg = m.metrics_registry();
    reg.count(victim.0, Ctr::CrashesSurvived, 1);
    reg.flight(
        victim.0,
        FlightKind::Restore,
        NO_PEER,
        from_op,
        crash_op.saturating_sub(from_op),
        at.0,
    );
    rel.activity += 1;
    Ok(())
}

/// Per-processor protocol state for a reliable simulated run.
#[derive(Debug, Default)]
struct RelProc {
    /// Send side, one stream per `(dst, tag)`.
    senders: BTreeMap<(ProcId, Tag), SenderChan<Time>>,
    /// Receive side, one stream per `(src, tag)`.
    recvs: BTreeMap<(ProcId, Tag), RecvChan>,
    /// Keepalive pacing per starved receive stream
    /// ([`RelState::recv_keepalive`]): clock of the last keepalive ack
    /// and blocked rounds since it.
    keepalive: BTreeMap<(ProcId, Tag), (Time, u64)>,
}

/// Whole-machine protocol state for [`Scheduler::run_faulty`].
#[derive(Debug)]
struct RelState {
    procs: Vec<RelProc>,
    cfg: RelConfig,
    /// Program-level sends per `(src, dst, tag)` — the backend-invariant
    /// counts reported as `pair_messages`.
    logical_sent: BTreeMap<(ProcId, ProcId, Tag), u64>,
    /// Program-level receives per `(src, dst, tag)`.
    logical_recvd: BTreeMap<(ProcId, ProcId, Tag), u64>,
    retransmits: u64,
    acks_sent: u64,
    /// Monotone counter bumped by every protocol event (frame ingested,
    /// ack retired, retransmission) — the no-progress detector compares
    /// it across a scheduling round.
    activity: u64,
    /// First fatal protocol error, surfaced after the faulting step.
    fatal: Option<MachineError>,
    /// Per-processor stable ack floors for independent-mode
    /// checkpointing: `Some(map)` means acks for `(src, tag)` advertise
    /// the floor (the stream position as of the last checkpoint, 0 for
    /// streams the checkpoint predates) instead of the live cumulative,
    /// so peers keep everything newer in their retransmission windows.
    /// `None` — no checkpointing, or a finished processor — advertises
    /// live.
    stable: Vec<Option<BTreeMap<(ProcId, Tag), u64>>>,
}

impl RelState {
    fn new(n: usize, cfg: RelConfig) -> Self {
        RelState {
            procs: (0..n).map(|_| RelProc::default()).collect(),
            cfg,
            logical_sent: BTreeMap::new(),
            logical_recvd: BTreeMap::new(),
            retransmits: 0,
            acks_sent: 0,
            activity: 0,
            fatal: None,
            stable: vec![None; n],
        }
    }

    /// Consume every pending ack frame addressed to `me`, retiring
    /// acknowledged sends. Ack processing is interrupt-style: it charges
    /// the unpacking cost but never idles the processor waiting.
    fn pump_acks(&mut self, m: &mut Machine, me: ProcId) {
        let chans: Vec<(ProcId, Tag)> = self.procs[me.0].senders.keys().copied().collect();
        for (dst, tag) in chans {
            while let Some(msg) = m.take_raw(me, dst, ack_tag(tag)) {
                let cum = msg.payload[0] as u64;
                let live = msg.payload.get(1).map_or(cum, |&w| w as u64);
                let cost = m.cost_model().recv_cost(1);
                m.busy(me, cost);
                let chan = self.procs[me.0]
                    .senders
                    .get_mut(&(dst, tag))
                    .expect("chan exists: key came from the map");
                chan.ack(cum);
                let now = m.clock(me);
                chan.set_live(live, now);
                chan.mark_alive();
                m.trace_mut().record(
                    me,
                    now,
                    EventKind::Ack {
                        peer: dst,
                        tag,
                        cum,
                    },
                );
                m.metrics_registry().count(me.0, Ctr::AcksRecvd, 1);
                self.activity += 1;
            }
        }
    }

    /// Ingest every raw data frame pending for `(src → me, tag)` into the
    /// stream's [`RecvChan`], then acknowledge the batch. Acks travel
    /// through the faulty fabric too — a lost ack is just another fault
    /// the retransmission path absorbs.
    fn pump_data(
        &mut self,
        m: &mut Machine,
        fault: &mut FaultState,
        me: ProcId,
        src: ProcId,
        tag: Tag,
    ) {
        let mut drained = 0u64;
        let dups_before = self.procs[me.0]
            .recvs
            .get(&(src, tag))
            .map_or(0, |c| c.dups);
        let chan = self.procs[me.0].recvs.entry((src, tag)).or_default();
        while let Some(msg) = m.take_raw(me, src, tag) {
            let (seq, payload) = unframe(msg.payload);
            chan.on_frame(seq, msg.arrives_at, payload);
            drained += 1;
        }
        if drained > 0 {
            self.activity += drained;
            let chan = &self.procs[me.0].recvs[&(src, tag)];
            let live = chan.cumulative();
            let dup_delta = chan.dups - dups_before;
            let adv = match &self.stable[me.0] {
                Some(floors) => floors.get(&(src, tag)).copied().unwrap_or(0),
                None => live,
            };
            fault.dispatch(m, me, src, ack_tag(tag), &[adv as Word, live as Word]);
            self.acks_sent += 1;
            let reg = m.metrics_registry();
            reg.count(me.0, Ctr::AcksSent, 1);
            reg.count(me.0, Ctr::DupFramesDropped, dup_delta);
        }
    }

    /// Keepalive ack for a stream the program is blocked receiving on,
    /// rate-limited to one per RTO. This is the lost-rollback safety
    /// net: a restored processor's replay solicitation travels through
    /// the same faulty fabric as everything else, and if it's dropped
    /// the sender — whose delivered floor says we already have those
    /// frames — would never retransmit. Re-advertising our cumulative
    /// while starved re-triggers the rollback until data flows again.
    fn recv_keepalive(
        &mut self,
        m: &mut Machine,
        fault: &mut FaultState,
        me: ProcId,
        src: ProcId,
        tag: Tag,
    ) {
        // Only checkpoint-lagged receivers solicit: without a stable
        // floor in play the ordinary retransmission timers already cover
        // every loss, and extra acks would just perturb the fabric.
        let Some(floors) = &self.stable[me.0] else {
            return;
        };
        let adv = floors.get(&(src, tag)).copied().unwrap_or(0);
        // A missing chan still keepalives at floor zero: a receiver
        // restored from a pre-traffic checkpoint has no recv streams at
        // all, yet its peers' delivered floors may sit above everything
        // it lost — the zero advertisement is what rolls them back.
        let live = self.procs[me.0]
            .recvs
            .get(&(src, tag))
            .map_or(0, |chan| chan.cumulative());
        let now = m.clock(me);
        // Pace by the blocked processor's clock *or* by blocked rounds:
        // a starved processor's logical clock freezes, so a pure clock
        // gate would fire at most once — not enough when the fabric is
        // allowed to drop several keepalives in a row.
        let (last, rounds) = self.procs[me.0]
            .keepalive
            .get(&(src, tag))
            .copied()
            .unwrap_or((now, 0));
        let due = rounds >= 256 || now.0 >= last.0.saturating_add(self.cfg.rto_cycles);
        if !due {
            self.procs[me.0]
                .keepalive
                .insert((src, tag), (last, rounds + 1));
            return;
        }
        self.procs[me.0].keepalive.insert((src, tag), (now, 0));
        fault.dispatch(m, me, src, ack_tag(tag), &[adv as Word, live as Word]);
        self.acks_sent += 1;
        m.metrics_registry().count(me.0, Ctr::AcksSent, 1);
    }

    /// Unpaced [`recv_keepalive`](RelState::recv_keepalive), fired by the
    /// scheduler at quiescence. The delivered floor suppresses every
    /// retransmission timer for frames the peer is believed to hold, so
    /// once a restored receiver's solicitation is lost there may be no
    /// timer left to advance simulated time — the keepalive itself is the
    /// only move, and waiting out its pacing would read as a deadlock.
    /// Returns 1 if an ack was dispatched.
    fn force_keepalive(
        &mut self,
        m: &mut Machine,
        fault: &mut FaultState,
        me: ProcId,
        src: ProcId,
        tag: Tag,
    ) -> u32 {
        let Some(floors) = &self.stable[me.0] else {
            return 0;
        };
        let adv = floors.get(&(src, tag)).copied().unwrap_or(0);
        let live = self.procs[me.0]
            .recvs
            .get(&(src, tag))
            .map_or(0, |chan| chan.cumulative());
        let now = m.clock(me);
        self.procs[me.0].keepalive.insert((src, tag), (now, 0));
        fault.dispatch(m, me, src, ack_tag(tag), &[adv as Word, live as Word]);
        self.acks_sent += 1;
        m.metrics_registry().count(me.0, Ctr::AcksSent, 1);
        1
    }

    /// [`pump_data`](RelState::pump_data) over every stream with traffic
    /// for `me` — housekeeping for blocked and finished processes. Known
    /// streams are pumped unconditionally; streams this processor has
    /// never received on are discovered from the fabric's pending queues,
    /// so cross-traffic arriving while we're blocked elsewhere still gets
    /// ingested and acknowledged instead of starving its sender's retries.
    fn pump_all_data(&mut self, m: &mut Machine, fault: &mut FaultState, me: ProcId) {
        let mut chans: Vec<(ProcId, Tag)> = self.procs[me.0].recvs.keys().copied().collect();
        for (src, dst, tag, _) in m.pending_triples() {
            if dst == me && !is_ack_tag(tag) && !chans.contains(&(src, tag)) {
                chans.push((src, tag));
            }
        }
        for (src, tag) in chans {
            self.pump_data(m, fault, me, src, tag);
        }
    }

    /// Retransmit every unacknowledged frame whose deadline has passed,
    /// doubling its backoff; flag [`MachineError::RetriesExhausted`] once
    /// the oldest *undelivered* frame of a stream runs out of retries.
    /// The whole expired undelivered suffix retransmits (go-back-N), not
    /// just the front: a checkpointing receiver acknowledges only its
    /// stable floor, so resending only the front would starve a restored
    /// receiver of everything past it. Frames below the live delivered
    /// floor are skipped entirely — the peer has them; they sit in the
    /// window purely as the crash-replay suffix.
    fn service_timers(&mut self, m: &mut Machine, fault: &mut FaultState, me: ProcId) {
        if self.fatal.is_some() {
            return;
        }
        let now = m.clock(me);
        let chans: Vec<(ProcId, Tag)> = self.procs[me.0].senders.keys().copied().collect();
        for (dst, tag) in chans {
            // Arc bumps, not copies: the window's frames are shared.
            let resends: Vec<(u64, std::sync::Arc<[Word]>)> = {
                let chan = self.procs[me.0]
                    .senders
                    .get_mut(&(dst, tag))
                    .expect("chan exists: key came from the map");
                let delivered = chan.delivered;
                if let Some(p) = chan.unacked.iter().find(|p| p.seq >= delivered) {
                    if p.deadline <= now && p.retries >= self.cfg.max_retries {
                        // Cumulative acks retire the window prefix, so
                        // the oldest undelivered seq *is* the effective
                        // delivery point the peer last advanced us to.
                        self.fatal = Some(MachineError::RetriesExhausted {
                            proc: me,
                            peer: dst,
                            tag,
                            retries: p.retries,
                            last_acked: p.seq,
                        });
                        return;
                    }
                }
                chan.unacked
                    .iter_mut()
                    .filter(|p| p.seq >= delivered && p.deadline <= now)
                    .map(|p| {
                        p.retries += 1;
                        p.deadline = now.plus(self.cfg.backoff_cycles(p.retries));
                        (p.seq, p.frame.clone())
                    })
                    .collect()
            };
            for (seq, payload) in resends {
                let at = m.clock(me);
                m.trace_mut()
                    .record(me, at, EventKind::Retransmit { dst, tag, seq });
                let reg = m.metrics_registry();
                reg.count(me.0, Ctr::Retransmits, 1);
                reg.flight(
                    me.0,
                    FlightKind::Retransmit,
                    dst.0 as u64,
                    tag.0 as u64,
                    seq,
                    at.0,
                );
                fault.dispatch(m, me, dst, tag, &payload);
                self.retransmits += 1;
                self.activity += 1;
            }
        }
    }

    /// Is an in-order payload ready for the program on `(src → me, tag)`?
    fn has_ready(&self, me: ProcId, src: ProcId, tag: Tag) -> bool {
        self.procs[me.0]
            .recvs
            .get(&(src, tag))
            .is_some_and(|c| !c.ready.is_empty())
    }

    /// Has every sent frame been acknowledged?
    fn all_acked(&self) -> bool {
        self.procs
            .iter()
            .all(|rp| rp.senders.values().all(|c| c.unacked.is_empty()))
    }

    /// The earliest retransmission deadline across all streams, if any.
    /// Delivered frames are excluded: their deadlines are stale and they
    /// will never retransmit, so jumping simulated time to one would
    /// spin the idle detector without making progress.
    fn earliest_deadline(&self) -> Option<(ProcId, Time)> {
        let mut best: Option<(ProcId, Time)> = None;
        for (p, rp) in self.procs.iter().enumerate() {
            for chan in rp.senders.values() {
                // Backoff is per-frame, so the front (most-retried) frame
                // can have a *later* deadline than the rest of the
                // window: scan every pending frame.
                for pending in &chan.unacked {
                    if pending.seq >= chan.delivered
                        && best.is_none_or(|(_, t)| pending.deadline < t)
                    {
                        best = Some((ProcId(p), pending.deadline));
                    }
                }
            }
        }
        best
    }

    /// Program-level messages sent but never received.
    fn undelivered(&self) -> usize {
        self.logical_sent
            .iter()
            .map(|(k, &s)| {
                s.saturating_sub(self.logical_recvd.get(k).copied().unwrap_or(0)) as usize
            })
            .sum()
    }

    /// The triples behind [`undelivered`](RelState::undelivered).
    fn pending_triples(&self) -> Vec<(ProcId, ProcId, Tag, usize)> {
        self.logical_sent
            .iter()
            .filter_map(|(&(src, dst, tag), &s)| {
                let r = self
                    .logical_recvd
                    .get(&(src, dst, tag))
                    .copied()
                    .unwrap_or(0);
                (s > r).then_some((src, dst, tag, (s - r) as usize))
            })
            .collect()
    }

    fn dup_total(&self) -> u64 {
        self.procs
            .iter()
            .flat_map(|rp| rp.recvs.values())
            .map(|c| c.dups)
            .sum()
    }

    fn max_gap(&self) -> u64 {
        self.procs
            .iter()
            .flat_map(|rp| rp.recvs.values())
            .map(|c| c.max_gap)
            .max()
            .unwrap_or(0)
    }
}

/// The fabric a process sees during [`Scheduler::run_faulty`]: sends are
/// framed, tracked, and dispatched through the fault plan; receives pop
/// reassembled in-order payloads and charge the receiver exactly as a
/// vanilla receive would.
struct ReliableView<'a> {
    m: &'a mut Machine,
    fault: &'a mut FaultState,
    rel: &'a mut RelState,
}

impl Fabric for ReliableView<'_> {
    fn n_procs(&self) -> usize {
        self.m.n_procs()
    }

    fn cost_model(&self) -> &CostModel {
        self.m.cost_model()
    }

    fn tick(&mut self, p: ProcId, cycles: u64) {
        let extra = self.fault.stall_cycles(p);
        self.m.tick(p, cycles + extra);
    }

    fn send(&mut self, src: ProcId, dst: ProcId, tag: Tag, payload: Vec<Word>) {
        debug_assert_eq!(
            tag.0 & ACK_TAG_BIT,
            0,
            "program tags must stay below the ack bit"
        );
        if src == dst {
            // Delegate so the self-send fault is recorded uniformly.
            self.m.send(src, dst, tag, payload);
            return;
        }
        self.rel.pump_acks(self.m, src);
        self.rel.service_timers(self.m, self.fault, src);
        *self.rel.logical_sent.entry((src, dst, tag)).or_insert(0) += 1;
        // The program-level send is recorded here; every frame below —
        // data, retransmission, ack — is raw transport to the machine.
        let t = self.m.clock(src);
        self.m.metrics_registry().logical_send(
            src.0,
            dst.0 as u64,
            tag.0 as u64,
            payload.len() as u64,
            t.0,
        );
        let seq = {
            let chan = self.rel.procs[src.0].senders.entry((dst, tag)).or_default();
            let s = chan.next_seq;
            chan.next_seq += 1;
            s
        };
        // One shared allocation: the wire dispatch borrows it, the
        // retransmission window keeps it — no per-send frame clone.
        let fr = frame_arc(seq, &payload);
        self.fault.dispatch(self.m, src, dst, tag, &fr);
        let deadline = self.m.clock(src).plus(self.rel.cfg.rto_cycles);
        self.rel.procs[src.0]
            .senders
            .get_mut(&(dst, tag))
            .expect("chan created above")
            .unacked
            .push_back(Pending {
                seq,
                frame: fr,
                retries: 0,
                deadline,
            });
    }

    fn try_recv(&mut self, dst: ProcId, src: ProcId, tag: Tag) -> Option<Vec<Word>> {
        self.rel.pump_acks(self.m, dst);
        self.rel.service_timers(self.m, self.fault, dst);
        self.rel.pump_data(self.m, self.fault, dst, src, tag);
        let chan = self.rel.procs[dst.0].recvs.get_mut(&(src, tag))?;
        let (arrives, payload) = chan.ready.pop_front()?;
        self.m.charge_recv(dst, src, tag, arrives, payload.len());
        *self.rel.logical_recvd.entry((src, dst, tag)).or_insert(0) += 1;
        Some(payload)
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(self.m.metrics_registry())
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// A toy process defined by a script of actions (shared with the
    /// `faulty_tests` sibling module).
    pub(super) enum Action {
        Compute(u64),
        Send(usize, u32, Vec<i64>),
        Recv(usize, u32),
    }

    pub(super) struct Scripted {
        script: Vec<Action>,
        pc: usize,
        pub(super) received: Vec<Vec<i64>>,
    }

    impl Scripted {
        pub(super) fn new(script: Vec<Action>) -> Self {
            Scripted {
                script,
                pc: 0,
                received: Vec::new(),
            }
        }
    }

    impl Process for Scripted {
        fn snapshot(&self) -> Option<Vec<u8>> {
            let mut b = Vec::new();
            b.extend_from_slice(&(self.pc as u64).to_le_bytes());
            b.extend_from_slice(&(self.received.len() as u64).to_le_bytes());
            for r in &self.received {
                b.extend_from_slice(&(r.len() as u64).to_le_bytes());
                for w in r {
                    b.extend_from_slice(&w.to_le_bytes());
                }
            }
            Some(b)
        }

        fn restore(&mut self, state: &[u8]) -> bool {
            let mut pos = 0;
            let u64_at = |p: &mut usize| -> Option<u64> {
                let v = u64::from_le_bytes(state.get(*p..*p + 8)?.try_into().ok()?);
                *p += 8;
                Some(v)
            };
            let Some(pc) = u64_at(&mut pos) else {
                return false;
            };
            let Some(n) = u64_at(&mut pos) else {
                return false;
            };
            let mut received = Vec::new();
            for _ in 0..n {
                let Some(len) = u64_at(&mut pos) else {
                    return false;
                };
                let mut words = Vec::new();
                for _ in 0..len {
                    let Some(w) = u64_at(&mut pos) else {
                        return false;
                    };
                    words.push(w as i64);
                }
                received.push(words);
            }
            self.pc = pc as usize;
            self.received = received;
            true
        }

        fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
            let Some(action) = self.script.get(self.pc) else {
                return Ok(Step::Done);
            };
            match action {
                Action::Compute(c) => {
                    machine.tick(me, *c);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Send(dst, tag, payload) => {
                    machine.send(me, ProcId(*dst), Tag(*tag), payload.clone());
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Recv(src, tag) => match machine.try_recv(me, ProcId(*src), Tag(*tag)) {
                    Some(words) => {
                        self.received.push(words);
                        self.pc += 1;
                        Ok(Step::Ran)
                    }
                    None => Ok(Step::BlockedOnRecv {
                        src: ProcId(*src),
                        tag: Tag(*tag),
                    }),
                },
            }
        }
    }

    fn run2(a: Vec<Action>, b: Vec<Action>, cost: CostModel) -> (RunReport, Machine) {
        let mut m = Machine::new(2, cost);
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let report = Scheduler::new().run(&mut m, &mut ps).expect("run ok");
        (report, m)
    }

    #[test]
    fn ping_pong_completes() {
        let (report, _) = run2(
            vec![Action::Send(1, 0, vec![1]), Action::Recv(1, 1)],
            vec![Action::Recv(0, 0), Action::Send(0, 1, vec![2])],
            CostModel::ipsc2(),
        );
        assert_eq!(report.stats.network.messages, 2);
        assert_eq!(report.undelivered, 0);
    }

    #[test]
    fn receiver_first_order_still_completes() {
        // P0 blocks on a recv whose send happens later on P1.
        let (report, _) = run2(
            vec![Action::Recv(1, 0)],
            vec![Action::Compute(50), Action::Send(0, 0, vec![9])],
            CostModel::ipsc2(),
        );
        assert_eq!(report.stats.network.messages, 1);
    }

    #[test]
    fn cross_deadlock_detected() {
        let mut m = Machine::new(2, CostModel::zero());
        let mut pa = Scripted::new(vec![Action::Recv(1, 0)]);
        let mut pb = Scripted::new(vec![Action::Recv(0, 0)]);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let err = Scheduler::new().run(&mut m, &mut ps).unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn makespan_reflects_critical_path() {
        let c = CostModel::ipsc2();
        let (report, _) = run2(
            vec![Action::Compute(500), Action::Send(1, 0, vec![1])],
            vec![Action::Recv(0, 0), Action::Compute(100)],
            c,
        );
        // Critical path: 500 compute + send + flight + recv + 100 compute.
        let expected = 500 + c.send_cost(1) + c.flight + c.recv_cost(1) + 100;
        assert_eq!(report.stats.makespan().0, expected);
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Forever;
        impl Process for Forever {
            fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
                machine.tick(me, 1);
                Ok(Step::Ran)
            }
        }
        let mut m = Machine::new(1, CostModel::zero());
        let mut fv = Forever;
        let mut ps: Vec<&mut dyn Process> = vec![&mut fv];
        let err = Scheduler::new()
            .with_step_budget(1000)
            .run(&mut m, &mut ps)
            .unwrap_err();
        assert!(matches!(err, MachineError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn self_send_surfaces_as_error() {
        let mut m = Machine::new(2, CostModel::zero());
        let mut pa = Scripted::new(vec![Action::Send(0, 0, vec![1])]);
        let mut pb = Scripted::new(vec![]);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let err = Scheduler::new().run(&mut m, &mut ps).unwrap_err();
        assert_eq!(err, MachineError::SelfSend { proc: ProcId(0) });
    }

    #[test]
    fn quantum_does_not_change_results() {
        let build = || {
            (
                vec![
                    Action::Compute(10),
                    Action::Send(1, 0, vec![1, 2]),
                    Action::Recv(1, 1),
                    Action::Compute(5),
                ],
                vec![
                    Action::Recv(0, 0),
                    Action::Compute(7),
                    Action::Send(0, 1, vec![3]),
                ],
            )
        };
        let mut results = Vec::new();
        for quantum in [1, 2, 3, 1000] {
            let (a, b) = build();
            let mut m = Machine::new(2, CostModel::ipsc2());
            let mut pa = Scripted::new(a);
            let mut pb = Scripted::new(b);
            let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
            let report = Scheduler::new()
                .with_quantum(quantum)
                .run(&mut m, &mut ps)
                .unwrap();
            results.push((report.stats.makespan(), report.stats.network));
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::tests::{Action, Scripted};
    use super::*;
    use crate::cost::CostModel;
    use crate::fault::FaultPlan;

    /// A 10-message stream 0 → 1 plus an unrelated reply, exercising
    /// FIFO recovery end to end.
    pub(super) fn stream_scripts() -> (Vec<Action>, Vec<Action>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            a.push(Action::Send(1, 0, vec![i]));
            a.push(Action::Compute(10));
            b.push(Action::Recv(0, 0));
        }
        a.push(Action::Recv(1, 1));
        b.push(Action::Send(0, 1, vec![99]));
        (a, b)
    }

    fn run_faulty2(
        a: Vec<Action>,
        b: Vec<Action>,
        plan: &FaultPlan,
        cfg: RelConfig,
    ) -> Result<(RunReport, Vec<Vec<Word>>), MachineError> {
        let mut m = Machine::new(2, CostModel::ipsc2());
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let report = Scheduler::new().run_faulty(&mut m, &mut ps, plan, cfg)?;
        Ok((report, pb.received))
    }

    #[test]
    fn empty_plan_delivers_in_order_with_quiet_report() {
        let (a, b) = stream_scripts();
        let (report, received) =
            run_faulty2(a, b, &FaultPlan::none(), RelConfig::default()).unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(received, expected);
        assert_eq!(report.undelivered, 0);
        assert!(report.pending.is_empty());
        let fr = report.fault.expect("reliable run carries a report");
        assert_eq!(fr.injected.total(), 0);
        assert_eq!(fr.retransmits, 0);
        assert_eq!(fr.dup_frames_dropped, 0);
        assert_eq!(fr.max_gap, 0);
        // Logical pair counts see the program's messages, not the acks.
        assert_eq!(
            report.pair_messages.get(&(ProcId(0), ProcId(1), Tag(0))),
            Some(&10)
        );
        assert_eq!(report.pair_messages.len(), 2);
    }

    #[test]
    fn lossy_plan_recovers_exactly_once_in_order() {
        let plan = FaultPlan::seeded(7)
            .with_drops(250)
            .with_dups(150)
            .with_delays(100, 5_000)
            .with_reorders(100)
            .with_fault_budget(6);
        let (a, b) = stream_scripts();
        let (report, received) = run_faulty2(a, b, &plan, RelConfig::default()).unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(received, expected, "exactly-once, in-order delivery");
        assert_eq!(report.undelivered, 0);
        let fr = report.fault.expect("reliable run carries a report");
        assert!(fr.injected.total() > 0, "the plan actually injected faults");
        assert!(
            fr.retransmits > 0 || fr.injected.drops == 0,
            "drops force retransmissions"
        );
    }

    #[test]
    fn faulty_runs_are_reproducible() {
        let plan = FaultPlan::seeded(21)
            .with_drops(300)
            .with_dups(200)
            .with_fault_budget(8);
        let run = || {
            let (a, b) = stream_scripts();
            let (report, received) = run_faulty2(a, b, &plan, RelConfig::default()).unwrap();
            (
                received,
                report.stats.makespan(),
                report.fault.unwrap(),
                report.pair_messages,
            )
        };
        assert_eq!(run(), run(), "logical time makes faulty runs deterministic");
    }

    #[test]
    fn stalls_slow_one_processor() {
        let quiet = FaultPlan::none();
        let stalled = FaultPlan::seeded(0).with_stall(ProcId(0), 2, 1_000_000);
        let (a, b) = stream_scripts();
        let (base, _) = run_faulty2(a, b, &quiet, RelConfig::default()).unwrap();
        let (a, b) = stream_scripts();
        let (slow, received) = run_faulty2(a, b, &stalled, RelConfig::default()).unwrap();
        let expected: Vec<Vec<Word>> = (0..10).map(|i| vec![i]).collect();
        assert_eq!(received, expected);
        assert_eq!(slow.fault.unwrap().injected.stall_cycles, 1_000_000);
        assert!(
            slow.stats.makespan().0 >= base.stats.makespan().0 + 1_000_000,
            "the stall is on the critical path"
        );
    }

    #[test]
    fn black_hole_exhausts_retries_and_names_the_stream() {
        let plan = FaultPlan::seeded(0).with_black_hole(ProcId(0), ProcId(1), Tag(0));
        let cfg = RelConfig {
            rto_cycles: 500,
            max_retries: 3,
            ..RelConfig::default()
        };
        let err = run_faulty2(
            vec![Action::Send(1, 0, vec![1])],
            vec![Action::Recv(0, 0)],
            &plan,
            cfg,
        )
        .unwrap_err();
        assert_eq!(
            err,
            MachineError::RetriesExhausted {
                proc: ProcId(0),
                peer: ProcId(1),
                tag: Tag(0),
                retries: 3,
                last_acked: 0,
            }
        );
    }

    #[test]
    fn cyclic_deadlock_still_detected_under_reliability() {
        let err = run_faulty2(
            vec![Action::Recv(1, 0)],
            vec![Action::Recv(0, 0)],
            &FaultPlan::none(),
            RelConfig::default(),
        )
        .unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn self_send_surfaces_under_reliability() {
        let err = run_faulty2(
            vec![Action::Send(0, 0, vec![1])],
            vec![],
            &FaultPlan::none(),
            RelConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, MachineError::SelfSend { proc: ProcId(0) });
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::faulty_tests::stream_scripts;
    use super::tests::{Action, Scripted};
    use super::*;
    use crate::cost::CostModel;
    use crate::fault::FaultPlan;

    type Received = Vec<Vec<Word>>;

    fn run_rec2(
        a: Vec<Action>,
        b: Vec<Action>,
        plan: &FaultPlan,
        cfg: RelConfig,
        ckpt: Option<CheckpointCfg>,
    ) -> Result<(RunReport, Received, Received), MachineError> {
        let mut m = Machine::new(2, CostModel::ipsc2());
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let report = Scheduler::new().run_recoverable(&mut m, &mut ps, plan, cfg, ckpt)?;
        Ok((report, pa.received, pb.received))
    }

    fn expected_stream() -> Vec<Vec<Word>> {
        (0..10).map(|i| vec![i]).collect()
    }

    #[test]
    fn sender_crash_recovery_is_transparent() {
        let (a, b) = stream_scripts();
        let (clean, _, clean_recv) =
            run_rec2(a, b, &FaultPlan::none(), RelConfig::default(), None).unwrap();
        let plan = FaultPlan::seeded(3).with_crash(ProcId(0), 5);
        // Amortized pacing off: this test pins exact checkpoint op
        // boundaries (crash at 5 must restore from the op-4 snapshot).
        let ckpt = CheckpointCfg::every(2)
            .with_amortization(0)
            .with_reboot(5_000, std::time::Duration::from_millis(1));
        let (a, b) = stream_scripts();
        let (report, reply, received) =
            run_rec2(a, b, &plan, RelConfig::default(), Some(ckpt)).unwrap();
        assert_eq!(
            received, clean_recv,
            "recovered output == fault-free output"
        );
        assert_eq!(reply, vec![vec![99]]);
        assert_eq!(report.pair_messages, clean.pair_messages);
        assert_eq!(report.undelivered, 0);
        let rec = report.recovery.expect("checkpointed run carries a report");
        assert_eq!(rec.crashes_survived, 1);
        assert!(rec.checkpoints_taken >= 3, "{rec:?}");
        assert_eq!(rec.replayed_ops, 1, "crash at op 5, checkpoint at op 4");
        assert!(rec.recovery_cycles >= 5_000);
        assert_eq!(report.fault.unwrap().injected.crashes, 1);
    }

    #[test]
    fn receiver_crash_replays_the_lost_suffix() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(1), 0);
        let ckpt = CheckpointCfg::every(4);
        let (a, b) = stream_scripts();
        let (report, reply, received) =
            run_rec2(a, b, &plan, RelConfig::default(), Some(ckpt)).unwrap();
        assert_eq!(received, expected_stream(), "exactly-once after replay");
        assert_eq!(reply, vec![vec![99]]);
        let rec = report.recovery.unwrap();
        assert_eq!(rec.crashes_survived, 1);
    }

    #[test]
    fn recovery_is_deterministic() {
        let run = || {
            let plan = FaultPlan::seeded(11)
                .with_crash(ProcId(0), 5)
                .with_drops(100)
                .with_fault_budget(2);
            let ckpt = CheckpointCfg::every(2);
            let (a, b) = stream_scripts();
            let (report, reply, received) =
                run_rec2(a, b, &plan, RelConfig::default(), Some(ckpt)).unwrap();
            (
                received,
                reply,
                report.stats.makespan(),
                report.pair_messages,
                report.fault.unwrap(),
                report.recovery.unwrap(),
            )
        };
        assert_eq!(run(), run(), "same seed, bit-identical recovery");
    }

    #[test]
    fn coordinated_rollback_recovers_whole_machine() {
        let plan = FaultPlan::seeded(5).with_crash(ProcId(0), 5);
        let ckpt = CheckpointCfg::every(2).coordinated();
        let (a, b) = stream_scripts();
        let (report, reply, received) =
            run_rec2(a, b, &plan, RelConfig::default(), Some(ckpt)).unwrap();
        assert_eq!(received, expected_stream());
        assert_eq!(reply, vec![vec![99]]);
        let rec = report.recovery.unwrap();
        assert_eq!(rec.crashes_survived, 1);
        assert!(rec.replayed_ops >= 1, "rollback re-executes work: {rec:?}");
        assert_eq!(report.undelivered, 0);
    }

    #[test]
    fn unrecovered_receiver_crash_names_the_dead_peer() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(1), 0);
        let cfg = RelConfig {
            rto_cycles: 500,
            max_retries: 3,
            ..RelConfig::default()
        };
        let (a, b) = stream_scripts();
        let mut m = Machine::new(2, CostModel::ipsc2());
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        // Quantum 1 interleaves the processors step by step, so P1 dies
        // after consuming (and acking) exactly one message.
        let err = Scheduler::new()
            .with_quantum(1)
            .run_recoverable(&mut m, &mut ps, &plan, cfg, None)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::RetriesExhausted {
                proc: ProcId(0),
                peer: ProcId(1),
                tag: Tag(0),
                retries: 3,
                last_acked: 1,
            }
        );
    }

    #[test]
    fn unrecovered_crash_of_idle_processor_surfaces_as_crashed() {
        let plan = FaultPlan::seeded(0).with_crash(ProcId(2), 2);
        let mut m = Machine::new(3, CostModel::ipsc2());
        let mut pa = Scripted::new(vec![Action::Send(1, 0, vec![1])]);
        let mut pb = Scripted::new(vec![Action::Recv(0, 0)]);
        let mut pc = Scripted::new(vec![
            Action::Compute(5),
            Action::Compute(5),
            Action::Compute(5),
        ]);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb, &mut pc];
        let err = Scheduler::new()
            .run_recoverable(&mut m, &mut ps, &plan, RelConfig::default(), None)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::Crashed {
                proc: ProcId(2),
                at_op: 2
            }
        );
    }

    #[test]
    fn checkpointing_alone_reports_overhead() {
        let (a, b) = stream_scripts();
        let (base, _, base_recv) =
            run_rec2(a, b, &FaultPlan::none(), RelConfig::default(), None).unwrap();
        let (a, b) = stream_scripts();
        let (report, _, received) = run_rec2(
            a,
            b,
            &FaultPlan::none(),
            RelConfig::default(),
            Some(CheckpointCfg::every(2)),
        )
        .unwrap();
        assert_eq!(received, base_recv);
        assert_eq!(report.pair_messages, base.pair_messages);
        let rec = report.recovery.expect("report present without any crash");
        assert_eq!(rec.crashes_survived, 0);
        assert!(rec.checkpoints_taken >= 4, "{rec:?}");
        assert!(rec.bytes_snapshotted > 0);
        assert!(
            report.stats.makespan() >= base.stats.makespan(),
            "checkpoint cost shows up in the makespan"
        );
    }

    #[test]
    fn probabilistic_crashes_recover_within_budget() {
        let plan = FaultPlan::seeded(77).with_crash_rate(400, 2);
        let ckpt = CheckpointCfg::every(3);
        let (a, b) = stream_scripts();
        let (report, reply, received) =
            run_rec2(a, b, &plan, RelConfig::default(), Some(ckpt)).unwrap();
        assert_eq!(received, expected_stream());
        assert_eq!(reply, vec![vec![99]]);
        let rec = report.recovery.unwrap();
        assert!(rec.crashes_survived <= 2, "budget bounds crashes: {rec:?}");
        assert_eq!(rec.crashes_survived, report.fault.unwrap().injected.crashes);
    }
}
