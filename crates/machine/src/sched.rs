//! The deterministic scheduler.

use crate::error::MachineError;
use crate::fabric::{Fabric, Machine};
use crate::message::{ProcId, Tag};
use crate::stats::MachineStats;
use std::collections::BTreeMap;

/// What a process did on one scheduling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Made progress; schedule it again.
    Ran,
    /// Needs a message `(src, tag)` that is not yet available. The
    /// scheduler parks the process until the message exists.
    BlockedOnRecv {
        /// Source the process is waiting on.
        src: ProcId,
        /// Tag the process is waiting on.
        tag: Tag,
    },
    /// The process has terminated normally.
    Done,
}

/// A process that can be driven by the [`Scheduler`] (simulated backend)
/// or by [`ThreadedRunner`](crate::ThreadedRunner) (one OS thread per
/// processor).
///
/// The process is called with a view of the machine fabric and its own
/// processor id; it performs some bounded amount of work (typically one
/// instruction), charging costs via [`Fabric::tick`] / [`Fabric::send`] /
/// [`Fabric::try_recv`], and reports a [`Step`].
///
/// # Errors
///
/// Implementations report internal faults (type errors, I-structure
/// violations, …) as [`MachineError::ProcessFault`]; the scheduler aborts
/// the run on the first fault.
pub trait Process {
    /// Execute one step on processor `me`.
    fn step(&mut self, fabric: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError>;
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final statistics snapshot (clocks, traffic, per-processor counters).
    pub stats: MachineStats,
    /// Total scheduler steps executed across all processes.
    pub steps: u64,
    /// Messages left in the network after all processes finished. A clean
    /// run leaves zero; a non-zero count usually means mismatched
    /// send/receive loops in generated code.
    pub undelivered: usize,
    /// Cumulative messages sent per `(src, dst, tag)` triple over the
    /// whole run. Because FIFO order within a typed channel is exactly
    /// program order on the sender, these counts are identical across
    /// execution backends and are the key invariant the differential
    /// tests compare.
    pub pair_messages: BTreeMap<(ProcId, ProcId, Tag), u64>,
}

/// Drives a set of [`Process`]es over a [`Machine`] until all finish.
///
/// Scheduling is round-robin: each live process runs until it blocks on a
/// receive whose message has not been sent yet, terminates, or exhausts a
/// per-turn quantum. Because message *content* visible to a process depends
/// only on FIFO order within typed channels (never on global interleaving),
/// results and logical-clock times are independent of the quantum; the
/// quantum exists only to bound memory growth of in-flight traffic.
#[derive(Debug)]
pub struct Scheduler {
    quantum: u64,
    step_budget: u64,
}

impl Scheduler {
    /// A scheduler with the default quantum (4096 steps per turn) and step
    /// budget (`u64::MAX`, effectively unbounded).
    pub fn new() -> Self {
        Scheduler {
            quantum: 4096,
            step_budget: u64::MAX,
        }
    }

    /// Limit the total number of steps (guards tests against runaway
    /// generated programs).
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Set the per-turn quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        self.quantum = quantum;
        self
    }

    /// Run `processes[p]` on processor `p` until every process is done.
    ///
    /// # Errors
    ///
    /// * [`MachineError::Deadlock`] if every unfinished process is blocked
    ///   on a receive that no pending message satisfies;
    /// * [`MachineError::StepBudgetExceeded`] if the budget runs out;
    /// * any [`MachineError::ProcessFault`] raised by a process.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len() != machine.n_procs()`.
    pub fn run(
        &self,
        machine: &mut Machine,
        processes: &mut [&mut dyn Process],
    ) -> Result<RunReport, MachineError> {
        assert_eq!(
            processes.len(),
            machine.n_procs(),
            "one process per processor"
        );
        let n = processes.len();
        let mut done = vec![false; n];
        let mut blocked: Vec<Option<(ProcId, Tag)>> = vec![None; n];
        let mut steps: u64 = 0;
        loop {
            let mut progressed = false;
            for p in 0..n {
                if done[p] {
                    continue;
                }
                let me = ProcId(p);
                // Skip a parked process whose message still has not arrived.
                if let Some((src, tag)) = blocked[p] {
                    if !machine.has_pending(me, src, tag) {
                        continue;
                    }
                    blocked[p] = None;
                }
                let mut quantum = self.quantum;
                loop {
                    if steps >= self.step_budget {
                        return Err(MachineError::StepBudgetExceeded {
                            budget: self.step_budget,
                        });
                    }
                    steps += 1;
                    match processes[p].step(&mut *machine, me)? {
                        Step::Ran => {
                            progressed = true;
                            quantum -= 1;
                            if quantum == 0 {
                                break;
                            }
                        }
                        Step::BlockedOnRecv { src, tag } => {
                            if machine.has_pending(me, src, tag) {
                                // The message exists; let the process retry
                                // immediately (the recv will now succeed).
                                progressed = true;
                                continue;
                            }
                            blocked[p] = Some((src, tag));
                            break;
                        }
                        Step::Done => {
                            done[p] = true;
                            machine.finish(me);
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
            if !progressed {
                let waiting = blocked
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !done[*p])
                    .filter_map(|(p, b)| b.map(|(src, tag)| (ProcId(p), src, tag)))
                    .collect();
                return Err(MachineError::Deadlock { waiting });
            }
        }
        Ok(RunReport {
            stats: machine.stats(),
            steps,
            undelivered: machine.undelivered(),
            pair_messages: machine.pair_counts(),
        })
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    /// A toy process defined by a script of actions.
    enum Action {
        Compute(u64),
        Send(usize, u32, Vec<i64>),
        Recv(usize, u32),
    }

    struct Scripted {
        script: Vec<Action>,
        pc: usize,
        received: Vec<Vec<i64>>,
    }

    impl Scripted {
        fn new(script: Vec<Action>) -> Self {
            Scripted {
                script,
                pc: 0,
                received: Vec::new(),
            }
        }
    }

    impl Process for Scripted {
        fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
            let Some(action) = self.script.get(self.pc) else {
                return Ok(Step::Done);
            };
            match action {
                Action::Compute(c) => {
                    machine.tick(me, *c);
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Send(dst, tag, payload) => {
                    machine.send(me, ProcId(*dst), Tag(*tag), payload.clone());
                    self.pc += 1;
                    Ok(Step::Ran)
                }
                Action::Recv(src, tag) => match machine.try_recv(me, ProcId(*src), Tag(*tag)) {
                    Some(words) => {
                        self.received.push(words);
                        self.pc += 1;
                        Ok(Step::Ran)
                    }
                    None => Ok(Step::BlockedOnRecv {
                        src: ProcId(*src),
                        tag: Tag(*tag),
                    }),
                },
            }
        }
    }

    fn run2(a: Vec<Action>, b: Vec<Action>, cost: CostModel) -> (RunReport, Machine) {
        let mut m = Machine::new(2, cost);
        let mut pa = Scripted::new(a);
        let mut pb = Scripted::new(b);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let report = Scheduler::new().run(&mut m, &mut ps).expect("run ok");
        (report, m)
    }

    #[test]
    fn ping_pong_completes() {
        let (report, _) = run2(
            vec![Action::Send(1, 0, vec![1]), Action::Recv(1, 1)],
            vec![Action::Recv(0, 0), Action::Send(0, 1, vec![2])],
            CostModel::ipsc2(),
        );
        assert_eq!(report.stats.network.messages, 2);
        assert_eq!(report.undelivered, 0);
    }

    #[test]
    fn receiver_first_order_still_completes() {
        // P0 blocks on a recv whose send happens later on P1.
        let (report, _) = run2(
            vec![Action::Recv(1, 0)],
            vec![Action::Compute(50), Action::Send(0, 0, vec![9])],
            CostModel::ipsc2(),
        );
        assert_eq!(report.stats.network.messages, 1);
    }

    #[test]
    fn cross_deadlock_detected() {
        let mut m = Machine::new(2, CostModel::zero());
        let mut pa = Scripted::new(vec![Action::Recv(1, 0)]);
        let mut pb = Scripted::new(vec![Action::Recv(0, 0)]);
        let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
        let err = Scheduler::new().run(&mut m, &mut ps).unwrap_err();
        match err {
            MachineError::Deadlock { waiting } => assert_eq!(waiting.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn makespan_reflects_critical_path() {
        let c = CostModel::ipsc2();
        let (report, _) = run2(
            vec![Action::Compute(500), Action::Send(1, 0, vec![1])],
            vec![Action::Recv(0, 0), Action::Compute(100)],
            c,
        );
        // Critical path: 500 compute + send + flight + recv + 100 compute.
        let expected = 500 + c.send_cost(1) + c.flight + c.recv_cost(1) + 100;
        assert_eq!(report.stats.makespan().0, expected);
    }

    #[test]
    fn step_budget_guards_runaway() {
        struct Forever;
        impl Process for Forever {
            fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
                machine.tick(me, 1);
                Ok(Step::Ran)
            }
        }
        let mut m = Machine::new(1, CostModel::zero());
        let mut fv = Forever;
        let mut ps: Vec<&mut dyn Process> = vec![&mut fv];
        let err = Scheduler::new()
            .with_step_budget(1000)
            .run(&mut m, &mut ps)
            .unwrap_err();
        assert!(matches!(err, MachineError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn quantum_does_not_change_results() {
        let build = || {
            (
                vec![
                    Action::Compute(10),
                    Action::Send(1, 0, vec![1, 2]),
                    Action::Recv(1, 1),
                    Action::Compute(5),
                ],
                vec![
                    Action::Recv(0, 0),
                    Action::Compute(7),
                    Action::Send(0, 1, vec![3]),
                ],
            )
        };
        let mut results = Vec::new();
        for quantum in [1, 2, 3, 1000] {
            let (a, b) = build();
            let mut m = Machine::new(2, CostModel::ipsc2());
            let mut pa = Scripted::new(a);
            let mut pb = Scripted::new(b);
            let mut ps: Vec<&mut dyn Process> = vec![&mut pa, &mut pb];
            let report = Scheduler::new()
                .with_quantum(quantum)
                .run(&mut m, &mut ps)
                .unwrap();
            results.push((report.stats.makespan(), report.stats.network));
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
