//! Chrome trace-event JSON export of a [`Trace`], loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The format is the "JSON Object Format" of the Trace Event spec: a
//! top-level object with a `traceEvents` array. We emit
//!
//! * one metadata (`"ph":"M"`) `thread_name` event per processor, so each
//!   processor gets its own named track;
//! * complete (`"ph":"X"`) slices for every busy or blocked interval —
//!   `compute`, `send`, `recv`, and a separate `blocked` slice covering
//!   the `waited` portion of a receive, plus `frame lost` under fault
//!   injection;
//! * flow events (`"ph":"s"` / `"ph":"f"`) connecting each send to the
//!   receive that consumed it, using the FIFO-per-(src,dst,tag)
//!   discipline the fabric guarantees: the k-th send on a triple matches
//!   the k-th receive. Unmatched sends (undelivered messages) get no
//!   flow arrow, so every flow-end always has a flow-begin;
//! * instant (`"ph":"i"`) marks for protocol events (retransmit, ack)
//!   and process completion;
//! * counter (`"ph":"C"`) tracks when a [`MetricsSnapshot`] is supplied
//!   to [`chrome_trace_with_metrics`]: a cumulative per-processor
//!   retransmit series (one sample per retransmission) and a
//!   ring-occupancy summary (mean/max words queued) per processor, so
//!   Perfetto shows protocol pressure alongside the slices.
//!
//! Timestamps are logical-clock *cycles* reported as microseconds (the
//! unit Perfetto assumes for `ts`/`dur`); absolute units are meaningless
//! for a logical clock, so the scale is irrelevant — only ratios matter.
//!
//! The workspace is dependency-free, so both the writer and the
//! validating reader ([`validate_chrome_trace`], used by tests and the
//! `trace_export` bench bin) are hand-rolled here rather than pulling in
//! serde.

use crate::message::ProcId;
use crate::trace::{Event, EventKind, Trace};
use pdc_metrics::MetricsSnapshot;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One complete ("X") slice.
fn slice(out: &mut Vec<String>, name: &str, proc: ProcId, ts: u64, dur: u64, args: &str) {
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}{}}}",
        esc(name),
        proc.0,
        ts,
        dur,
        args
    ));
}

/// One instant ("i") mark, thread-scoped.
fn instant(out: &mut Vec<String>, name: &str, proc: ProcId, ts: u64, args: &str) {
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}{}}}",
        esc(name),
        proc.0,
        ts,
        args
    ));
}

/// Serialize `trace` as Chrome trace-event JSON. `n_procs` names one
/// track per processor even if some recorded nothing.
///
/// The trace should be final (flushed) — [`RunReport`](crate::RunReport)
/// traces are. Events are emitted in interval-start order per track so
/// `ts` is non-decreasing within each `(pid, tid)`, which Perfetto's
/// importer expects. If events overflowed the trace cap, the drop count
/// is surfaced in the top-level `otherData` object.
pub fn chrome_trace(trace: &Trace, n_procs: usize) -> String {
    chrome_trace_with_metrics(trace, n_procs, None)
}

/// [`chrome_trace`] plus counter (`"ph":"C"`) tracks derived from a
/// [`MetricsSnapshot`]: a cumulative retransmit series per processor
/// (sampled at each `Retransmit` trace event, so the slope shows
/// retransmission bursts) and a per-processor ring-occupancy summary
/// (mean and max words queued, from the enqueue-time histogram —
/// individual samples carry no timestamps, so the summary is emitted as
/// one flat band across the run). With `metrics: None` the output is
/// identical to [`chrome_trace`].
pub fn chrome_trace_with_metrics(
    trace: &Trace,
    n_procs: usize,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut events: Vec<String> = Vec::with_capacity(trace.len() * 2 + n_procs);
    for p in 0..n_procs {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
             \"args\":{{\"name\":\"P{p}\"}}}}"
        ));
    }

    // FIFO matching per (src, dst, tag): the k-th send on a triple pairs
    // with the k-th receive. Collect send completion times in record
    // order first — a blocked receiver's interval can *start* before its
    // matching send does, so matching cannot ride the start-sorted pass.
    let mut send_counter: HashMap<(usize, usize, u32), u64> = HashMap::new();
    let mut send_at: HashMap<(usize, usize, u32, u64), u64> = HashMap::new();
    for e in trace.events() {
        if let EventKind::Send { dst, tag, .. } = e.kind {
            let key = (e.proc.0, dst.0, tag.0);
            let k = send_counter.entry(key).or_insert(0);
            send_at.insert((key.0, key.1, key.2, *k), e.at.0);
            *k += 1;
        }
    }

    // Sort by interval start (stable on seq) so each track's X slices
    // come out with non-decreasing ts. Per-processor intervals tile the
    // timeline, so start order == record order per track; the global
    // interleave only affects cross-track ordering, which is free.
    let mut evs: Vec<&Event> = trace.events().collect();
    evs.sort_by_key(|e| (e.start().0, e.seq));

    let mut recv_counter: HashMap<(usize, usize, u32), u64> = HashMap::new();
    let mut flows: Vec<String> = Vec::new();
    let mut next_flow_id: u64 = 0;
    let mut retrans_cum: HashMap<usize, u64> = HashMap::new();
    let mut last_ts: u64 = 0;

    for e in &evs {
        let ts = e.start().0;
        last_ts = last_ts.max(e.at.0);
        match e.kind {
            EventKind::Compute { cycles } => {
                slice(&mut events, "compute", e.proc, ts, cycles, "");
            }
            EventKind::Send {
                dst,
                tag,
                words,
                cost,
            } => {
                let args = format!(
                    ",\"args\":{{\"dst\":{},\"tag\":{},\"words\":{}}}",
                    dst.0, tag.0, words
                );
                slice(&mut events, "send", e.proc, ts, cost, &args);
            }
            EventKind::Recv {
                src,
                tag,
                words,
                waited,
                cost,
            } => {
                let args = format!(
                    ",\"args\":{{\"src\":{},\"tag\":{},\"words\":{}}}",
                    src.0, tag.0, words
                );
                if waited > 0 {
                    slice(&mut events, "blocked", e.proc, ts, waited, &args);
                }
                let unpack_ts = e.at.0.saturating_sub(cost);
                slice(&mut events, "recv", e.proc, unpack_ts, cost, &args);
                // Flow arrow from the matching send's completion to the
                // start of this unpack. Skip if the send fell outside the
                // trace (bounded cap) — an end without a begin is invalid.
                let key = (src.0, e.proc.0, tag.0);
                let k = recv_counter.entry(key).or_insert(0);
                if let Some(&sent) = send_at.get(&(key.0, key.1, key.2, *k)) {
                    let id = next_flow_id;
                    next_flow_id += 1;
                    flows.push(format!(
                        "{{\"name\":\"msg\",\"ph\":\"s\",\"cat\":\"msg\",\"id\":{},\
                         \"pid\":0,\"tid\":{},\"ts\":{}}}",
                        id, src.0, sent
                    ));
                    flows.push(format!(
                        "{{\"name\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"msg\",\
                         \"id\":{},\"pid\":0,\"tid\":{},\"ts\":{}}}",
                        id, e.proc.0, unpack_ts
                    ));
                }
                *k += 1;
            }
            EventKind::FrameLost {
                dst,
                tag,
                words,
                cost,
            } => {
                let args = format!(
                    ",\"args\":{{\"dst\":{},\"tag\":{},\"words\":{}}}",
                    dst.0, tag.0, words
                );
                slice(&mut events, "frame lost", e.proc, ts, cost, &args);
            }
            EventKind::Retransmit { dst, tag, seq } => {
                let args = format!(
                    ",\"args\":{{\"dst\":{},\"tag\":{},\"seq\":{}}}",
                    dst.0, tag.0, seq
                );
                instant(&mut events, "retransmit", e.proc, e.at.0, &args);
                if metrics.is_some() {
                    let cum = retrans_cum.entry(e.proc.0).or_insert(0);
                    *cum += 1;
                    events.push(format!(
                        "{{\"name\":\"retransmits\",\"ph\":\"C\",\"pid\":0,\"tid\":{},\
                         \"ts\":{},\"args\":{{\"cumulative\":{}}}}}",
                        e.proc.0, e.at.0, cum
                    ));
                }
            }
            EventKind::Ack { peer, tag, cum } => {
                let args = format!(
                    ",\"args\":{{\"peer\":{},\"tag\":{},\"cum\":{}}}",
                    peer.0, tag.0, cum
                );
                instant(&mut events, "ack", e.proc, e.at.0, &args);
            }
            EventKind::CheckpointTaken { at_op, bytes } => {
                let args = format!(",\"args\":{{\"at_op\":{at_op},\"bytes\":{bytes}}}");
                instant(&mut events, "checkpoint", e.proc, e.at.0, &args);
            }
            EventKind::Crash { at_op } => {
                let args = format!(",\"args\":{{\"at_op\":{at_op}}}");
                instant(&mut events, "crash", e.proc, e.at.0, &args);
            }
            EventKind::Restore { from_op, replayed } => {
                let args = format!(",\"args\":{{\"from_op\":{from_op},\"replayed\":{replayed}}}");
                instant(&mut events, "restore", e.proc, e.at.0, &args);
            }
            EventKind::ReplayedFrame { dst, tag, seq } => {
                let args = format!(
                    ",\"args\":{{\"dst\":{},\"tag\":{},\"seq\":{}}}",
                    dst.0, tag.0, seq
                );
                instant(&mut events, "replayed frame", e.proc, e.at.0, &args);
            }
            EventKind::Finish => {
                instant(&mut events, "finish", e.proc, e.at.0, "");
            }
        }
    }
    events.extend(flows);

    // Ring-occupancy summary band: the enqueue-time histogram has no
    // per-sample timestamps, so the per-processor mean and max are
    // emitted as one counter sample at the start and end of the run.
    if let Some(snap) = metrics {
        for (p, pm) in snap.procs.iter().enumerate().take(n_procs) {
            let h = &pm.ring_occupancy;
            if h.count == 0 {
                continue;
            }
            let mean = h.sum / h.count;
            for ts in [0, last_ts] {
                events.push(format!(
                    "{{\"name\":\"ring occupancy (words)\",\"ph\":\"C\",\"pid\":0,\
                     \"tid\":{p},\"ts\":{ts},\"args\":{{\"mean\":{mean},\"max\":{}}}}}",
                    h.max
                ));
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ns\",\"otherData\":{");
    let _ = write!(
        out,
        "\"droppedEvents\":{},\"source\":\"pdc-machine\"}}}}",
        trace.dropped()
    );
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader — enough to validate our own exporter output in
// tests and CI without a serde dependency.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — fine for cycle counts < 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion order not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The f64 value of a number; `None` otherwise.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements; `None` otherwise.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, val: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{s}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary of a validated Chrome trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChromeStats {
    /// Complete ("X") slices.
    pub slices: usize,
    /// Flow begin/end pairs.
    pub flows: usize,
    /// Instant marks.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
    /// Named tracks (metadata events).
    pub tracks: usize,
    /// Dropped-event count from `otherData`.
    pub dropped: u64,
}

/// Structurally validate exporter output: the document parses, has a
/// `traceEvents` array, every `X` slice's `ts` is non-decreasing within
/// its `(pid, tid)` track, and every flow-end (`ph:"f"`) has a
/// flow-begin (`ph:"s"`) with the same id. Returns counts on success.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeStats, String> {
    let doc = parse_json(json)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeStats::default();
    if let Some(d) = doc
        .get("otherData")
        .and_then(|o| o.get("droppedEvents"))
        .and_then(Json::as_num)
    {
        stats.dropped = d as u64;
    }
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut flow_begins: Vec<f64> = Vec::new();
    let mut flow_ends: Vec<f64> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "X" => {
                let pid = e.get("pid").and_then(Json::as_num).unwrap_or(0.0) as u64;
                let tid = e
                    .get("tid")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: X slice missing tid"))?
                    as u64;
                let ts = e
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: X slice missing ts"))?;
                e.get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: X slice missing dur"))?;
                if let Some(&prev) = last_ts.get(&(pid, tid)) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: ts {ts} < {prev} on track ({pid},{tid}) — not monotonic"
                        ));
                    }
                }
                last_ts.insert((pid, tid), ts);
                stats.slices += 1;
            }
            "s" => {
                let id = e
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: flow-begin missing id"))?;
                flow_begins.push(id);
            }
            "f" => {
                let id = e
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: flow-end missing id"))?;
                flow_ends.push(id);
            }
            "i" => stats.instants += 1,
            "C" => {
                e.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: counter missing ts"))?;
                match e.get("args") {
                    Some(Json::Obj(m)) if !m.is_empty() => {}
                    _ => return Err(format!("event {i}: counter needs non-empty args")),
                }
                stats.counters += 1;
            }
            "M" => stats.tracks += 1,
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for id in &flow_ends {
        if !flow_begins.contains(id) {
            return Err(format!("flow-end id {id} has no flow-begin"));
        }
    }
    if flow_begins.len() != flow_ends.len() {
        return Err(format!(
            "{} flow-begins vs {} flow-ends",
            flow_begins.len(),
            flow_ends.len()
        ));
    }
    stats.flows = flow_ends.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ProcId, Tag, Time};

    fn chain_trace() -> Trace {
        // P0: compute 500, send (cost 10) at 510.
        // P1: recv at 560 (waited 30, cost 20), compute 100 -> 660, finish.
        let mut t = Trace::bounded(64);
        t.record_compute(ProcId(0), Time(0), Time(500));
        t.record(
            ProcId(0),
            Time(510),
            EventKind::Send {
                dst: ProcId(1),
                tag: Tag(3),
                words: 4,
                cost: 10,
            },
        );
        t.record(ProcId(0), Time(510), EventKind::Finish);
        t.record(
            ProcId(1),
            Time(560),
            EventKind::Recv {
                src: ProcId(0),
                tag: Tag(3),
                words: 4,
                waited: 30,
                cost: 20,
            },
        );
        t.record_compute(ProcId(1), Time(560), Time(660));
        t.record(ProcId(1), Time(660), EventKind::Finish);
        t.flush();
        t
    }

    #[test]
    fn golden_chrome_trace_round_trips() {
        let t = chain_trace();
        let json = chrome_trace(&t, 2);
        let stats = validate_chrome_trace(&json).expect("exporter output validates");
        // compute, send / blocked, recv, compute = 5 slices.
        assert_eq!(stats.slices, 5);
        assert_eq!(stats.flows, 1, "one send→recv edge");
        assert_eq!(stats.instants, 2, "two finish marks");
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn metrics_counters_round_trip() {
        let mut t = Trace::bounded(64);
        for at in [100, 200] {
            t.record(
                ProcId(0),
                Time(at),
                EventKind::Retransmit {
                    dst: ProcId(1),
                    tag: Tag(0),
                    seq: 1,
                },
            );
        }
        t.flush();
        let reg = pdc_metrics::MetricsRegistry::new(2);
        reg.ring_depth(0, 8);
        reg.ring_depth(0, 16);
        let snap = reg.snapshot();
        let json = chrome_trace_with_metrics(&t, 2, Some(&snap));
        let stats = validate_chrome_trace(&json).expect("counter output validates");
        // Two retransmit samples + occupancy band (start + end) on P0.
        assert_eq!(stats.counters, 4);
        assert!(json.contains("\"cumulative\":2"), "{json}");
        assert!(json.contains("\"mean\":12,\"max\":16"), "{json}");
        // Without a snapshot the output is byte-identical to the plain
        // exporter.
        assert_eq!(chrome_trace(&t, 2), chrome_trace_with_metrics(&t, 2, None));
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v =
            parse_json(r#"{"a":[1,2.5,-3],"s":"x\"\nA","b":true,"n":null}"#).expect("valid JSON");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\"\nA"));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn monotonicity_violation_is_caught() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":100,"dur":5},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":50,"dur":5}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("not monotonic"), "{err}");
    }

    #[test]
    fn dangling_flow_end_is_caught() {
        let bad = r#"{"traceEvents":[
            {"name":"msg","ph":"f","bp":"e","id":7,"pid":0,"tid":1,"ts":10}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("no flow-begin"), "{err}");
    }

    #[test]
    fn unmatched_send_emits_no_flow() {
        // A send whose receive fell off the trace: no flow arrow at all.
        let mut t = Trace::bounded(8);
        t.record(
            ProcId(0),
            Time(10),
            EventKind::Send {
                dst: ProcId(1),
                tag: Tag(0),
                words: 1,
                cost: 2,
            },
        );
        t.flush();
        let stats = validate_chrome_trace(&chrome_trace(&t, 2)).expect("validates");
        assert_eq!(stats.flows, 0);
        assert_eq!(stats.slices, 1);
    }

    #[test]
    fn dropped_events_surface_in_other_data() {
        let mut t = Trace::bounded(1);
        for i in 0..3 {
            t.record(ProcId(0), Time(i), EventKind::Finish);
        }
        let stats = validate_chrome_trace(&chrome_trace(&t, 1)).expect("validates");
        assert_eq!(stats.dropped, 2);
    }
}
