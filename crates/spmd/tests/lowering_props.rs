//! Property test: lowering is semantics-preserving. A random expression
//! evaluated directly over the tree IR gives the same value as running
//! the lowered bytecode on the VM. (Deterministic `pdc-testkit` cases;
//! a failing case prints its seed for replay.)

use pdc_machine::{CostModel, Machine, ProcId, Process, Step};
use pdc_spmd::ir::{SBinOp, SExpr, SStmt, SUnOp};
use pdc_spmd::lower::lower;
use pdc_spmd::vm::ProcVm;
use pdc_spmd::Scalar;
use pdc_testkit::{cases, Rng};
use std::sync::Arc;

fn leaf(rng: &mut Rng) -> SExpr {
    match rng.range_usize(0, 5) {
        0 => SExpr::Int(rng.range_i64(-50, 50)),
        1 => SExpr::var("x"),
        2 => SExpr::var("y"),
        3 => SExpr::MyNode,
        _ => SExpr::NProcs,
    }
}

fn arith(rng: &mut Rng) -> SBinOp {
    *rng.pick(&[
        SBinOp::Add,
        SBinOp::Sub,
        SBinOp::Mul,
        SBinOp::FloorDiv,
        SBinOp::Mod,
        SBinOp::Min,
        SBinOp::Max,
    ])
}

fn expr(rng: &mut Rng, depth: usize) -> SExpr {
    if depth == 0 || rng.chance(1, 3) {
        return leaf(rng);
    }
    if rng.chance(2, 3) {
        SExpr::Bin(
            arith(rng),
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        )
    } else {
        SExpr::Un(SUnOp::Neg, Box::new(expr(rng, depth - 1)))
    }
}

/// Direct reference evaluation over the tree.
fn eval(e: &SExpr, x: i64, y: i64, me: i64, nprocs: i64) -> Option<i64> {
    Some(match e {
        SExpr::Int(v) => *v,
        SExpr::Var(v) if v == "x" => x,
        SExpr::Var(v) if v == "y" => y,
        SExpr::MyNode => me,
        SExpr::NProcs => nprocs,
        SExpr::Un(SUnOp::Neg, a) => -eval(a, x, y, me, nprocs)?,
        SExpr::Bin(op, a, b) => {
            let (l, r) = (eval(a, x, y, me, nprocs)?, eval(b, x, y, me, nprocs)?);
            match op {
                SBinOp::Add => l.checked_add(r)?,
                SBinOp::Sub => l.checked_sub(r)?,
                SBinOp::Mul => l.checked_mul(r)?,
                SBinOp::FloorDiv => {
                    if r == 0 {
                        return None;
                    }
                    l.div_euclid(r)
                }
                SBinOp::Mod => {
                    if r == 0 {
                        return None;
                    }
                    l.rem_euclid(r)
                }
                SBinOp::Min => l.min(r),
                SBinOp::Max => l.max(r),
                _ => return None,
            }
        }
        _ => return None,
    })
}

/// Run a single-processor program to completion; return `result`.
fn run_vm(body: Vec<SStmt>) -> Result<Option<Scalar>, String> {
    let code = Arc::new(lower(&body).map_err(|e| e.to_string())?);
    let mut vm = ProcVm::new(code);
    let mut machine = Machine::new(3, CostModel::zero());
    for _ in 0..100_000 {
        match vm.step(&mut machine, ProcId(1)) {
            Ok(Step::Done) => return Ok(vm.var("result")),
            Ok(Step::Ran) => {}
            Ok(Step::BlockedOnRecv { .. }) => return Err("unexpected block".into()),
            Err(e) => return Err(e.to_string()),
        }
    }
    Err("did not terminate".into())
}

#[test]
fn lowered_expressions_match_reference_eval() {
    cases(256, "lowered_expressions_match_reference_eval", |rng| {
        let e = expr(rng, 4);
        let x = rng.range_i64(-20, 20);
        let y = rng.range_i64(-20, 20);
        let body = vec![
            SStmt::Let {
                var: "x".into(),
                value: SExpr::Int(x),
            },
            SStmt::Let {
                var: "y".into(),
                value: SExpr::Int(y),
            },
            SStmt::Let {
                var: "result".into(),
                value: e.clone(),
            },
        ];
        // me = 1, nprocs = 3 per run_vm.
        match (eval(&e, x, y, 1, 3), run_vm(body)) {
            (Some(want), Ok(Some(Scalar::Int(got)))) => assert_eq!(got, want),
            // Reference says the expression faults (division by zero or
            // overflow): the VM must fault too, not produce a value.
            (None, Err(_)) => {}
            (None, Ok(_)) => panic!("VM succeeded where reference faults"),
            (Some(_), Err(e)) => panic!("VM failed: {e}"),
            other => panic!("mismatch: {other:?}"),
        }
    });
}

/// Loops: summing f(i) via the VM equals direct summation.
#[test]
fn lowered_loops_accumulate_correctly() {
    cases(256, "lowered_loops_accumulate_correctly", |rng| {
        let lo = rng.range_i64(-5, 5);
        let len = rng.range_i64(0, 12);
        let step = rng.range_i64(1, 4);
        let k = rng.range_i64(-5, 6);
        let hi = lo + len;
        let body = vec![
            SStmt::Let {
                var: "result".into(),
                value: SExpr::Int(0),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::Int(lo),
                hi: SExpr::Int(hi),
                step: SExpr::Int(step),
                body: vec![SStmt::Let {
                    var: "result".into(),
                    value: SExpr::var("result").add(SExpr::var("i").mul(SExpr::Int(k))),
                }],
            },
        ];
        let mut want = 0i64;
        let mut i = lo;
        while i <= hi {
            want += i * k;
            i += step;
        }
        let got = run_vm(body).expect("runs");
        assert_eq!(got, Some(Scalar::Int(want)));
    });
}

/// Conditionals take the right branch.
#[test]
fn lowered_branches_select_correctly() {
    cases(256, "lowered_branches_select_correctly", |rng| {
        let a = rng.range_i64(-10, 10);
        let b = rng.range_i64(-10, 10);
        let body = vec![SStmt::If {
            cond: SExpr::Int(a).lt(SExpr::Int(b)),
            then: vec![SStmt::Let {
                var: "result".into(),
                value: SExpr::Int(1),
            }],
            els: vec![SStmt::Let {
                var: "result".into(),
                value: SExpr::Int(0),
            }],
        }];
        let got = run_vm(body).expect("runs");
        assert_eq!(got, Some(Scalar::Int(i64::from(a < b))));
    });
}
