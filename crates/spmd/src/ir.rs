//! The tree-structured SPMD intermediate representation.
//!
//! One [`SpmdProgram`] holds one statement list per processor (the paper's
//! compile-time resolution specializes code per processor; run-time
//! resolution gives every processor the same list). Unlike the source
//! language, the target is imperative: locals are mutable, buffers are
//! ordinary arrays, and communication is explicit.

use pdc_mapping::Dist;
use std::fmt;

/// Binary operators of the target language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float on floats, Euclidean on ints).
    Div,
    /// Euclidean integer division (`div`).
    FloorDiv,
    /// Euclidean remainder (`mod`).
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Conjunction (strict).
    And,
    /// Disjunction (strict).
    Or,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl fmt::Display for SBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SBinOp::Add => "+",
            SBinOp::Sub => "-",
            SBinOp::Mul => "*",
            SBinOp::Div => "/",
            SBinOp::FloorDiv => "div",
            SBinOp::Mod => "mod",
            SBinOp::Eq => "==",
            SBinOp::Ne => "!=",
            SBinOp::Lt => "<",
            SBinOp::Le => "<=",
            SBinOp::Gt => ">",
            SBinOp::Ge => ">=",
            SBinOp::And => "and",
            SBinOp::Or => "or",
            SBinOp::Min => "min",
            SBinOp::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SUnOp {
    /// Negation.
    Neg,
    /// Boolean not.
    Not,
}

/// Target expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
    /// Local variable.
    Var(String),
    /// Binary operation.
    Bin(SBinOp, Box<SExpr>, Box<SExpr>),
    /// Unary operation.
    Un(SUnOp, Box<SExpr>),
    /// `mynode()` — the executing processor's id.
    MyNode,
    /// Number of processors.
    NProcs,
    /// `is_read` with **local** indices into this processor's segment.
    ARead {
        /// Array name.
        array: String,
        /// Local indices (1-based).
        idx: Vec<SExpr>,
    },
    /// `is_read` with **global** indices: the VM applies the array's Local
    /// function at run time. Run-time resolution emits these.
    AReadGlobal {
        /// Array name.
        array: String,
        /// Global indices (1-based).
        idx: Vec<SExpr>,
    },
    /// The Map function: owner processor of a global element.
    OwnerOf {
        /// Array name.
        array: String,
        /// Global indices (1-based).
        idx: Vec<SExpr>,
    },
    /// One component of the Local function applied to global indices
    /// (`dim` 0 = row, 1 = column).
    LocalOf {
        /// Array name.
        array: String,
        /// Global indices (1-based).
        idx: Vec<SExpr>,
        /// Which local coordinate to produce.
        dim: usize,
    },
    /// Read from a plain (non-I-structure) local buffer.
    BufRead {
        /// Buffer name.
        buf: String,
        /// Zero-based index.
        idx: Box<SExpr>,
    },
}

#[allow(clippy::should_implement_trait)]
impl SExpr {
    /// Integer literal.
    pub fn int(v: i64) -> SExpr {
        SExpr::Int(v)
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> SExpr {
        SExpr::Var(name.into())
    }

    /// `mynode()`.
    pub fn my_node() -> SExpr {
        SExpr::MyNode
    }

    /// `self + rhs`.
    pub fn add(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self mod rhs`.
    pub fn imod(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Mod, Box::new(self), Box::new(rhs))
    }

    /// `self div rhs`.
    pub fn idiv(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::FloorDiv, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self or rhs`.
    pub fn or(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `self and rhs`.
    pub fn and(self, rhs: SExpr) -> SExpr {
        SExpr::Bin(SBinOp::And, Box::new(self), Box::new(rhs))
    }
}

/// Where a received value lands.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvTarget {
    /// A local variable.
    Var(String),
    /// A slot of a plain buffer (zero-based index).
    Buf {
        /// Buffer name.
        buf: String,
        /// Zero-based index expression.
        idx: SExpr,
    },
}

/// Target statements.
#[derive(Debug, Clone, PartialEq)]
pub enum SStmt {
    /// Assign a local variable (created on first assignment; mutable —
    /// the target language is imperative like the appendix C code).
    Let {
        /// Variable name.
        var: String,
        /// Value.
        value: SExpr,
    },
    /// Allocate the local segment of a distributed I-structure with the
    /// given **global** extents. Every processor executes this (the
    /// paper's `column_alloc`).
    AllocDist {
        /// Array name (global; used for gather and owner queries).
        array: String,
        /// Global rows.
        rows: SExpr,
        /// Global cols.
        cols: SExpr,
        /// Distribution across the machine.
        dist: Dist,
    },
    /// Allocate a plain local buffer of the given length (the appendix's
    /// `calloc`). Contents start as `Int(0)` and may be overwritten freely.
    AllocBuf {
        /// Buffer name.
        buf: String,
        /// Length.
        len: SExpr,
    },
    /// `is_write` with **local** indices.
    AWrite {
        /// Array name.
        array: String,
        /// Local indices (1-based).
        idx: Vec<SExpr>,
        /// Value to define.
        value: SExpr,
    },
    /// `is_write` with **global** indices (run-time resolution).
    AWriteGlobal {
        /// Array name.
        array: String,
        /// Global indices (1-based).
        idx: Vec<SExpr>,
        /// Value to define.
        value: SExpr,
    },
    /// Store into a plain buffer.
    BufWrite {
        /// Buffer name.
        buf: String,
        /// Zero-based index.
        idx: SExpr,
        /// Value.
        value: SExpr,
    },
    /// Asynchronous typed send of scalar values (`csend`).
    Send {
        /// Destination processor.
        to: SExpr,
        /// Message tag.
        tag: u32,
        /// Values (evaluated left to right).
        values: Vec<SExpr>,
    },
    /// Blocking typed receive (`crecv`).
    Recv {
        /// Source processor.
        from: SExpr,
        /// Message tag.
        tag: u32,
        /// Destinations, one per value in the message.
        into: Vec<RecvTarget>,
    },
    /// Send a contiguous slice `buf[lo..=hi]` as one message (the
    /// vectorized send of Appendix A.2).
    SendBuf {
        /// Destination processor.
        to: SExpr,
        /// Message tag.
        tag: u32,
        /// Buffer name.
        buf: String,
        /// First index (zero-based, inclusive).
        lo: SExpr,
        /// Last index (zero-based, inclusive).
        hi: SExpr,
    },
    /// Receive one message into `buf[lo..]`; the message length must equal
    /// `hi - lo + 1`.
    RecvBuf {
        /// Source processor.
        from: SExpr,
        /// Message tag.
        tag: u32,
        /// Buffer name.
        buf: String,
        /// First index (zero-based, inclusive).
        lo: SExpr,
        /// Last index (zero-based, inclusive).
        hi: SExpr,
    },
    /// Counted loop, inclusive bounds.
    For {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lo: SExpr,
        /// Upper bound (inclusive).
        hi: SExpr,
        /// Step (must evaluate non-zero).
        step: SExpr,
        /// Body.
        body: Vec<SStmt>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: SExpr,
        /// Then branch.
        then: Vec<SStmt>,
        /// Else branch.
        els: Vec<SStmt>,
    },
    /// No-op annotation preserved by lowering (for readable codegen).
    Comment(String),
}

/// A complete SPMD program: one statement list per processor.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdProgram {
    per_proc: Vec<Vec<SStmt>>,
}

impl SpmdProgram {
    /// A program with per-processor bodies.
    ///
    /// # Panics
    ///
    /// Panics if `per_proc` is empty.
    pub fn new(per_proc: Vec<Vec<SStmt>>) -> Self {
        assert!(!per_proc.is_empty(), "need at least one processor");
        SpmdProgram { per_proc }
    }

    /// The same body on every one of `n` processors (classic SPMD; the
    /// body dispatches on [`SExpr::MyNode`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize, body: Vec<SStmt>) -> Self {
        assert!(n > 0, "need at least one processor");
        SpmdProgram {
            per_proc: vec![body; n],
        }
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// The body for processor `p`.
    pub fn body(&self, p: usize) -> &[SStmt] {
        &self.per_proc[p]
    }

    /// Mutable access for optimization passes.
    pub fn body_mut(&mut self, p: usize) -> &mut Vec<SStmt> {
        &mut self.per_proc[p]
    }

    /// Iterate over all bodies.
    pub fn bodies(&self) -> impl Iterator<Item = &Vec<SStmt>> {
        self.per_proc.iter()
    }

    /// Mutable iteration for optimization passes applied uniformly.
    pub fn bodies_mut(&mut self) -> impl Iterator<Item = &mut Vec<SStmt>> {
        self.per_proc.iter_mut()
    }

    /// Total statement count (all processors, nested included) — a rough
    /// code-size metric used in tests and reports.
    pub fn stmt_count(&self) -> usize {
        fn count(body: &[SStmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    SStmt::For { body, .. } => 1 + count(body),
                    SStmt::If { then, els, .. } => 1 + count(then) + count(els),
                    _ => 1,
                })
                .sum()
        }
        self.per_proc.iter().map(|b| count(b)).sum()
    }
}

mod pretty {
    use super::*;
    use std::fmt::Write as _;

    pub(super) fn expr(e: &SExpr) -> String {
        match e {
            SExpr::Int(v) => v.to_string(),
            SExpr::Float(v) => format!("{v:?}"),
            SExpr::Bool(v) => v.to_string(),
            SExpr::Var(n) => n.clone(),
            SExpr::Bin(op, a, b) => match op {
                SBinOp::Min | SBinOp::Max => format!("{op}({}, {})", expr(a), expr(b)),
                _ => format!("({} {op} {})", expr(a), expr(b)),
            },
            SExpr::Un(SUnOp::Neg, a) => format!("(-{})", expr(a)),
            SExpr::Un(SUnOp::Not, a) => format!("(not {})", expr(a)),
            SExpr::MyNode => "mynode()".into(),
            SExpr::NProcs => "nprocs()".into(),
            SExpr::ARead { array, idx } => format!("is_read({array}, [{}])", idx_list(idx)),
            SExpr::AReadGlobal { array, idx } => {
                format!("is_read_global({array}, [{}])", idx_list(idx))
            }
            SExpr::OwnerOf { array, idx } => format!("owner({array}, [{}])", idx_list(idx)),
            SExpr::LocalOf { array, idx, dim } => {
                format!("local{dim}({array}, [{}])", idx_list(idx))
            }
            SExpr::BufRead { buf, idx } => format!("{buf}[{}]", expr(idx)),
        }
    }

    fn idx_list(idx: &[SExpr]) -> String {
        idx.iter().map(expr).collect::<Vec<_>>().join(", ")
    }

    pub(super) fn stmts(out: &mut String, body: &[SStmt], level: usize) {
        for s in body {
            stmt(out, s, level);
        }
    }

    fn indent(out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
    }

    fn stmt(out: &mut String, s: &SStmt, level: usize) {
        indent(out, level);
        match s {
            SStmt::Let { var, value } => {
                let _ = writeln!(out, "{var} = {};", expr(value));
            }
            SStmt::AllocDist {
                array,
                rows,
                cols,
                dist,
            } => {
                let _ = writeln!(
                    out,
                    "{array} = dist_alloc({}, {}) /* {dist} */;",
                    expr(rows),
                    expr(cols)
                );
            }
            SStmt::AllocBuf { buf, len } => {
                let _ = writeln!(out, "{buf} = calloc({});", expr(len));
            }
            SStmt::AWrite { array, idx, value } => {
                let _ = writeln!(
                    out,
                    "is_write({array}, [{}], {});",
                    idx_list(idx),
                    expr(value)
                );
            }
            SStmt::AWriteGlobal { array, idx, value } => {
                let _ = writeln!(
                    out,
                    "is_write_global({array}, [{}], {});",
                    idx_list(idx),
                    expr(value)
                );
            }
            SStmt::BufWrite { buf, idx, value } => {
                let _ = writeln!(out, "{buf}[{}] = {};", expr(idx), expr(value));
            }
            SStmt::Send { to, tag, values } => {
                let vals: Vec<_> = values.iter().map(expr).collect();
                let _ = writeln!(out, "csend(t{tag}, [{}], {});", vals.join(", "), expr(to));
            }
            SStmt::Recv { from, tag, into } => {
                let tgts: Vec<_> = into
                    .iter()
                    .map(|t| match t {
                        RecvTarget::Var(v) => v.clone(),
                        RecvTarget::Buf { buf, idx } => format!("{buf}[{}]", expr(idx)),
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "[{}] = crecv(t{tag}, {});",
                    tgts.join(", "),
                    expr(from)
                );
            }
            SStmt::SendBuf {
                to,
                tag,
                buf,
                lo,
                hi,
            } => {
                let _ = writeln!(
                    out,
                    "csend(t{tag}, {buf}[{}..{}], {});",
                    expr(lo),
                    expr(hi),
                    expr(to)
                );
            }
            SStmt::RecvBuf {
                from,
                tag,
                buf,
                lo,
                hi,
            } => {
                let _ = writeln!(
                    out,
                    "{buf}[{}..{}] = crecv(t{tag}, {});",
                    expr(lo),
                    expr(hi),
                    expr(from)
                );
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let _ = writeln!(
                    out,
                    "for ({var} = {}; {var} <= {}; {var} += {}) {{",
                    expr(lo),
                    expr(hi),
                    expr(step)
                );
                stmts(out, body, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
            SStmt::If { cond, then, els } => {
                let _ = writeln!(out, "if ({}) {{", expr(cond));
                stmts(out, then, level + 1);
                if !els.is_empty() {
                    indent(out, level);
                    out.push_str("} else {\n");
                    stmts(out, els, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
            SStmt::Comment(c) => {
                let _ = writeln!(out, "/* {c} */");
            }
        }
    }
}

impl fmt::Display for SpmdProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Identical bodies collapse to one listing.
        let uniform = self.per_proc.windows(2).all(|w| w[0] == w[1]);
        if uniform {
            let mut out = String::new();
            pretty::stmts(&mut out, &self.per_proc[0], 1);
            writeln!(f, "all {} processors:", self.per_proc.len())?;
            write!(f, "{out}")
        } else {
            for (p, body) in self.per_proc.iter().enumerate() {
                let mut out = String::new();
                pretty::stmts(&mut out, body, 1);
                writeln!(f, "P{p}:")?;
                write!(f, "{out}")?;
            }
            Ok(())
        }
    }
}

/// Render a single expression (used by tests and debug output).
pub fn expr_to_string(e: &SExpr) -> String {
    pretty::expr(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_compose() {
        let e = SExpr::var("j").add(SExpr::int(1)).imod(SExpr::NProcs);
        assert_eq!(expr_to_string(&e), "((j + 1) mod nprocs())");
    }

    #[test]
    fn uniform_program_display_collapses() {
        let p = SpmdProgram::uniform(
            3,
            vec![SStmt::Let {
                var: "x".into(),
                value: SExpr::int(1),
            }],
        );
        let s = p.to_string();
        assert!(s.contains("all 3 processors"));
        assert!(s.contains("x = 1;"));
    }

    #[test]
    fn per_proc_display_lists_each() {
        let p = SpmdProgram::new(vec![
            vec![SStmt::Comment("left".into())],
            vec![SStmt::Comment("right".into())],
        ]);
        let s = p.to_string();
        assert!(s.contains("P0:"));
        assert!(s.contains("P1:"));
        assert!(s.contains("/* left */"));
    }

    #[test]
    fn stmt_count_recurses() {
        let p = SpmdProgram::uniform(
            2,
            vec![SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(3),
                step: SExpr::int(1),
                body: vec![
                    SStmt::Comment("a".into()),
                    SStmt::If {
                        cond: SExpr::Bool(true),
                        then: vec![SStmt::Comment("b".into())],
                        els: vec![],
                    },
                ],
            }],
        );
        // per proc: for(1) + comment(1) + if(1) + comment(1) = 4; ×2 procs.
        assert_eq!(p.stmt_count(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_program_rejected() {
        let _ = SpmdProgram::new(vec![]);
    }
}
