//! SPMD-layer errors.

use pdc_machine::MachineError;
use std::error::Error;
use std::fmt;

/// A failure in lowering or executing an SPMD program.
#[derive(Debug, Clone, PartialEq)]
pub enum SpmdError {
    /// The tree IR could not be lowered to bytecode.
    Lower {
        /// Description of the problem.
        message: String,
    },
    /// The machine or scheduler failed (deadlock, process fault, budget).
    Machine(MachineError),
    /// A gather was requested for an array that does not exist or whose
    /// segments disagree across processors.
    Gather {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmdError::Lower { message } => write!(f, "lowering error: {message}"),
            SpmdError::Machine(e) => write!(f, "machine error: {e}"),
            SpmdError::Gather { message } => write!(f, "gather error: {message}"),
        }
    }
}

impl Error for SpmdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpmdError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SpmdError {
    fn from(e: MachineError) -> Self {
        SpmdError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_machine::ProcId;

    #[test]
    fn machine_errors_convert() {
        let e: SpmdError = MachineError::SelfSend { proc: ProcId(1) }.into();
        assert!(e.to_string().contains("sent a message to itself"));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_forms() {
        let e = SpmdError::Lower {
            message: "bad loop".into(),
        };
        assert_eq!(e.to_string(), "lowering error: bad loop");
    }
}
