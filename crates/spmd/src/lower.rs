//! Lowering the tree IR to flat stack bytecode.
//!
//! The virtual machine must be able to *suspend* at a blocking receive and
//! resume later (the scheduler interleaves processors). A flat instruction
//! array with an explicit program counter makes suspension trivial: a
//! receive that finds no message simply leaves the machine state untouched
//! and reports itself blocked; the next step retries the same instruction.

use crate::ir::{RecvTarget, SBinOp, SExpr, SStmt, SUnOp};
use crate::SpmdError;
use pdc_mapping::Dist;
use std::collections::HashMap;

/// One bytecode instruction. The operand stack holds [`crate::Scalar`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a float constant.
    PushFloat(f64),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push the executing processor id.
    PushMyNode,
    /// Push the machine size.
    PushNProcs,
    /// Push the value of a local slot.
    Load(u32),
    /// Pop into a local slot.
    Store(u32),
    /// Pop two operands, push the result.
    Bin(SBinOp),
    /// Pop one operand, push the result.
    Un(SUnOp),
    /// Unconditional jump.
    Jump(usize),
    /// Pop a boolean; jump when false.
    JumpIfFalse(usize),
    /// Pop `cols`, `rows` (global extents); allocate the local segment.
    AllocDist {
        /// Array slot.
        arr: u32,
        /// Distribution.
        dist: Dist,
    },
    /// Pop `len`; allocate a plain buffer of that many `Int(0)` cells.
    AllocBuf {
        /// Buffer slot.
        buf: u32,
    },
    /// Pop `nd` local indices; push the element.
    ARead {
        /// Array slot.
        arr: u32,
        /// Number of indices.
        nd: u8,
    },
    /// Pop the value, then `nd` local indices; define the element.
    AWrite {
        /// Array slot.
        arr: u32,
        /// Number of indices.
        nd: u8,
    },
    /// Pop `nd` global indices; push the element (owner-checked).
    AReadGlobal {
        /// Array slot.
        arr: u32,
        /// Number of indices.
        nd: u8,
    },
    /// Pop the value, then `nd` global indices; define the element
    /// (owner-checked).
    AWriteGlobal {
        /// Array slot.
        arr: u32,
        /// Number of indices.
        nd: u8,
    },
    /// Pop `nd` global indices; push the owner processor id.
    OwnerOf {
        /// Array slot.
        arr: u32,
        /// Number of indices.
        nd: u8,
    },
    /// Pop `nd` global indices; push local coordinate `dim`.
    LocalOf {
        /// Array slot.
        arr: u32,
        /// Number of indices.
        nd: u8,
        /// Coordinate (0 = row, 1 = col).
        dim: u8,
    },
    /// Pop a zero-based index; push the buffer element.
    BufRead {
        /// Buffer slot.
        buf: u32,
    },
    /// Pop a zero-based index, then the value; store it.
    BufWrite {
        /// Buffer slot.
        buf: u32,
    },
    /// Pop `n` values (pushed left-to-right), then the destination below
    /// them; send one message.
    Send {
        /// Message tag.
        tag: u32,
        /// Number of scalars.
        n: u16,
    },
    /// Stack top must be the source id. If a matching message is pending:
    /// pop the source, push the `n` received values left-to-right.
    /// Otherwise leave the stack untouched and report blocked.
    Recv {
        /// Message tag.
        tag: u32,
        /// Expected number of scalars.
        n: u16,
    },
    /// Pop `hi`, `lo`, then the destination; send `buf[lo..=hi]`.
    SendBuf {
        /// Message tag.
        tag: u32,
        /// Buffer slot.
        buf: u32,
    },
    /// Stack holds `[…, src, lo, hi]`. If a message is pending: pop all
    /// three and scatter the payload into `buf[lo..=hi]`. Otherwise leave
    /// the stack untouched and report blocked.
    RecvBuf {
        /// Message tag.
        tag: u32,
        /// Buffer slot.
        buf: u32,
    },
    /// Raise a process fault with this message.
    Fault(String),
    /// Normal termination.
    Halt,
}

/// Symbol tables produced by lowering: slot-number ↔ name maps for
/// locals, distributed arrays, and plain buffers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Symbols {
    /// Local variable names by slot.
    pub vars: Vec<String>,
    /// Distributed array names by slot.
    pub arrays: Vec<String>,
    /// Buffer names by slot.
    pub bufs: Vec<String>,
}

impl Symbols {
    /// Slot of variable `name`, if any.
    pub fn var_slot(&self, name: &str) -> Option<u32> {
        self.vars.iter().position(|v| v == name).map(|i| i as u32)
    }

    /// Slot of array `name`, if any.
    pub fn array_slot(&self, name: &str) -> Option<u32> {
        self.arrays.iter().position(|v| v == name).map(|i| i as u32)
    }

    /// Slot of buffer `name`, if any.
    pub fn buf_slot(&self, name: &str) -> Option<u32> {
        self.bufs.iter().position(|v| v == name).map(|i| i as u32)
    }
}

/// A lowered program for one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct Code {
    /// The instruction stream; ends with [`Instr::Halt`].
    pub instrs: Vec<Instr>,
    /// Name tables.
    pub syms: Symbols,
}

struct Lowerer {
    instrs: Vec<Instr>,
    vars: HashMap<String, u32>,
    arrays: HashMap<String, u32>,
    bufs: HashMap<String, u32>,
    var_names: Vec<String>,
    array_names: Vec<String>,
    buf_names: Vec<String>,
    temp_counter: u32,
}

/// Lower one processor's body.
///
/// # Errors
///
/// [`SpmdError::Lower`] when a statement is structurally invalid (e.g. a
/// receive with no targets).
pub fn lower(body: &[SStmt]) -> Result<Code, SpmdError> {
    let mut l = Lowerer {
        instrs: Vec::new(),
        vars: HashMap::new(),
        arrays: HashMap::new(),
        bufs: HashMap::new(),
        var_names: Vec::new(),
        array_names: Vec::new(),
        buf_names: Vec::new(),
        temp_counter: 0,
    };
    l.stmts(body)?;
    l.instrs.push(Instr::Halt);
    Ok(Code {
        instrs: l.instrs,
        syms: Symbols {
            vars: l.var_names,
            arrays: l.array_names,
            bufs: l.buf_names,
        },
    })
}

impl Lowerer {
    fn var(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.vars.get(name) {
            return s;
        }
        let s = self.var_names.len() as u32;
        self.vars.insert(name.to_owned(), s);
        self.var_names.push(name.to_owned());
        s
    }

    fn array(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.arrays.get(name) {
            return s;
        }
        let s = self.array_names.len() as u32;
        self.arrays.insert(name.to_owned(), s);
        self.array_names.push(name.to_owned());
        s
    }

    fn buf(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.bufs.get(name) {
            return s;
        }
        let s = self.buf_names.len() as u32;
        self.bufs.insert(name.to_owned(), s);
        self.buf_names.push(name.to_owned());
        s
    }

    fn fresh_temp(&mut self) -> u32 {
        let name = format!("$t{}", self.temp_counter);
        self.temp_counter += 1;
        self.var(&name)
    }

    fn stmts(&mut self, body: &[SStmt]) -> Result<(), SpmdError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &SStmt) -> Result<(), SpmdError> {
        match s {
            SStmt::Let { var, value } => {
                self.expr(value)?;
                let slot = self.var(var);
                self.instrs.push(Instr::Store(slot));
            }
            SStmt::AllocDist {
                array,
                rows,
                cols,
                dist,
            } => {
                self.expr(rows)?;
                self.expr(cols)?;
                let arr = self.array(array);
                self.instrs.push(Instr::AllocDist {
                    arr,
                    dist: dist.clone(),
                });
            }
            SStmt::AllocBuf { buf, len } => {
                self.expr(len)?;
                let b = self.buf(buf);
                self.instrs.push(Instr::AllocBuf { buf: b });
            }
            SStmt::AWrite { array, idx, value } => {
                for e in idx {
                    self.expr(e)?;
                }
                self.expr(value)?;
                let arr = self.array(array);
                self.instrs.push(Instr::AWrite {
                    arr,
                    nd: idx.len() as u8,
                });
            }
            SStmt::AWriteGlobal { array, idx, value } => {
                for e in idx {
                    self.expr(e)?;
                }
                self.expr(value)?;
                let arr = self.array(array);
                self.instrs.push(Instr::AWriteGlobal {
                    arr,
                    nd: idx.len() as u8,
                });
            }
            SStmt::BufWrite { buf, idx, value } => {
                self.expr(value)?;
                self.expr(idx)?;
                let b = self.buf(buf);
                self.instrs.push(Instr::BufWrite { buf: b });
            }
            SStmt::Send { to, tag, values } => {
                if values.is_empty() {
                    return Err(SpmdError::Lower {
                        message: "send with no values".into(),
                    });
                }
                self.expr(to)?;
                for v in values {
                    self.expr(v)?;
                }
                self.instrs.push(Instr::Send {
                    tag: *tag,
                    n: values.len() as u16,
                });
            }
            SStmt::Recv { from, tag, into } => {
                if into.is_empty() {
                    return Err(SpmdError::Lower {
                        message: "receive with no targets".into(),
                    });
                }
                self.expr(from)?;
                self.instrs.push(Instr::Recv {
                    tag: *tag,
                    n: into.len() as u16,
                });
                // Values are on the stack left-to-right (last on top);
                // store them back-to-front.
                for t in into.iter().rev() {
                    match t {
                        RecvTarget::Var(v) => {
                            let slot = self.var(v);
                            self.instrs.push(Instr::Store(slot));
                        }
                        RecvTarget::Buf { buf, idx } => {
                            self.expr(idx)?;
                            let b = self.buf(buf);
                            self.instrs.push(Instr::BufWrite { buf: b });
                        }
                    }
                }
            }
            SStmt::SendBuf {
                to,
                tag,
                buf,
                lo,
                hi,
            } => {
                self.expr(to)?;
                self.expr(lo)?;
                self.expr(hi)?;
                let b = self.buf(buf);
                self.instrs.push(Instr::SendBuf { tag: *tag, buf: b });
            }
            SStmt::RecvBuf {
                from,
                tag,
                buf,
                lo,
                hi,
            } => {
                self.expr(from)?;
                self.expr(lo)?;
                self.expr(hi)?;
                let b = self.buf(buf);
                self.instrs.push(Instr::RecvBuf { tag: *tag, buf: b });
            }
            SStmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                self.lower_for(var, lo, hi, step, body)?;
            }
            SStmt::If { cond, then, els } => {
                self.expr(cond)?;
                let jmp_else = self.instrs.len();
                self.instrs.push(Instr::JumpIfFalse(usize::MAX));
                self.stmts(then)?;
                if els.is_empty() {
                    let end = self.instrs.len();
                    self.patch_jump(jmp_else, end);
                } else {
                    let jmp_end = self.instrs.len();
                    self.instrs.push(Instr::Jump(usize::MAX));
                    let else_start = self.instrs.len();
                    self.patch_jump(jmp_else, else_start);
                    self.stmts(els)?;
                    let end = self.instrs.len();
                    self.patch_jump(jmp_end, end);
                }
            }
            SStmt::Comment(_) => {}
        }
        Ok(())
    }

    fn lower_for(
        &mut self,
        var: &str,
        lo: &SExpr,
        hi: &SExpr,
        step: &SExpr,
        body: &[SStmt],
    ) -> Result<(), SpmdError> {
        let vslot = self.var(var);
        let hi_slot = self.fresh_temp();
        // init: var = lo; $hi = hi
        self.expr(lo)?;
        self.instrs.push(Instr::Store(vslot));
        self.expr(hi)?;
        self.instrs.push(Instr::Store(hi_slot));
        // The overwhelmingly common case is a constant step, which lets
        // us pick the comparison direction at lowering time.
        let const_step = match step {
            SExpr::Int(k) => Some(*k),
            _ => None,
        };
        if const_step == Some(0) {
            self.instrs
                .push(Instr::Fault("loop step must be non-zero".into()));
            return Ok(());
        }
        let step_slot = if const_step.is_none() {
            let s = self.fresh_temp();
            self.expr(step)?;
            self.instrs.push(Instr::Store(s));
            // A dynamic zero step faults at run time inside the head.
            Some(s)
        } else {
            None
        };
        let head = self.instrs.len();
        match const_step {
            Some(k) => {
                self.instrs.push(Instr::Load(vslot));
                self.instrs.push(Instr::Load(hi_slot));
                self.instrs
                    .push(Instr::Bin(if k > 0 { SBinOp::Le } else { SBinOp::Ge }));
            }
            None => {
                // (step > 0 and var <= hi) or (step < 0 and var >= hi)
                let s = step_slot.unwrap();
                self.instrs.push(Instr::Load(s));
                self.instrs.push(Instr::PushInt(0));
                self.instrs.push(Instr::Bin(SBinOp::Gt));
                self.instrs.push(Instr::Load(vslot));
                self.instrs.push(Instr::Load(hi_slot));
                self.instrs.push(Instr::Bin(SBinOp::Le));
                self.instrs.push(Instr::Bin(SBinOp::And));
                self.instrs.push(Instr::Load(s));
                self.instrs.push(Instr::PushInt(0));
                self.instrs.push(Instr::Bin(SBinOp::Lt));
                self.instrs.push(Instr::Load(vslot));
                self.instrs.push(Instr::Load(hi_slot));
                self.instrs.push(Instr::Bin(SBinOp::Ge));
                self.instrs.push(Instr::Bin(SBinOp::And));
                self.instrs.push(Instr::Bin(SBinOp::Or));
            }
        }
        let exit_jump = self.instrs.len();
        self.instrs.push(Instr::JumpIfFalse(usize::MAX));
        self.stmts(body)?;
        // var += step
        self.instrs.push(Instr::Load(vslot));
        match const_step {
            Some(k) => self.instrs.push(Instr::PushInt(k)),
            None => self.instrs.push(Instr::Load(step_slot.unwrap())),
        }
        self.instrs.push(Instr::Bin(SBinOp::Add));
        self.instrs.push(Instr::Store(vslot));
        self.instrs.push(Instr::Jump(head));
        let end = self.instrs.len();
        self.patch_jump(exit_jump, end);
        Ok(())
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn expr(&mut self, e: &SExpr) -> Result<(), SpmdError> {
        match e {
            SExpr::Int(v) => self.instrs.push(Instr::PushInt(*v)),
            SExpr::Float(v) => self.instrs.push(Instr::PushFloat(*v)),
            SExpr::Bool(v) => self.instrs.push(Instr::PushBool(*v)),
            SExpr::Var(name) => {
                let slot = self.var(name);
                self.instrs.push(Instr::Load(slot));
            }
            SExpr::Bin(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.instrs.push(Instr::Bin(*op));
            }
            SExpr::Un(op, a) => {
                self.expr(a)?;
                self.instrs.push(Instr::Un(*op));
            }
            SExpr::MyNode => self.instrs.push(Instr::PushMyNode),
            SExpr::NProcs => self.instrs.push(Instr::PushNProcs),
            SExpr::ARead { array, idx } => {
                for i in idx {
                    self.expr(i)?;
                }
                let arr = self.array(array);
                self.instrs.push(Instr::ARead {
                    arr,
                    nd: idx.len() as u8,
                });
            }
            SExpr::AReadGlobal { array, idx } => {
                for i in idx {
                    self.expr(i)?;
                }
                let arr = self.array(array);
                self.instrs.push(Instr::AReadGlobal {
                    arr,
                    nd: idx.len() as u8,
                });
            }
            SExpr::OwnerOf { array, idx } => {
                for i in idx {
                    self.expr(i)?;
                }
                let arr = self.array(array);
                self.instrs.push(Instr::OwnerOf {
                    arr,
                    nd: idx.len() as u8,
                });
            }
            SExpr::LocalOf { array, idx, dim } => {
                for i in idx {
                    self.expr(i)?;
                }
                let arr = self.array(array);
                self.instrs.push(Instr::LocalOf {
                    arr,
                    nd: idx.len() as u8,
                    dim: *dim as u8,
                });
            }
            SExpr::BufRead { buf, idx } => {
                self.expr(idx)?;
                let b = self.buf(buf);
                self.instrs.push(Instr::BufRead { buf: b });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowers_let_and_arith() {
        let code = lower(&[SStmt::Let {
            var: "x".into(),
            value: SExpr::int(2).add(SExpr::int(3)),
        }])
        .unwrap();
        assert_eq!(
            code.instrs,
            vec![
                Instr::PushInt(2),
                Instr::PushInt(3),
                Instr::Bin(SBinOp::Add),
                Instr::Store(0),
                Instr::Halt
            ]
        );
        assert_eq!(code.syms.vars, vec!["x"]);
    }

    #[test]
    fn for_loop_with_const_step_uses_single_compare() {
        let code = lower(&[SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(3),
            step: SExpr::int(1),
            body: vec![],
        }])
        .unwrap();
        // Head compares Le once (positive step).
        assert!(code.instrs.contains(&Instr::Bin(SBinOp::Le)));
        assert!(!code.instrs.contains(&Instr::Bin(SBinOp::Or)));
    }

    #[test]
    fn for_loop_with_dynamic_step_handles_both_directions() {
        let code = lower(&[SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(3),
            step: SExpr::var("s"),
            body: vec![],
        }])
        .unwrap();
        assert!(code.instrs.contains(&Instr::Bin(SBinOp::Or)));
    }

    #[test]
    fn zero_const_step_lowers_to_fault() {
        let code = lower(&[SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(3),
            step: SExpr::int(0),
            body: vec![],
        }])
        .unwrap();
        assert!(code.instrs.iter().any(|i| matches!(i, Instr::Fault(_))));
    }

    #[test]
    fn if_else_patches_jumps() {
        let code = lower(&[SStmt::If {
            cond: SExpr::Bool(true),
            then: vec![SStmt::Let {
                var: "a".into(),
                value: SExpr::int(1),
            }],
            els: vec![SStmt::Let {
                var: "a".into(),
                value: SExpr::int(2),
            }],
        }])
        .unwrap();
        // No unpatched jumps remain.
        for ins in &code.instrs {
            match ins {
                Instr::Jump(t) | Instr::JumpIfFalse(t) => {
                    assert!(*t <= code.instrs.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn recv_targets_store_in_reverse() {
        let code = lower(&[SStmt::Recv {
            from: SExpr::int(0),
            tag: 5,
            into: vec![RecvTarget::Var("a".into()), RecvTarget::Var("b".into())],
        }])
        .unwrap();
        let a = code.syms.var_slot("a").unwrap();
        let b = code.syms.var_slot("b").unwrap();
        // After Recv pushes [a_val, b_val], we must store b then a.
        let stores: Vec<_> = code
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Store(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![b, a]);
    }

    #[test]
    fn empty_send_is_a_lower_error() {
        let err = lower(&[SStmt::Send {
            to: SExpr::int(1),
            tag: 0,
            values: vec![],
        }])
        .unwrap_err();
        assert!(err.to_string().contains("no values"));
    }

    #[test]
    fn comments_vanish() {
        let code = lower(&[SStmt::Comment("hello".into())]).unwrap();
        assert_eq!(code.instrs, vec![Instr::Halt]);
    }
}
