//! The per-processor virtual machine.

use crate::ir::{SBinOp, SUnOp};
use crate::lower::{Code, Instr};
use crate::scalar::{decode_into, encode_into, Scalar};
use pdc_istructure::IMatrix;
use pdc_machine::{Ctr, Fabric, MachineError, ProcId, Process, Step, Tag, Word};
use pdc_mapping::{Dist, DistInstance, OwnerSet};
use std::sync::Arc;

/// The local segment of a distributed I-structure plus its distribution
/// metadata (the Map/Local/Alloc triple instantiated at allocation time).
#[derive(Debug, Clone)]
pub struct DistArray {
    /// The instantiated distribution.
    pub inst: DistInstance,
    /// This processor's local segment (shaped by Alloc).
    pub local: IMatrix<Scalar>,
}

impl DistArray {
    /// Allocate the local segment for an array of global extents
    /// `rows × cols` under `dist` on a machine of `nprocs`.
    pub fn alloc(dist: Dist, rows: usize, cols: usize, nprocs: usize) -> Self {
        let inst = DistInstance::new(dist, rows, cols, nprocs);
        let (lr, lc) = inst.alloc();
        DistArray {
            inst,
            local: IMatrix::new(lr, lc),
        }
    }
}

/// One processor's interpreter state. Implements [`Process`] so the
/// machine scheduler can drive it one instruction at a time; a blocking
/// receive leaves the state untouched and reports itself blocked. The
/// code is behind an [`Arc`] (and the rest of the state is plain data)
/// so a `ProcVm` is `Send` and can run on its own OS thread under the
/// threaded backend.
#[derive(Debug)]
pub struct ProcVm {
    code: Arc<Code>,
    pc: usize,
    stack: Vec<Scalar>,
    locals: Vec<Option<Scalar>>,
    arrays: Vec<Option<DistArray>>,
    bufs: Vec<Option<Vec<Scalar>>>,
    // Scratch arenas for message packing/unpacking: one wire buffer and
    // two scalar staging buffers reused across every send and receive,
    // so the steady state allocates nothing. Always empty between
    // steps, hence excluded from snapshots.
    msg_vals: Vec<Scalar>,
    recv_vals: Vec<Scalar>,
    wire: Vec<Word>,
}

impl ProcVm {
    /// A fresh interpreter for `code`.
    pub fn new(code: Arc<Code>) -> Self {
        let nv = code.syms.vars.len();
        let na = code.syms.arrays.len();
        let nb = code.syms.bufs.len();
        ProcVm {
            code,
            pc: 0,
            stack: Vec::with_capacity(16),
            locals: vec![None; nv],
            arrays: vec![None; na],
            bufs: vec![None; nb],
            msg_vals: Vec::new(),
            recv_vals: Vec::new(),
            wire: Vec::new(),
        }
    }

    /// The value of local variable `name`, if assigned.
    pub fn var(&self, name: &str) -> Option<Scalar> {
        let slot = self.code.syms.var_slot(name)?;
        self.locals[slot as usize]
    }

    /// The distributed-array segment called `name`, if allocated.
    pub fn array(&self, name: &str) -> Option<&DistArray> {
        let slot = self.code.syms.array_slot(name)?;
        self.arrays[slot as usize].as_ref()
    }

    /// The buffer called `name`, if allocated.
    pub fn buf(&self, name: &str) -> Option<&[Scalar]> {
        let slot = self.code.syms.buf_slot(name)?;
        self.bufs[slot as usize].as_deref()
    }

    /// Has the program halted?
    pub fn is_done(&self) -> bool {
        matches!(self.code.instrs.get(self.pc), Some(Instr::Halt) | None)
    }

    /// Install a pre-distributed array segment before execution (input
    /// data that is already resident, as the paper assumes). Returns
    /// `false` when the program never references `name` (the preload is
    /// then irrelevant and skipped).
    pub fn preload_array(&mut self, name: &str, arr: DistArray) -> bool {
        match self.code.syms.array_slot(name) {
            Some(slot) => {
                self.arrays[slot as usize] = Some(arr);
                true
            }
            None => false,
        }
    }

    /// Bind a local variable before execution (entry parameters such as
    /// `n`). Returns `false` when the program never references `name`.
    pub fn preset_var(&mut self, name: &str, value: Scalar) -> bool {
        match self.code.syms.var_slot(name) {
            Some(slot) => {
                self.locals[slot as usize] = Some(value);
                true
            }
            None => false,
        }
    }

    fn fault(&self, me: ProcId, message: impl Into<String>) -> MachineError {
        MachineError::ProcessFault {
            proc: me,
            message: format!("{} (pc {})", message.into(), self.pc),
        }
    }

    fn pop(&mut self, me: ProcId) -> Result<Scalar, MachineError> {
        self.stack
            .pop()
            .ok_or_else(|| self.fault(me, "operand stack underflow"))
    }

    fn pop_int(&mut self, me: ProcId) -> Result<i64, MachineError> {
        let v = self.pop(me)?;
        v.as_int()
            .ok_or_else(|| self.fault(me, format!("expected int, got {}", v.type_name())))
    }

    fn pop_indices(&mut self, me: ProcId, nd: u8) -> Result<(i64, i64), MachineError> {
        match nd {
            1 => {
                let j = self.pop_int(me)?;
                Ok((1, j))
            }
            2 => {
                let j = self.pop_int(me)?;
                let i = self.pop_int(me)?;
                Ok((i, j))
            }
            _ => Err(self.fault(me, format!("unsupported dimensionality {nd}"))),
        }
    }

    fn array_at(&mut self, me: ProcId, slot: u32) -> Result<&mut DistArray, MachineError> {
        let name = self
            .code
            .syms
            .arrays
            .get(slot as usize)
            .cloned()
            .unwrap_or_default();
        match &mut self.arrays[slot as usize] {
            Some(a) => Ok(a),
            None => Err(MachineError::ProcessFault {
                proc: me,
                message: format!("array `{name}` used before allocation"),
            }),
        }
    }

    fn buf_at(&mut self, me: ProcId, slot: u32) -> Result<&mut Vec<Scalar>, MachineError> {
        let name = self
            .code
            .syms
            .bufs
            .get(slot as usize)
            .cloned()
            .unwrap_or_default();
        match &mut self.bufs[slot as usize] {
            Some(b) => Ok(b),
            None => Err(MachineError::ProcessFault {
                proc: me,
                message: format!("buffer `{name}` used before allocation"),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec. A `ProcVm` snapshot is the interpreter's complete
// resumable state — pc, operand stack, locals, buffers, and each
// distributed-array segment (distribution + the set of full I-structure
// cells). Everything derivable from `code` (slot counts, symbol names)
// is *not* serialized; restore validates the image against the code the
// VM was constructed with.

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_scalar(out: &mut Vec<u8>, s: Scalar) {
    match s {
        Scalar::Int(x) => {
            out.push(0);
            put_u64(out, x as u64);
        }
        Scalar::Float(x) => {
            out.push(1);
            put_u64(out, x.to_bits());
        }
        Scalar::Bool(b) => {
            out.push(2);
            put_u64(out, b as u64);
        }
    }
}

fn put_dist(out: &mut Vec<u8>, d: &Dist) {
    match d {
        Dist::Replicated => out.push(0),
        Dist::OnProcessor(p) => {
            out.push(1);
            put_u64(out, *p as u64);
        }
        Dist::ColumnCyclic => out.push(2),
        Dist::RowCyclic => out.push(3),
        Dist::ColumnBlock => out.push(4),
        Dist::RowBlock => out.push(5),
        Dist::ColumnBlockCyclic { block } => {
            out.push(6);
            put_u64(out, *block as u64);
        }
        Dist::RowBlockCyclic { block } => {
            out.push(7);
            put_u64(out, *block as u64);
        }
        Dist::Block2d { prows, pcols } => {
            out.push(8);
            put_u64(out, *prows as u64);
            put_u64(out, *pcols as u64);
        }
        Dist::ColumnAssigned { table } => {
            out.push(9);
            put_u64(out, table.len() as u64);
            for p in table.iter() {
                put_u64(out, *p as u64);
            }
        }
    }
}

/// Bounds-checked little-endian reader over a snapshot image.
struct Rd<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.b.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.b.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn scalar(&mut self) -> Option<Scalar> {
        let tag = self.u8()?;
        let bits = self.u64()?;
        Some(match tag {
            0 => Scalar::Int(bits as i64),
            1 => Scalar::Float(f64::from_bits(bits)),
            2 => Scalar::Bool(bits != 0),
            _ => return None,
        })
    }

    fn dist(&mut self) -> Option<Dist> {
        Some(match self.u8()? {
            0 => Dist::Replicated,
            1 => Dist::OnProcessor(self.usize()?),
            2 => Dist::ColumnCyclic,
            3 => Dist::RowCyclic,
            4 => Dist::ColumnBlock,
            5 => Dist::RowBlock,
            6 => Dist::ColumnBlockCyclic {
                block: self.usize()?,
            },
            7 => Dist::RowBlockCyclic {
                block: self.usize()?,
            },
            8 => Dist::Block2d {
                prows: self.usize()?,
                pcols: self.usize()?,
            },
            9 => {
                let n = self.usize()?;
                if n > self.b.len() {
                    return None;
                }
                let mut table = Vec::with_capacity(n);
                for _ in 0..n {
                    table.push(self.usize()?);
                }
                Dist::ColumnAssigned {
                    table: Arc::new(table),
                }
            }
            _ => return None,
        })
    }
}

impl ProcVm {
    fn snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.pc as u64);
        put_u64(&mut out, self.stack.len() as u64);
        for s in &self.stack {
            put_scalar(&mut out, *s);
        }
        put_u64(&mut out, self.locals.len() as u64);
        for slot in &self.locals {
            match slot {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    put_scalar(&mut out, *v);
                }
            }
        }
        put_u64(&mut out, self.bufs.len() as u64);
        for slot in &self.bufs {
            match slot {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    put_u64(&mut out, b.len() as u64);
                    for v in b {
                        put_scalar(&mut out, *v);
                    }
                }
            }
        }
        put_u64(&mut out, self.arrays.len() as u64);
        for slot in &self.arrays {
            match slot {
                None => out.push(0),
                Some(a) => {
                    out.push(1);
                    put_dist(&mut out, a.inst.dist());
                    let (rows, cols) = a.inst.extents();
                    put_u64(&mut out, rows as u64);
                    put_u64(&mut out, cols as u64);
                    put_u64(&mut out, a.inst.nprocs() as u64);
                    // Only the full cells; empties stay empty so the
                    // I-structure write-once discipline survives restart.
                    let full: Vec<(usize, Scalar)> = a
                        .local
                        .as_linear()
                        .iter_full()
                        .map(|(i, v)| (i, *v))
                        .collect();
                    put_u64(&mut out, full.len() as u64);
                    for (i, v) in full {
                        put_u64(&mut out, i as u64);
                        put_scalar(&mut out, v);
                    }
                }
            }
        }
        out
    }

    fn restore_bytes(&mut self, state: &[u8]) -> Option<()> {
        let mut r = Rd { b: state, at: 0 };
        let pc = r.usize()?;
        if pc > self.code.instrs.len() {
            return None;
        }
        let n_stack = r.usize()?;
        if n_stack > state.len() {
            return None;
        }
        let mut stack = Vec::with_capacity(n_stack);
        for _ in 0..n_stack {
            stack.push(r.scalar()?);
        }
        if r.usize()? != self.locals.len() {
            return None;
        }
        let mut locals = Vec::with_capacity(self.locals.len());
        for _ in 0..self.locals.len() {
            locals.push(match r.u8()? {
                0 => None,
                1 => Some(r.scalar()?),
                _ => return None,
            });
        }
        if r.usize()? != self.bufs.len() {
            return None;
        }
        let mut bufs = Vec::with_capacity(self.bufs.len());
        for _ in 0..self.bufs.len() {
            bufs.push(match r.u8()? {
                0 => None,
                1 => {
                    let n = r.usize()?;
                    if n > state.len() {
                        return None;
                    }
                    let mut b = Vec::with_capacity(n);
                    for _ in 0..n {
                        b.push(r.scalar()?);
                    }
                    Some(b)
                }
                _ => return None,
            });
        }
        if r.usize()? != self.arrays.len() {
            return None;
        }
        let mut arrays = Vec::with_capacity(self.arrays.len());
        for _ in 0..self.arrays.len() {
            arrays.push(match r.u8()? {
                0 => None,
                1 => {
                    let dist = r.dist()?;
                    let rows = r.usize()?;
                    let cols = r.usize()?;
                    let nprocs = r.usize()?;
                    if nprocs == 0 {
                        return None;
                    }
                    let mut arr = DistArray::alloc(dist, rows, cols, nprocs);
                    let lcols = arr.local.cols();
                    let n_full = r.usize()?;
                    if n_full > state.len() {
                        return None;
                    }
                    for _ in 0..n_full {
                        let idx = r.usize()?;
                        let v = r.scalar()?;
                        if lcols == 0 {
                            return None;
                        }
                        let (li, lj) = ((idx / lcols + 1) as i64, (idx % lcols + 1) as i64);
                        arr.local.write(li, lj, v).ok()?;
                    }
                    Some(arr)
                }
                _ => return None,
            });
        }
        if r.at != state.len() {
            return None;
        }
        self.pc = pc;
        self.stack = stack;
        self.locals = locals;
        self.bufs = bufs;
        self.arrays = arrays;
        Some(())
    }
}

/// Record whether a pack/unpack reused its scratch arena or had to
/// grow it. Capacity evolution is a deterministic function of the
/// per-processor message-size sequence, so these counters are logical:
/// fault-free runs must agree across backends.
#[inline]
fn note_scratch(machine: &mut dyn Fabric, me: ProcId, grew: bool) {
    if let Some(reg) = machine.metrics() {
        let c = if grew {
            Ctr::ScratchGrow
        } else {
            Ctr::ScratchReuse
        };
        reg.count(me.0, c, 1);
    }
}

/// Cycle cost of one instruction under the machine's cost model.
/// Communication instructions charge through `send`/`try_recv` instead.
fn instr_cost(instr: &Instr, c: &pdc_machine::CostModel) -> u64 {
    match instr {
        Instr::PushInt(_) | Instr::PushFloat(_) | Instr::PushBool(_) => 0,
        Instr::PushMyNode | Instr::PushNProcs => 0,
        Instr::Load(_) | Instr::Store(_) => c.mem_op,
        Instr::Bin(_) | Instr::Un(_) => c.alu_op,
        Instr::Jump(_) => 0,
        Instr::JumpIfFalse(_) => c.loop_overhead,
        Instr::AllocDist { .. } | Instr::AllocBuf { .. } => c.mem_op,
        Instr::ARead { .. } | Instr::AWrite { .. } => c.istruct_op,
        // Global access evaluates the Map/Local functions at run time.
        Instr::AReadGlobal { .. } | Instr::AWriteGlobal { .. } => c.istruct_op + 2 * c.alu_op,
        Instr::OwnerOf { .. } | Instr::LocalOf { .. } => 2 * c.alu_op,
        Instr::BufRead { .. } | Instr::BufWrite { .. } => c.mem_op,
        // Charged by the fabric.
        Instr::Send { .. } | Instr::Recv { .. } | Instr::SendBuf { .. } | Instr::RecvBuf { .. } => {
            0
        }
        Instr::Fault(_) | Instr::Halt => 0,
    }
}

/// Apply a strict binary operator to machine scalars.
pub(crate) fn scalar_binop(op: SBinOp, l: Scalar, r: Scalar) -> Result<Scalar, String> {
    use SBinOp::*;
    use Scalar::*;
    let type_err = || {
        format!(
            "cannot apply `{op}` to {} and {}",
            l.type_name(),
            r.type_name()
        )
    };
    match op {
        Add | Sub | Mul | Div | FloorDiv | Mod | Min | Max => match (l, r) {
            (Int(a), Int(b)) => {
                let v = match op {
                    Add => a.checked_add(b).ok_or("integer overflow")?,
                    Sub => a.checked_sub(b).ok_or("integer overflow")?,
                    Mul => a.checked_mul(b).ok_or("integer overflow")?,
                    Div | FloorDiv => {
                        if b == 0 {
                            return Err("division by zero".into());
                        }
                        a.div_euclid(b)
                    }
                    Mod => {
                        if b == 0 {
                            return Err("division by zero".into());
                        }
                        a.rem_euclid(b)
                    }
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                };
                Ok(Int(v))
            }
            _ => {
                let a = l.as_f64().ok_or_else(type_err)?;
                let b = r.as_f64().ok_or_else(type_err)?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    FloorDiv => (a / b).floor(),
                    Mod => a - b * (a / b).floor(),
                    Min => a.min(b),
                    Max => a.max(b),
                    _ => unreachable!(),
                };
                Ok(Float(v))
            }
        },
        Eq | Ne => {
            let eq = match (l, r) {
                (Bool(a), Bool(b)) => a == b,
                _ => {
                    let a = l.as_f64().ok_or_else(type_err)?;
                    let b = r.as_f64().ok_or_else(type_err)?;
                    a == b
                }
            };
            Ok(Bool(if op == Eq { eq } else { !eq }))
        }
        Lt | Le | Gt | Ge => {
            let a = l.as_f64().ok_or_else(type_err)?;
            let b = r.as_f64().ok_or_else(type_err)?;
            Ok(Bool(match op {
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            }))
        }
        And | Or => match (l, r) {
            (Bool(a), Bool(b)) => Ok(Bool(if op == And { a && b } else { a || b })),
            _ => Err(type_err()),
        },
    }
}

impl Process for ProcVm {
    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.snapshot_bytes())
    }

    fn restore(&mut self, state: &[u8]) -> bool {
        self.restore_bytes(state).is_some()
    }

    fn step(&mut self, machine: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
        let Some(instr) = self.code.instrs.get(self.pc).cloned() else {
            return Ok(Step::Done);
        };
        let cost = instr_cost(&instr, machine.cost_model());
        match instr {
            Instr::Halt => return Ok(Step::Done),
            Instr::Fault(msg) => return Err(self.fault(me, msg)),
            Instr::PushInt(v) => self.stack.push(Scalar::Int(v)),
            Instr::PushFloat(v) => self.stack.push(Scalar::Float(v)),
            Instr::PushBool(v) => self.stack.push(Scalar::Bool(v)),
            Instr::PushMyNode => self.stack.push(Scalar::Int(me.0 as i64)),
            Instr::PushNProcs => self.stack.push(Scalar::Int(machine.n_procs() as i64)),
            Instr::Load(slot) => {
                let v = self.locals[slot as usize].ok_or_else(|| {
                    self.fault(
                        me,
                        format!(
                            "variable `{}` read before assignment",
                            self.code.syms.vars[slot as usize]
                        ),
                    )
                })?;
                self.stack.push(v);
            }
            Instr::Store(slot) => {
                let v = self.pop(me)?;
                self.locals[slot as usize] = Some(v);
            }
            Instr::Bin(op) => {
                let r = self.pop(me)?;
                let l = self.pop(me)?;
                let v = scalar_binop(op, l, r).map_err(|m| self.fault(me, m))?;
                self.stack.push(v);
            }
            Instr::Un(op) => {
                let v = self.pop(me)?;
                let out = match (op, v) {
                    (SUnOp::Neg, Scalar::Int(x)) => Scalar::Int(-x),
                    (SUnOp::Neg, Scalar::Float(x)) => Scalar::Float(-x),
                    (SUnOp::Not, Scalar::Bool(b)) => Scalar::Bool(!b),
                    (op, v) => {
                        return Err(
                            self.fault(me, format!("cannot apply {op:?} to {}", v.type_name()))
                        )
                    }
                };
                self.stack.push(out);
            }
            Instr::Jump(t) => {
                self.pc = t;
                machine.tick(me, cost);
                return Ok(Step::Ran);
            }
            Instr::JumpIfFalse(t) => {
                let v = self.pop(me)?;
                let b = v
                    .as_bool()
                    .ok_or_else(|| self.fault(me, "branch on non-boolean"))?;
                machine.tick(me, cost);
                self.pc = if b { self.pc + 1 } else { t };
                return Ok(Step::Ran);
            }
            Instr::AllocDist { arr, dist } => {
                let cols = self.pop_int(me)?;
                let rows = self.pop_int(me)?;
                if rows < 0 || cols < 0 {
                    return Err(self.fault(me, "negative array extent"));
                }
                self.arrays[arr as usize] = Some(DistArray::alloc(
                    dist,
                    rows as usize,
                    cols as usize,
                    machine.n_procs(),
                ));
            }
            Instr::AllocBuf { buf } => {
                let len = self.pop_int(me)?;
                if len < 0 {
                    return Err(self.fault(me, "negative buffer length"));
                }
                self.bufs[buf as usize] = Some(vec![Scalar::Int(0); len as usize]);
            }
            Instr::ARead { arr, nd } => {
                let (li, lj) = self.pop_indices(me, nd)?;
                let a = self.array_at(me, arr)?;
                let v = a
                    .local
                    .read(li, lj)
                    .copied()
                    .map_err(|e| MachineError::ProcessFault {
                        proc: me,
                        message: e.to_string(),
                    })?;
                self.stack.push(v);
            }
            Instr::AWrite { arr, nd } => {
                let v = self.pop(me)?;
                let (li, lj) = self.pop_indices(me, nd)?;
                let a = self.array_at(me, arr)?;
                a.local
                    .write(li, lj, v)
                    .map_err(|e| MachineError::ProcessFault {
                        proc: me,
                        message: e.to_string(),
                    })?;
            }
            Instr::AReadGlobal { arr, nd } => {
                let (i, j) = self.pop_indices(me, nd)?;
                let a = self.array_at(me, arr)?;
                if !a.inst.owner(i, j).contains(me.0) {
                    return Err(MachineError::ProcessFault {
                        proc: me,
                        message: format!("global read of ({i},{j}) on non-owner {me}"),
                    });
                }
                let (li, lj) = a.inst.local(i, j);
                let v = a
                    .local
                    .read(li, lj)
                    .copied()
                    .map_err(|e| MachineError::ProcessFault {
                        proc: me,
                        message: e.to_string(),
                    })?;
                self.stack.push(v);
            }
            Instr::AWriteGlobal { arr, nd } => {
                let v = self.pop(me)?;
                let (i, j) = self.pop_indices(me, nd)?;
                let a = self.array_at(me, arr)?;
                if !a.inst.owner(i, j).contains(me.0) {
                    return Err(MachineError::ProcessFault {
                        proc: me,
                        message: format!("global write of ({i},{j}) on non-owner {me}"),
                    });
                }
                let (li, lj) = a.inst.local(i, j);
                a.local
                    .write(li, lj, v)
                    .map_err(|e| MachineError::ProcessFault {
                        proc: me,
                        message: e.to_string(),
                    })?;
            }
            Instr::OwnerOf { arr, nd } => {
                let (i, j) = self.pop_indices(me, nd)?;
                let a = self.array_at(me, arr)?;
                let owner = match a.inst.owner(i, j) {
                    OwnerSet::One(p) => p as i64,
                    // Replicated data is owned locally for coercion
                    // purposes: reading it never needs a message.
                    OwnerSet::All => me.0 as i64,
                };
                self.stack.push(Scalar::Int(owner));
            }
            Instr::LocalOf { arr, nd, dim } => {
                let (i, j) = self.pop_indices(me, nd)?;
                let a = self.array_at(me, arr)?;
                let (li, lj) = a.inst.local(i, j);
                self.stack.push(Scalar::Int(if dim == 0 { li } else { lj }));
            }
            Instr::BufRead { buf } => {
                let idx = self.pop_int(me)?;
                let b = self.buf_at(me, buf)?;
                let v = *b
                    .get(idx.max(0) as usize)
                    .ok_or_else(|| MachineError::ProcessFault {
                        proc: me,
                        message: format!("buffer index {idx} out of bounds ({})", b.len()),
                    })?;
                self.stack.push(v);
            }
            Instr::BufWrite { buf } => {
                let idx = self.pop_int(me)?;
                let v = self.pop(me)?;
                let b = self.buf_at(me, buf)?;
                let len = b.len();
                let cell =
                    b.get_mut(idx.max(0) as usize)
                        .ok_or_else(|| MachineError::ProcessFault {
                            proc: me,
                            message: format!("buffer index {idx} out of bounds ({len})"),
                        })?;
                *cell = v;
            }
            Instr::Send { tag, n } => {
                let mut vals = std::mem::take(&mut self.msg_vals);
                vals.clear();
                for _ in 0..n {
                    vals.push(self.pop(me)?);
                }
                vals.reverse();
                let dst = self.pop_int(me)?;
                if dst == me.0 as i64 {
                    return Err(self.fault(me, "send to self (coerce must be a local read)"));
                }
                if dst < 0 || dst as usize >= machine.n_procs() {
                    return Err(self.fault(me, format!("send to invalid processor {dst}")));
                }
                let mut wire = std::mem::take(&mut self.wire);
                wire.clear();
                let cap = wire.capacity();
                encode_into(&vals, &mut wire);
                note_scratch(machine, me, wire.capacity() > cap);
                machine.send_ref(me, ProcId(dst as usize), Tag(tag), &wire);
                self.msg_vals = vals;
                self.wire = wire;
            }
            Instr::Recv { tag, n } => {
                // Peek (do not pop) the source so a blocked receive can
                // be retried verbatim.
                let Some(&src_v) = self.stack.last() else {
                    return Err(self.fault(me, "operand stack underflow"));
                };
                let src = src_v
                    .as_int()
                    .ok_or_else(|| self.fault(me, "receive source must be an int"))?;
                if src < 0 || src as usize >= machine.n_procs() {
                    return Err(self.fault(me, format!("receive from invalid processor {src}")));
                }
                let src = ProcId(src as usize);
                let mut words = std::mem::take(&mut self.wire);
                if !machine.try_recv_into(me, src, Tag(tag), &mut words) {
                    self.wire = words;
                    return Ok(Step::BlockedOnRecv { src, tag: Tag(tag) });
                }
                self.stack.pop(); // consume the source
                let mut vals = std::mem::take(&mut self.recv_vals);
                vals.clear();
                let cap = vals.capacity();
                if !decode_into(&words, &mut vals) {
                    return Err(self.fault(me, "malformed message payload"));
                }
                note_scratch(machine, me, vals.capacity() > cap);
                if vals.len() != n as usize {
                    return Err(self.fault(
                        me,
                        format!("expected {n} value(s), message has {}", vals.len()),
                    ));
                }
                self.stack.extend(vals.iter().copied());
                self.recv_vals = vals;
                self.wire = words;
            }
            Instr::SendBuf { tag, buf } => {
                let hi = self.pop_int(me)?;
                let lo = self.pop_int(me)?;
                let dst = self.pop_int(me)?;
                if dst == me.0 as i64 {
                    return Err(self.fault(me, "send to self (coerce must be a local read)"));
                }
                if dst < 0 || dst as usize >= machine.n_procs() {
                    return Err(self.fault(me, format!("send to invalid processor {dst}")));
                }
                if lo < 0 || hi < lo {
                    return Err(self.fault(me, format!("bad buffer slice {lo}..={hi}")));
                }
                let mut wire = std::mem::take(&mut self.wire);
                wire.clear();
                let b = self.buf_at(me, buf)?;
                if hi as usize >= b.len() {
                    return Err(MachineError::ProcessFault {
                        proc: me,
                        message: format!("buffer slice {lo}..={hi} out of bounds"),
                    });
                }
                let cap = wire.capacity();
                encode_into(&b[lo as usize..=hi as usize], &mut wire);
                note_scratch(machine, me, wire.capacity() > cap);
                machine.send_ref(me, ProcId(dst as usize), Tag(tag), &wire);
                self.wire = wire;
            }
            Instr::RecvBuf { tag, buf } => {
                let len = self.stack.len();
                if len < 3 {
                    return Err(self.fault(me, "operand stack underflow"));
                }
                let src = self.stack[len - 3]
                    .as_int()
                    .ok_or_else(|| self.fault(me, "receive source must be an int"))?;
                if src < 0 || src as usize >= machine.n_procs() {
                    return Err(self.fault(me, format!("receive from invalid processor {src}")));
                }
                let src = ProcId(src as usize);
                let mut words = std::mem::take(&mut self.wire);
                if !machine.try_recv_into(me, src, Tag(tag), &mut words) {
                    self.wire = words;
                    return Ok(Step::BlockedOnRecv { src, tag: Tag(tag) });
                }
                let hi = self.pop_int(me)?;
                let lo = self.pop_int(me)?;
                self.stack.pop(); // source
                if lo < 0 || hi < lo {
                    return Err(self.fault(me, format!("bad buffer slice {lo}..={hi}")));
                }
                let mut vals = std::mem::take(&mut self.recv_vals);
                vals.clear();
                let cap = vals.capacity();
                if !decode_into(&words, &mut vals) {
                    return Err(self.fault(me, "malformed message payload"));
                }
                note_scratch(machine, me, vals.capacity() > cap);
                let want = (hi - lo + 1) as usize;
                if vals.len() != want {
                    return Err(self.fault(
                        me,
                        format!("expected {want} value(s), message has {}", vals.len()),
                    ));
                }
                let b = self.buf_at(me, buf)?;
                if hi as usize >= b.len() {
                    return Err(MachineError::ProcessFault {
                        proc: me,
                        message: format!("buffer slice {lo}..={hi} out of bounds"),
                    });
                }
                b[lo as usize..=hi as usize].copy_from_slice(&vals);
                self.recv_vals = vals;
                self.wire = words;
            }
        }
        machine.tick(me, cost);
        self.pc += 1;
        Ok(Step::Ran)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{SExpr, SStmt};
    use crate::lower::lower;
    use crate::scalar::encode;
    use pdc_machine::{CostModel, Machine};

    fn run_single(body: Vec<SStmt>) -> (ProcVm, Machine) {
        let code = Arc::new(lower(&body).unwrap());
        let mut vm = ProcVm::new(code);
        let mut machine = Machine::new(1, CostModel::zero());
        loop {
            match vm.step(&mut machine, ProcId(0)).unwrap() {
                Step::Done => break,
                Step::Ran => {}
                Step::BlockedOnRecv { .. } => panic!("unexpected block"),
            }
        }
        (vm, machine)
    }

    #[test]
    fn arithmetic_and_locals() {
        let (vm, _) = run_single(vec![
            SStmt::Let {
                var: "x".into(),
                value: SExpr::int(6).mul(SExpr::int(7)),
            },
            SStmt::Let {
                var: "y".into(),
                value: SExpr::var("x").imod(SExpr::int(10)),
            },
        ]);
        assert_eq!(vm.var("x"), Some(Scalar::Int(42)));
        assert_eq!(vm.var("y"), Some(Scalar::Int(2)));
    }

    #[test]
    fn loops_accumulate() {
        let (vm, _) = run_single(vec![
            SStmt::Let {
                var: "acc".into(),
                value: SExpr::int(0),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(10),
                step: SExpr::int(1),
                body: vec![SStmt::Let {
                    var: "acc".into(),
                    value: SExpr::var("acc").add(SExpr::var("i")),
                }],
            },
        ]);
        assert_eq!(vm.var("acc"), Some(Scalar::Int(55)));
    }

    #[test]
    fn buffers_read_write() {
        let (vm, _) = run_single(vec![
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(4),
            },
            SStmt::BufWrite {
                buf: "b".into(),
                idx: SExpr::int(2),
                value: SExpr::int(9),
            },
            SStmt::Let {
                var: "x".into(),
                value: SExpr::BufRead {
                    buf: "b".into(),
                    idx: Box::new(SExpr::int(2)),
                },
            },
        ]);
        assert_eq!(vm.var("x"), Some(Scalar::Int(9)));
        assert_eq!(vm.buf("b").unwrap()[2], Scalar::Int(9));
    }

    #[test]
    fn dist_array_local_access_on_single_proc() {
        let (vm, _) = run_single(vec![
            SStmt::AllocDist {
                array: "A".into(),
                rows: SExpr::int(2),
                cols: SExpr::int(2),
                dist: Dist::ColumnCyclic,
            },
            SStmt::AWriteGlobal {
                array: "A".into(),
                idx: vec![SExpr::int(2), SExpr::int(2)],
                value: SExpr::int(5),
            },
            SStmt::Let {
                var: "v".into(),
                value: SExpr::AReadGlobal {
                    array: "A".into(),
                    idx: vec![SExpr::int(2), SExpr::int(2)],
                },
            },
            SStmt::Let {
                var: "o".into(),
                value: SExpr::OwnerOf {
                    array: "A".into(),
                    idx: vec![SExpr::int(1), SExpr::int(2)],
                },
            },
        ]);
        assert_eq!(vm.var("v"), Some(Scalar::Int(5)));
        // One processor: everything is owned by P0.
        assert_eq!(vm.var("o"), Some(Scalar::Int(0)));
    }

    #[test]
    fn double_write_faults() {
        let code = Arc::new(
            lower(&[
                SStmt::AllocDist {
                    array: "A".into(),
                    rows: SExpr::int(1),
                    cols: SExpr::int(1),
                    dist: Dist::Replicated,
                },
                SStmt::AWrite {
                    array: "A".into(),
                    idx: vec![SExpr::int(1), SExpr::int(1)],
                    value: SExpr::int(1),
                },
                SStmt::AWrite {
                    array: "A".into(),
                    idx: vec![SExpr::int(1), SExpr::int(1)],
                    value: SExpr::int(2),
                },
            ])
            .unwrap(),
        );
        let mut vm = ProcVm::new(code);
        let mut machine = Machine::new(1, CostModel::zero());
        let mut result = Ok(Step::Ran);
        for _ in 0..100 {
            result = vm.step(&mut machine, ProcId(0));
            if result.is_err() || result == Ok(Step::Done) {
                break;
            }
        }
        let err = result.unwrap_err();
        assert!(err.to_string().contains("written twice"));
    }

    #[test]
    fn read_before_assignment_faults() {
        let code = Arc::new(
            lower(&[SStmt::Let {
                var: "y".into(),
                value: SExpr::var("x"),
            }])
            .unwrap(),
        );
        let mut vm = ProcVm::new(code);
        let mut machine = Machine::new(1, CostModel::zero());
        let err = vm.step(&mut machine, ProcId(0)).unwrap_err();
        assert!(err.to_string().contains("read before assignment"));
    }

    #[test]
    fn send_to_self_faults() {
        let code = Arc::new(
            lower(&[SStmt::Send {
                to: SExpr::my_node(),
                tag: 0,
                values: vec![SExpr::int(1)],
            }])
            .unwrap(),
        );
        let mut vm = ProcVm::new(code);
        let mut machine = Machine::new(2, CostModel::zero());
        let mut last = Ok(Step::Ran);
        for _ in 0..10 {
            last = vm.step(&mut machine, ProcId(0));
            if last.is_err() {
                break;
            }
        }
        assert!(last.unwrap_err().to_string().contains("send to self"));
    }

    #[test]
    fn snapshot_restore_round_trips_mid_run() {
        // Build a VM with every state class populated — locals, a
        // buffer, a dist array with a partially-written segment, and a
        // non-empty operand stack (snapshot mid-receive) — snapshot it,
        // resume the original, then restore a fresh VM from the image
        // and resume that: both must produce identical final state.
        let body = vec![
            SStmt::Let {
                var: "x".into(),
                value: SExpr::int(41),
            },
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(3),
            },
            SStmt::BufWrite {
                buf: "b".into(),
                idx: SExpr::int(1),
                value: SExpr::Float(2.5),
            },
            SStmt::AllocDist {
                array: "A".into(),
                rows: SExpr::int(2),
                cols: SExpr::int(3),
                dist: Dist::ColumnCyclic,
            },
            SStmt::AWriteGlobal {
                array: "A".into(),
                idx: vec![SExpr::int(2), SExpr::int(1)],
                value: SExpr::int(7),
            },
            SStmt::Recv {
                from: SExpr::int(1),
                tag: 0,
                into: vec![crate::ir::RecvTarget::Var("y".into())],
            },
            SStmt::Let {
                var: "z".into(),
                value: SExpr::var("x").add(SExpr::var("y")),
            },
        ];
        let code = Arc::new(lower(&body).unwrap());
        let mut vm = ProcVm::new(code.clone());
        let mut machine = Machine::new(2, CostModel::zero());
        // Run to the blocked receive; the pending source operand is on
        // the stack when we snapshot.
        loop {
            match vm.step(&mut machine, ProcId(0)).unwrap() {
                Step::BlockedOnRecv { .. } => break,
                Step::Ran => {}
                Step::Done => panic!("finished without blocking"),
            }
        }
        let image = vm.snapshot().expect("ProcVm is checkpointable");

        let finish = |vm: &mut ProcVm, machine: &mut Machine| {
            machine.send(ProcId(1), ProcId(0), Tag(0), encode(&[Scalar::Int(1)]));
            loop {
                if vm.step(machine, ProcId(0)).unwrap() == Step::Done {
                    break;
                }
            }
        };
        finish(&mut vm, &mut machine);

        let mut restored = ProcVm::new(code);
        assert!(restored.restore(&image), "image must be accepted");
        let mut machine2 = Machine::new(2, CostModel::zero());
        finish(&mut restored, &mut machine2);

        for v in ["x", "y", "z"] {
            assert_eq!(restored.var(v), vm.var(v), "var {v}");
        }
        assert_eq!(restored.buf("b"), vm.buf("b"));
        let (a, b) = (restored.array("A").unwrap(), vm.array("A").unwrap());
        assert_eq!(a.inst, b.inst);
        assert_eq!(a.local.full_count(), b.local.full_count());
        assert_eq!(a.local.peek(1, 1).copied(), b.local.peek(1, 1).copied());

        // A truncated or corrupt image is rejected, not misparsed.
        assert!(!ProcVm::new(Arc::new(lower(&body).unwrap())).restore(&image[..image.len() - 1]));
        assert!(!ProcVm::new(Arc::new(lower(&body).unwrap())).restore(b"garbage"));
    }

    #[test]
    fn recv_blocks_then_succeeds() {
        let code = Arc::new(
            lower(&[SStmt::Recv {
                from: SExpr::int(1),
                tag: 3,
                into: vec![crate::ir::RecvTarget::Var("x".into())],
            }])
            .unwrap(),
        );
        let mut vm = ProcVm::new(code);
        let mut machine = Machine::new(2, CostModel::zero());
        // Source expression evaluates, then the receive blocks.
        loop {
            match vm.step(&mut machine, ProcId(0)).unwrap() {
                Step::BlockedOnRecv { src, tag } => {
                    assert_eq!(src, ProcId(1));
                    assert_eq!(tag, Tag(3));
                    break;
                }
                Step::Ran => {}
                Step::Done => panic!("finished without blocking"),
            }
        }
        // Deliver the message and let it finish.
        machine.send(ProcId(1), ProcId(0), Tag(3), encode(&[Scalar::Int(77)]));
        loop {
            if vm.step(&mut machine, ProcId(0)).unwrap() == Step::Done {
                break;
            }
        }
        assert_eq!(vm.var("x"), Some(Scalar::Int(77)));
    }
}
