//! Scalar values of the SPMD machine and their wire encoding.

use pdc_machine::Word;
use std::fmt;

/// A scalar value: what locals hold, what I-structure cells store, and
/// what messages carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Scalar {
    /// Integer view.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Scalar::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Scalar::Int(v) => Some(v as f64),
            Scalar::Float(v) => Some(v),
            Scalar::Bool(_) => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Short type name for diagnostics.
    pub fn type_name(self) -> &'static str {
        match self {
            Scalar::Int(_) => "int",
            Scalar::Float(_) => "float",
            Scalar::Bool(_) => "bool",
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}

impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Bool(v)
    }
}

const TAG_INT: Word = 0;
const TAG_FLOAT: Word = 1;
const TAG_BOOL: Word = 2;

/// Encode scalars into machine words (two words per scalar: a type tag
/// and the payload bits). This plays the role of the iPSC's message
/// packing; the cost model charges per word.
pub fn encode(values: &[Scalar]) -> Vec<Word> {
    let mut out = Vec::with_capacity(values.len() * 2);
    encode_into(values, &mut out);
    out
}

/// [`encode`] into a caller-owned buffer, appending. Hot send paths
/// reuse one scratch allocation across the whole run.
pub fn encode_into(values: &[Scalar], out: &mut Vec<Word>) {
    out.reserve(values.len() * 2);
    for v in values {
        match v {
            Scalar::Int(x) => {
                out.push(TAG_INT);
                out.push(*x);
            }
            Scalar::Float(x) => {
                out.push(TAG_FLOAT);
                out.push(x.to_bits() as Word);
            }
            Scalar::Bool(x) => {
                out.push(TAG_BOOL);
                out.push(*x as Word);
            }
        }
    }
}

/// Decode a word stream produced by [`encode`]; `None` on a malformed
/// stream (odd length or unknown tag).
pub fn decode(words: &[Word]) -> Option<Vec<Scalar>> {
    let mut out = Vec::with_capacity(words.len() / 2);
    decode_into(words, &mut out).then_some(out)
}

/// [`decode`] into a caller-owned buffer, appending; `false` on a
/// malformed stream (the buffer may then hold a decoded prefix).
pub fn decode_into(words: &[Word], out: &mut Vec<Scalar>) -> bool {
    if !words.len().is_multiple_of(2) {
        return false;
    }
    out.reserve(words.len() / 2);
    for pair in words.chunks_exact(2) {
        let v = match pair[0] {
            TAG_INT => Scalar::Int(pair[1]),
            TAG_FLOAT => Scalar::Float(f64::from_bits(pair[1] as u64)),
            TAG_BOOL => Scalar::Bool(pair[1] != 0),
            _ => return false,
        };
        out.push(v);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed() {
        let vals = vec![
            Scalar::Int(-7),
            Scalar::Float(2.5),
            Scalar::Bool(true),
            Scalar::Float(f64::NEG_INFINITY),
        ];
        assert_eq!(decode(&encode(&vals)).unwrap(), vals);
    }

    #[test]
    fn malformed_streams_rejected() {
        assert!(decode(&[0]).is_none()); // odd length
        assert!(decode(&[99, 0]).is_none()); // unknown tag
    }

    #[test]
    fn views() {
        assert_eq!(Scalar::Int(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::Float(2.5).as_int(), None);
        assert_eq!(Scalar::Bool(true).as_bool(), Some(true));
        assert_eq!(Scalar::Int(1).type_name(), "int");
    }

    #[test]
    fn conversions() {
        assert_eq!(Scalar::from(5i64), Scalar::Int(5));
        assert_eq!(Scalar::from(1.5f64), Scalar::Float(1.5));
        assert_eq!(Scalar::from(true), Scalar::Bool(true));
    }
}
