//! The SPMD target layer: the intermediate representation the compiler
//! emits, a lowering to flat bytecode, and the virtual machine that
//! executes one bytecode program per simulated processor on the
//! `pdc-machine` fabric.
//!
//! The paper's compiler emits C for the iPSC/2 (Appendix A). Our analogue
//! of that C is the tree IR in [`ir`]: an imperative per-processor language
//! with mutable locals, plain buffers (the `oldvalues`/`snewvalues` arrays
//! of the appendix), distributed I-structure segments, typed asynchronous
//! sends (`csend`) and blocking receives (`crecv`), counted loops and
//! conditionals. The run-time system operations of the paper (`is_read`,
//! `is_write`, `column_local`, …) appear as IR primitives:
//!
//! * [`ir::SExpr::ARead`] / [`ir::SStmt::AWrite`] — I-structure access via
//!   *local* indices (what compile-time resolution emits);
//! * [`ir::SExpr::AReadGlobal`] / [`ir::SStmt::AWriteGlobal`] — access via
//!   *global* indices, with the mapping functions evaluated at run time
//!   (what run-time resolution emits);
//! * [`ir::SExpr::OwnerOf`] / [`ir::SExpr::LocalOf`] — the Map and Local
//!   functions of the domain decomposition (§2.3).
//!
//! Programs are lowered ([`lower`]) to a stack bytecode and run
//! ([`run::SpmdMachine`]) under the deterministic scheduler; afterwards the
//! distributed arrays can be *gathered* back into ordinary matrices for
//! verification against the sequential interpreter.
//!
//! # Examples
//!
//! ```
//! use pdc_machine::CostModel;
//! use pdc_spmd::ir::{SpmdProgram, SStmt, SExpr};
//! use pdc_spmd::run::SpmdMachine;
//!
//! // Two processors: P0 sends 41+1 to P1, P1 stores it in a local.
//! let p0 = vec![SStmt::If {
//!     cond: SExpr::my_node().eq(SExpr::int(0)),
//!     then: vec![SStmt::Send {
//!         to: SExpr::int(1),
//!         tag: 7,
//!         values: vec![SExpr::int(41).add(SExpr::int(1))],
//!     }],
//!     els: vec![SStmt::Recv {
//!         from: SExpr::int(0),
//!         tag: 7,
//!         into: vec![pdc_spmd::ir::RecvTarget::Var("x".into())],
//!     }],
//! }];
//! let prog = SpmdProgram::uniform(2, p0);
//! let mut m = SpmdMachine::new(&prog, CostModel::ipsc2())?;
//! let outcome = m.run()?;
//! assert_eq!(outcome.report.stats.network.messages, 1);
//! # Ok::<(), pdc_spmd::SpmdError>(())
//! ```

pub mod ir;
pub mod lower;
pub mod run;
pub mod scalar;
pub mod vm;

mod error;

pub use error::SpmdError;
pub use pdc_machine::Backend;
pub use scalar::Scalar;
