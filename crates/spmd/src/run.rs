//! Running a whole SPMD program and gathering the distributed results.

use crate::ir::SpmdProgram;
use crate::lower::lower;
use crate::scalar::Scalar;
use crate::vm::ProcVm;
use crate::SpmdError;
use pdc_istructure::IMatrix;
use pdc_machine::{
    Backend, CheckpointCfg, CostModel, FaultPlan, Machine, MetricsRegistry, Process, RelConfig,
    RunReport, Scheduler, ThreadedRunner,
};
use pdc_mapping::OwnerSet;
use std::sync::Arc;

/// Result of a completed SPMD run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scheduler/fabric report: per-processor clocks, traffic counters,
    /// total steps. `report.stats.makespan()` is the simulated execution
    /// time the paper's figures plot.
    pub report: RunReport,
}

/// An assembled SPMD execution: lowered per-processor code, the simulated
/// machine, and (after [`run`](SpmdMachine::run)) the final VM states for
/// inspection and gathering.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct SpmdMachine {
    machine: Machine,
    vms: Vec<ProcVm>,
    scheduler: Scheduler,
    backend: Backend,
    faults: Option<(FaultPlan, RelConfig)>,
    checkpoints: Option<CheckpointCfg>,
    ring_words: Option<usize>,
    metrics_full: bool,
    metrics_shared: Option<Arc<MetricsRegistry>>,
    ran: bool,
}

impl SpmdMachine {
    /// Lower `program` and set up a machine with one processor per body.
    ///
    /// # Errors
    ///
    /// [`SpmdError::Lower`] if any body fails to lower.
    pub fn new(program: &SpmdProgram, cost: CostModel) -> Result<Self, SpmdError> {
        Self::with_machine(program, Machine::new(program.n_procs(), cost))
    }

    /// Like [`new`](Self::new) but with a caller-configured machine (e.g.
    /// with tracing enabled).
    ///
    /// # Errors
    ///
    /// [`SpmdError::Lower`] if any body fails to lower.
    ///
    /// # Panics
    ///
    /// Panics if the machine size differs from the program's.
    pub fn with_machine(program: &SpmdProgram, machine: Machine) -> Result<Self, SpmdError> {
        assert_eq!(machine.n_procs(), program.n_procs(), "size mismatch");
        let mut vms = Vec::with_capacity(program.n_procs());
        for p in 0..program.n_procs() {
            let code = Arc::new(lower(program.body(p))?);
            vms.push(ProcVm::new(code));
        }
        Ok(SpmdMachine {
            machine,
            vms,
            scheduler: Scheduler::new(),
            backend: Backend::Simulated,
            faults: None,
            checkpoints: None,
            ring_words: None,
            metrics_full: false,
            metrics_shared: None,
            ran: false,
        })
    }

    /// Replace the default scheduler (to set step budgets in tests).
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Select the execution backend ([`Backend::Simulated`] by default).
    /// The threaded backend produces identical outputs, logical clocks and
    /// per-pair message counts; only wall-clock-dependent counters (step
    /// totals, peak in-flight) may differ.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable event tracing with a bounded buffer. Works on *both*
    /// backends — the run's [`RunReport`] carries the (flushed, merged)
    /// trace. On the simulator the cap is global; on the threaded
    /// backend it applies per processor.
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.machine.enable_trace(pdc_machine::Trace::bounded(cap));
        self
    }

    /// The configured execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Inject faults from `plan` and run under the reliable-delivery
    /// protocol with the default [`RelConfig`]. A [`FaultPlan::none`] plan
    /// is a no-op: the run takes the vanilla fast path and is bit-identical
    /// to a run without this call. Program outputs under a lossy plan are
    /// identical to a fault-free run; only timing and the
    /// [`FaultReport`](pdc_machine::FaultReport) differ.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.with_faults_cfg(plan, RelConfig::default())
    }

    /// Like [`with_faults`](Self::with_faults) with an explicit
    /// retransmission policy.
    pub fn with_faults_cfg(mut self, plan: FaultPlan, cfg: RelConfig) -> Self {
        self.faults = if plan.is_none() {
            None
        } else {
            Some((plan, cfg))
        };
        self
    }

    /// Force the reliable-delivery protocol even with no faults to inject.
    /// Useful for measuring protocol overhead: sequencing, acks, and
    /// timers all run, but nothing is ever dropped.
    pub fn with_reliable_delivery(mut self, cfg: RelConfig) -> Self {
        self.faults = Some((FaultPlan::none(), cfg));
        self
    }

    /// Checkpoint every processor's complete state at `cfg`'s interval
    /// and restart any crashed processor from its last [`Checkpoint`]
    /// (see [`Scheduler::run_recoverable`]). Works on both backends
    /// (coordinated snapshot mode is simulator-only) and implies the
    /// reliable-delivery protocol: recovery replays the lost suffix
    /// through the retransmit path, so a crashed-and-recovered run
    /// produces the same outputs as a fault-free one.
    ///
    /// [`Checkpoint`]: pdc_machine::Checkpoint
    pub fn with_checkpoints(mut self, cfg: CheckpointCfg) -> Self {
        self.checkpoints = Some(cfg);
        self
    }

    /// Record full runtime metrics (counters, histograms, per-channel
    /// tables) on whichever backend runs. The flight recorder is always
    /// on regardless; this enables everything else. The run's
    /// [`RunReport`] carries the final
    /// [`MetricsSnapshot`](pdc_machine::MetricsSnapshot), whose
    /// [`logical`](pdc_machine::MetricsSnapshot::logical) projection
    /// is backend-independent on fault-free runs.
    pub fn with_metrics(mut self) -> Self {
        self.metrics_full = true;
        self
    }

    /// Like [`with_metrics`](Self::with_metrics) but recording into a
    /// caller-owned registry, so a live sampler (the `monitor` bench)
    /// can read counters while the run is in progress.
    ///
    /// The registry must have one shard per processor; the backends
    /// panic at run time on a mismatch.
    pub fn with_metrics_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics_shared = Some(registry);
        self
    }

    /// Override the threaded backend's per-link ring capacity in words
    /// (power of two, ≥ 8). Results are identical at any capacity —
    /// frames larger than the ring stream through in chunks — so this
    /// knob exists for differential tests that want to hammer the
    /// wraparound and chunking paths. Ignored on the simulator.
    pub fn with_ring_capacity(mut self, words: usize) -> Self {
        self.ring_words = Some(words);
        self
    }

    /// Execute to completion.
    ///
    /// # Errors
    ///
    /// Deadlocks, process faults, and budget exhaustion surface as
    /// [`SpmdError::Machine`]. Under [`Backend::Threaded`], a cyclic
    /// deadlock surfaces as a receive timeout rather than a global
    /// no-progress diagnosis.
    pub fn run(&mut self) -> Result<RunOutcome, SpmdError> {
        let report = match self.backend {
            Backend::Simulated => {
                if let Some(r) = &self.metrics_shared {
                    self.machine.enable_metrics(Arc::clone(r));
                } else if self.metrics_full {
                    let n = self.machine.n_procs();
                    self.machine
                        .enable_metrics(Arc::new(MetricsRegistry::new(n)));
                }
                let mut refs: Vec<&mut dyn Process> =
                    self.vms.iter_mut().map(|v| v as &mut dyn Process).collect();
                match (&self.faults, self.checkpoints) {
                    (Some((plan, cfg)), ckpt) => self.scheduler.run_recoverable(
                        &mut self.machine,
                        &mut refs,
                        plan,
                        *cfg,
                        ckpt,
                    )?,
                    (None, Some(ckpt)) => self.scheduler.run_recoverable(
                        &mut self.machine,
                        &mut refs,
                        &FaultPlan::none(),
                        RelConfig::default(),
                        Some(ckpt),
                    )?,
                    (None, None) => self.scheduler.run(&mut self.machine, &mut refs)?,
                }
            }
            Backend::Threaded { recv_timeout } => {
                let mut runner =
                    ThreadedRunner::new(*self.machine.cost_model()).with_recv_timeout(recv_timeout);
                if let Some((plan, cfg)) = &self.faults {
                    runner = runner.with_faults(plan.clone(), *cfg);
                }
                if let Some(ckpt) = self.checkpoints {
                    runner = runner.with_checkpoints(ckpt);
                }
                if let Some(words) = self.ring_words {
                    runner = runner.with_ring_capacity(words);
                }
                if let Some(r) = &self.metrics_shared {
                    runner = runner.with_metrics_registry(Arc::clone(r));
                } else if self.metrics_full {
                    runner = runner.with_metrics();
                }
                // Forward the machine's trace configuration — dropping it
                // here is exactly the silently-empty-trace bug this layer
                // regression-tests against.
                if self.machine.trace().is_enabled() {
                    runner = runner.with_trace_config(self.machine.trace());
                }
                runner.run(&mut self.vms)?
            }
        };
        self.ran = true;
        Ok(RunOutcome { report })
    }

    /// The underlying machine (for stats and traces).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The VM state of processor `p` (for white-box assertions in tests).
    pub fn vm(&self, p: usize) -> &ProcVm {
        &self.vms[p]
    }

    /// Distribute an input matrix across the machine under `dist` before
    /// running: each processor receives its local segment with its owned
    /// cells filled in. Mirrors the paper's assumption that input data is
    /// already resident per the domain decomposition.
    ///
    /// Only written (full) cells of `data` are copied; empty cells stay
    /// empty in the segments.
    pub fn preload_array(&mut self, name: &str, dist: pdc_mapping::Dist, data: &IMatrix<Scalar>) {
        let n = self.vms.len();
        for (p, vm) in self.vms.iter_mut().enumerate() {
            let mut arr = crate::vm::DistArray::alloc(dist.clone(), data.rows(), data.cols(), n);
            for (i, j) in arr.inst.owned_cells(p).collect::<Vec<_>>() {
                if let Some(v) = data.peek(i, j) {
                    let (li, lj) = arr.inst.local(i, j);
                    arr.local
                        .write(li, lj, *v)
                        .expect("fresh segment accepts first writes");
                }
            }
            vm.preload_array(name, arr);
        }
    }

    /// Bind a scalar entry parameter on every processor before running.
    pub fn preset_var(&mut self, name: &str, value: Scalar) {
        for vm in &mut self.vms {
            vm.preset_var(name, value);
        }
    }

    /// Reassemble distributed array `name` into a global matrix by
    /// applying the inverse of the Map/Local functions to every owner's
    /// segment. Cells never written anywhere remain empty in the result.
    ///
    /// # Errors
    ///
    /// [`SpmdError::Gather`] if no processor allocated `name`, or if the
    /// owners' segments disagree on extents.
    pub fn gather(&self, name: &str) -> Result<IMatrix<Scalar>, SpmdError> {
        let mut extents: Option<(usize, usize)> = None;
        for vm in &self.vms {
            if let Some(a) = vm.array(name) {
                let e = a.inst.extents();
                match extents {
                    None => extents = Some(e),
                    Some(prev) if prev != e => {
                        return Err(SpmdError::Gather {
                            message: format!(
                                "array `{name}` has inconsistent extents {prev:?} vs {e:?}"
                            ),
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        let Some((rows, cols)) = extents else {
            return Err(SpmdError::Gather {
                message: format!("array `{name}` was never allocated"),
            });
        };
        let mut out = IMatrix::new(rows, cols);
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                // Find the owning processor's segment.
                let owner = self.vms.iter().enumerate().find_map(|(p, vm)| {
                    let a = vm.array(name)?;
                    match a.inst.owner(i, j) {
                        OwnerSet::One(q) if q == p => Some((p, a)),
                        OwnerSet::All if p == 0 => Some((p, a)),
                        _ => None,
                    }
                });
                let Some((_, a)) = owner else { continue };
                let (li, lj) = a.inst.local(i, j);
                if let Some(v) = a.local.peek(li, lj) {
                    out.write(i, j, *v).expect("fresh gather target");
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RecvTarget, SExpr, SStmt};
    use pdc_mapping::Dist;

    /// A two-processor program: each processor writes its own columns of a
    /// column-cyclic 4x4 array with i*10+j.
    fn owner_writes_program() -> SpmdProgram {
        let body = vec![
            SStmt::AllocDist {
                array: "A".into(),
                rows: SExpr::int(4),
                cols: SExpr::int(4),
                dist: Dist::ColumnCyclic,
            },
            SStmt::For {
                var: "j".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(4),
                step: SExpr::int(1),
                body: vec![SStmt::If {
                    cond: SExpr::OwnerOf {
                        array: "A".into(),
                        idx: vec![SExpr::int(1), SExpr::var("j")],
                    }
                    .eq(SExpr::my_node()),
                    then: vec![SStmt::For {
                        var: "i".into(),
                        lo: SExpr::int(1),
                        hi: SExpr::int(4),
                        step: SExpr::int(1),
                        body: vec![SStmt::AWriteGlobal {
                            array: "A".into(),
                            idx: vec![SExpr::var("i"), SExpr::var("j")],
                            value: SExpr::var("i").mul(SExpr::int(10)).add(SExpr::var("j")),
                        }],
                    }],
                    els: vec![],
                }],
            },
        ];
        SpmdProgram::uniform(2, body)
    }

    #[test]
    fn gather_reassembles_column_cyclic() {
        let prog = owner_writes_program();
        let mut m = SpmdMachine::new(&prog, CostModel::zero()).unwrap();
        m.run().unwrap();
        let g = m.gather("A").unwrap();
        assert!(g.is_fully_defined());
        for i in 1..=4 {
            for j in 1..=4 {
                assert_eq!(g.peek(i, j), Some(&Scalar::Int(i * 10 + j)));
            }
        }
    }

    #[test]
    fn ping_pong_roundtrip_and_makespan() {
        let cost = CostModel::ipsc2();
        let p0 = vec![
            SStmt::Send {
                to: SExpr::int(1),
                tag: 1,
                values: vec![SExpr::int(21)],
            },
            SStmt::Recv {
                from: SExpr::int(1),
                tag: 2,
                into: vec![RecvTarget::Var("r".into())],
            },
        ];
        let p1 = vec![
            SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            },
            SStmt::Send {
                to: SExpr::int(0),
                tag: 2,
                values: vec![SExpr::var("x").mul(SExpr::int(2))],
            },
        ];
        let prog = SpmdProgram::new(vec![p0, p1]);
        let mut m = SpmdMachine::new(&prog, cost).unwrap();
        let out = m.run().unwrap();
        assert_eq!(m.vm(0).var("r"), Some(Scalar::Int(42)));
        assert_eq!(out.report.stats.network.messages, 2);
        assert_eq!(out.report.undelivered, 0);
        // Round trip: two sends, two flights, two receives (one scalar
        // encodes as two wire words), one multiply, and three variable
        // accesses (store x, load x, store r).
        let expected = 2 * (cost.send_cost(2) + cost.flight + cost.recv_cost(2))
            + cost.alu_op
            + 3 * cost.mem_op;
        assert_eq!(out.report.stats.makespan().0, expected);
    }

    #[test]
    fn threaded_backend_matches_simulated_makespan() {
        // Same ping-pong as above, run on real threads: outputs, message
        // counts and logical makespan must be identical because arrival
        // stamps travel inside the messages.
        let cost = CostModel::ipsc2();
        let p0 = vec![
            SStmt::Send {
                to: SExpr::int(1),
                tag: 1,
                values: vec![SExpr::int(21)],
            },
            SStmt::Recv {
                from: SExpr::int(1),
                tag: 2,
                into: vec![RecvTarget::Var("r".into())],
            },
        ];
        let p1 = vec![
            SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            },
            SStmt::Send {
                to: SExpr::int(0),
                tag: 2,
                values: vec![SExpr::var("x").mul(SExpr::int(2))],
            },
        ];
        let prog = SpmdProgram::new(vec![p0, p1]);

        let mut sim = SpmdMachine::new(&prog, cost).unwrap();
        let sim_out = sim.run().unwrap();
        let mut thr = SpmdMachine::new(&prog, cost)
            .unwrap()
            .with_backend(Backend::threaded());
        let thr_out = thr.run().unwrap();

        assert_eq!(thr.vm(0).var("r"), Some(Scalar::Int(42)));
        assert_eq!(
            thr_out.report.stats.makespan(),
            sim_out.report.stats.makespan()
        );
        assert_eq!(thr_out.report.pair_messages, sim_out.report.pair_messages);
        assert_eq!(thr_out.report.undelivered, 0);
    }

    #[test]
    fn metrics_agree_across_backends() {
        // The ping-pong with full metrics on: logical projections must be
        // identical, and the VM scratch arenas must register their first
        // (growing) use on both backends.
        let cost = CostModel::ipsc2();
        let p0 = vec![
            SStmt::Send {
                to: SExpr::int(1),
                tag: 1,
                values: vec![SExpr::int(21)],
            },
            SStmt::Recv {
                from: SExpr::int(1),
                tag: 2,
                into: vec![RecvTarget::Var("r".into())],
            },
        ];
        let p1 = vec![
            SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            },
            SStmt::Send {
                to: SExpr::int(0),
                tag: 2,
                values: vec![SExpr::var("x").mul(SExpr::int(2))],
            },
        ];
        let prog = SpmdProgram::new(vec![p0, p1]);

        let mut sim = SpmdMachine::new(&prog, cost).unwrap().with_metrics();
        let sim_out = sim.run().unwrap();
        let mut thr = SpmdMachine::new(&prog, cost)
            .unwrap()
            .with_backend(Backend::threaded())
            .with_metrics();
        let thr_out = thr.run().unwrap();

        use pdc_machine::Ctr;
        let (sm, tm) = (&sim_out.report.metrics, &thr_out.report.metrics);
        assert!(sm.full && tm.full);
        assert_eq!(sm.logical(), tm.logical());
        assert_eq!(sm.total(Ctr::FramesSent), 2);
        assert_eq!(sm.total(Ctr::FramesRecvd), 2);
        // One scalar = two wire words on each of the two messages.
        assert_eq!(sm.total(Ctr::WordsSent), 4);
        // First use of each scratch arena grows it from empty — except
        // P1's send, whose wire buffer was already grown by the receive
        // that preceded it.
        assert_eq!(sm.total(Ctr::ScratchGrow), 3);
        assert_eq!(sm.total(Ctr::ScratchReuse), 1);
        assert_eq!(sm.out_by_triple(), tm.out_by_triple());
        // Per-channel frame counts from the metrics layer match the
        // scheduler's own accounting, triple for triple.
        let by_triple = sm.out_by_triple();
        assert_eq!(by_triple.len(), sim_out.report.pair_messages.len());
        for (&(src, dst, tag), &n) in &sim_out.report.pair_messages {
            let frames = by_triple
                .iter()
                .find(|&&((s, d, t), _)| (s, d, t) == (src.0 as u64, dst.0 as u64, tag.0 as u64))
                .map_or(0, |&(_, (frames, _))| frames);
            assert_eq!(frames, n, "channel ({src}, {dst}, {tag:?})");
        }
    }

    #[test]
    fn threaded_deadlock_times_out() {
        // Two processors each waiting on the other: the threaded backend
        // cannot diagnose the cycle globally, so it must surface a receive
        // timeout rather than hang.
        let body = vec![SStmt::Recv {
            from: SExpr::int(1).sub(SExpr::my_node()),
            tag: 0,
            into: vec![RecvTarget::Var("x".into())],
        }];
        let prog = SpmdProgram::uniform(2, body);
        let mut m = SpmdMachine::new(&prog, CostModel::zero())
            .unwrap()
            .with_backend(Backend::Threaded {
                recv_timeout: std::time::Duration::from_millis(50),
            });
        let err = m.run().unwrap_err();
        assert!(err.to_string().contains("timeout"), "got: {err}");
    }

    #[test]
    fn deadlock_surfaces_as_error() {
        let body = vec![SStmt::Recv {
            from: SExpr::int(1).sub(SExpr::my_node()),
            tag: 0,
            into: vec![RecvTarget::Var("x".into())],
        }];
        let prog = SpmdProgram::uniform(2, body);
        let mut m = SpmdMachine::new(&prog, CostModel::zero()).unwrap();
        let err = m.run().unwrap_err();
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn lossy_faults_do_not_change_outputs() {
        // The ping-pong under a lossy plan: the reliability layer must
        // recover the exact program-level traffic on both backends.
        let cost = CostModel::ipsc2();
        let p0 = vec![
            SStmt::Send {
                to: SExpr::int(1),
                tag: 1,
                values: vec![SExpr::int(21)],
            },
            SStmt::Recv {
                from: SExpr::int(1),
                tag: 2,
                into: vec![RecvTarget::Var("r".into())],
            },
        ];
        let p1 = vec![
            SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            },
            SStmt::Send {
                to: SExpr::int(0),
                tag: 2,
                values: vec![SExpr::var("x").mul(SExpr::int(2))],
            },
        ];
        let prog = SpmdProgram::new(vec![p0, p1]);
        let plan = pdc_machine::FaultPlan::seeded(11)
            .with_drops(300)
            .with_dups(150)
            .with_fault_budget(4);
        let cfg = pdc_machine::RelConfig {
            rto_wall: std::time::Duration::from_millis(2),
            ..Default::default()
        };

        for backend in [Backend::Simulated, Backend::threaded()] {
            let mut m = SpmdMachine::new(&prog, cost)
                .unwrap()
                .with_backend(backend)
                .with_faults_cfg(plan.clone(), cfg);
            let out = m.run().unwrap();
            assert_eq!(m.vm(0).var("r"), Some(Scalar::Int(42)), "{backend:?}");
            assert_eq!(out.report.undelivered, 0);
            assert!(out.report.fault.is_some(), "reliable run reports faults");
        }
    }

    #[test]
    fn empty_fault_plan_takes_vanilla_path() {
        // FaultPlan::none() must be bit-identical to not calling
        // with_faults at all: same makespan, same counters, no report.
        let prog = owner_writes_program();
        let mut plain = SpmdMachine::new(&prog, CostModel::ipsc2()).unwrap();
        let plain_out = plain.run().unwrap();
        let mut none = SpmdMachine::new(&prog, CostModel::ipsc2())
            .unwrap()
            .with_faults(pdc_machine::FaultPlan::none());
        let none_out = none.run().unwrap();
        assert_eq!(none_out.report.stats, plain_out.report.stats);
        assert_eq!(none_out.report.fault, None, "no reliability layer ran");
    }

    #[test]
    fn gather_unknown_array_errors() {
        let prog = SpmdProgram::uniform(
            1,
            vec![SStmt::Let {
                var: "x".into(),
                value: SExpr::int(1),
            }],
        );
        let mut m = SpmdMachine::new(&prog, CostModel::zero()).unwrap();
        m.run().unwrap();
        assert!(m.gather("nope").is_err());
    }

    #[test]
    fn buffer_block_transfer() {
        // P0 fills a buffer and sends a 3-element block; P1 receives it
        // into the middle of its own buffer.
        let p0 = vec![
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(5),
            },
            SStmt::For {
                var: "i".into(),
                lo: SExpr::int(0),
                hi: SExpr::int(4),
                step: SExpr::int(1),
                body: vec![SStmt::BufWrite {
                    buf: "b".into(),
                    idx: SExpr::var("i"),
                    value: SExpr::var("i").mul(SExpr::int(11)),
                }],
            },
            SStmt::SendBuf {
                to: SExpr::int(1),
                tag: 9,
                buf: "b".into(),
                lo: SExpr::int(1),
                hi: SExpr::int(3),
            },
        ];
        let p1 = vec![
            SStmt::AllocBuf {
                buf: "c".into(),
                len: SExpr::int(10),
            },
            SStmt::RecvBuf {
                from: SExpr::int(0),
                tag: 9,
                buf: "c".into(),
                lo: SExpr::int(4),
                hi: SExpr::int(6),
            },
        ];
        let prog = SpmdProgram::new(vec![p0, p1]);
        let mut m = SpmdMachine::new(&prog, CostModel::ipsc2()).unwrap();
        let out = m.run().unwrap();
        assert_eq!(out.report.stats.network.messages, 1);
        let c = m.vm(1).buf("c").unwrap();
        assert_eq!(
            &c[4..=6],
            &[Scalar::Int(11), Scalar::Int(22), Scalar::Int(33)]
        );
        assert_eq!(c[0], Scalar::Int(0));
    }

    #[test]
    fn replicated_array_gathers_from_p0() {
        let body = vec![
            SStmt::AllocDist {
                array: "R".into(),
                rows: SExpr::int(1),
                cols: SExpr::int(2),
                dist: Dist::Replicated,
            },
            SStmt::AWriteGlobal {
                array: "R".into(),
                idx: vec![SExpr::int(1), SExpr::int(1)],
                value: SExpr::my_node().add(SExpr::int(100)),
            },
        ];
        let prog = SpmdProgram::uniform(3, body);
        let mut m = SpmdMachine::new(&prog, CostModel::zero()).unwrap();
        m.run().unwrap();
        let g = m.gather("R").unwrap();
        // P0's copy wins for replicated arrays.
        assert_eq!(g.peek(1, 1), Some(&Scalar::Int(100)));
        assert_eq!(g.peek(1, 2), None);
    }
}
