//! Source-level dependence lints over the inlined program body.
//!
//! Runs the exact loop-dependence framework ([`pdc_depend`]) on every
//! outermost `for` nest of the (inlined) source program and turns the
//! results into [`Phase::Depend`] remarks:
//!
//! * one `applied` summary per nest — loop variables, access and
//!   dependence counts, and the full list of dependences with their
//!   direction/distance vectors — so a report reader can see exactly
//!   what the optimization passes were allowed to assume;
//! * one `missed` **hotspot lint** per loop-carried dependence that
//!   crosses a distributed dimension of the array's decomposition: the
//!   source and sink subscripts differ in a dimension the decomposition
//!   splits across processors, so every carried instance is a message
//!   and the carrying loop serializes into a wavefront;
//! * one `missed` remark per nest whose analysis is inexact, carrying
//!   the reason — the honest "I don't know" that also gates the passes.
//!
//! The lint is deliberately *about the source program*, not the
//! compiled communication: `pdc-analyze`'s replay checks what messages
//! the compiler emitted; this lint explains *why* they are forced, from
//! the dependence structure alone.

use pdc_depend::ast::analyze_for_env;
use pdc_depend::{Access, Dependence};
use pdc_lang::ast::{BinOp, Block, Expr, ExprKind, Stmt};
use pdc_mapping::{Decomposition, Dist};
use pdc_report::{Phase, Remark, RemarkKind};
use std::collections::BTreeMap;

/// The array dimensions a distribution splits across processors.
///
/// A dependence whose subscripts agree in every distributed dimension
/// stays on one processor (the owner of both endpoints is the same);
/// only a difference in a distributed dimension can force a message.
fn distributed_dims(d: &Dist) -> &'static [usize] {
    match d {
        Dist::Replicated | Dist::OnProcessor(_) => &[],
        Dist::ColumnCyclic
        | Dist::ColumnBlock
        | Dist::ColumnBlockCyclic { .. }
        | Dist::ColumnAssigned { .. } => &[1],
        Dist::RowCyclic | Dist::RowBlock | Dist::RowBlockCyclic { .. } => &[0],
        Dist::Block2d { .. } => &[0, 1],
    }
}

/// Does `dep` connect two accesses whose subscripts differ in one of
/// the array's distributed dimensions?
///
/// Compares the canonical subscript forms dimension-wise; a dimension
/// the analysis could not canonicalize (`subs == None`) never reaches
/// here because such accesses make the analysis inexact and the caller
/// reports that separately.
fn crosses_distribution(dep: &Dependence, accesses: &[Access], dims: &[usize]) -> bool {
    let (Some(src), Some(dst)) = (accesses.get(dep.src), accesses.get(dep.dst)) else {
        return false;
    };
    let (Some(ss), Some(ds)) = (&src.subs, &dst.subs) else {
        return false;
    };
    dims.iter().any(|&k| ss.get(k) != ds.get(k))
}

/// Run the dependence framework over every outermost `for` nest in
/// `body` and render the results as [`Phase::Depend`] remarks.
///
/// `env` maps compile-time constants (problem sizes) to values so
/// symbolic bounds and subscripts canonicalize; `decomp` supplies the
/// distribution used by the cross-processor hotspot lint.
pub fn depend_remarks(
    body: &Block,
    decomp: &Decomposition,
    env: &BTreeMap<String, i64>,
) -> Vec<Remark> {
    let env = propagate_consts(body, env);
    let mut nests = Vec::new();
    collect_nests(body, &mut nests);
    let mut out = Vec::new();
    for nest in nests {
        let info = analyze_for_env(nest, &env);
        let vars: Vec<&str> = info.loops.iter().map(|l| l.var.as_str()).collect();
        let carried = info.loop_carried().count();
        let mut summary = Remark::new(
            Phase::Depend,
            RemarkKind::Applied,
            format!("analyzed dependences of the `{}` nest", vars.join("`/`")),
        )
        .with_span(nest.span())
        .detail("loops", info.loops.len())
        .detail("accesses", info.accesses.len())
        .detail("dependences", info.deps.len())
        .detail("carried", carried)
        .detail("exact", info.exact);
        for (k, d) in info.deps.iter().enumerate() {
            summary = summary.detail(format!("dep{k}"), d.describe());
        }
        out.push(summary);

        if !info.exact {
            let why = info
                .notes
                .first()
                .cloned()
                .unwrap_or_else(|| "subscripts or bounds are not affine".into());
            out.push(
                Remark::new(
                    Phase::Depend,
                    RemarkKind::Missed,
                    format!(
                        "dependence analysis of the `{}` nest is inexact; \
                         optimization passes treat the nest conservatively",
                        vars.join("`/`")
                    ),
                )
                .with_span(nest.span())
                .detail("reason", why),
            );
        }

        for d in info.deps.iter().filter(|d| d.is_loop_carried()) {
            let Some(dist) = decomp.array_dist(&d.array) else {
                continue;
            };
            let dims = distributed_dims(&dist);
            if dims.is_empty() || !crosses_distribution(d, &info.accesses, dims) {
                continue;
            }
            let span = info
                .accesses
                .get(d.dst)
                .and_then(|a| a.span)
                .or_else(|| info.accesses.get(d.src).and_then(|a| a.span))
                .unwrap_or_else(|| nest.span());
            out.push(
                Remark::new(
                    Phase::Depend,
                    RemarkKind::Missed,
                    format!(
                        "loop-carried dependence on `{}` crosses its distributed \
                         dimension: every carried instance is a message and the \
                         carrying loop serializes into a wavefront",
                        d.array
                    ),
                )
                .with_span(span)
                .detail("dependence", d.describe())
                .detail("distribution", dist),
            );
        }
    }
    out
}

/// Straight-line constant propagation over the body's top-level `let`
/// bindings: the inliner renames callee parameters (`n` becomes e.g.
/// `__i1_n = n`), so the caller's compile-time constants only reach the
/// inlined nests by following those copies.
fn propagate_consts(body: &Block, env: &BTreeMap<String, i64>) -> BTreeMap<String, i64> {
    let mut env = env.clone();
    for s in &body.stmts {
        if let Stmt::Let { name, init, .. } = s {
            if let Some(v) = eval_const(init, &env) {
                env.insert(name.clone(), v);
            }
        }
    }
    env
}

/// Evaluate `e` to an integer if it only mentions literals, known
/// constants, and total integer arithmetic.
fn eval_const(e: &Expr, env: &BTreeMap<String, i64>) -> Option<i64> {
    match &e.kind {
        ExprKind::Int(v) => Some(*v),
        ExprKind::Var(name) => env.get(name).copied(),
        ExprKind::Binary { op, lhs, rhs } => {
            let (a, b) = (eval_const(lhs, env)?, eval_const(rhs, env)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Outermost `for` statements of `body`, recursing through `if` arms
/// (both branches may run) but never into a `for` body — inner loops
/// belong to the enclosing nest's analysis.
fn collect_nests<'b>(body: &'b Block, out: &mut Vec<&'b Stmt>) {
    for s in &body.stmts {
        match s {
            Stmt::For { .. } => out.push(s),
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                collect_nests(then_blk, out);
                if let Some(e) = else_blk {
                    collect_nests(e, out);
                }
            }
            _ => {}
        }
    }
}
