//! Static communication-safety analyzer for compiled SPMD programs.
//!
//! Runs after code generation and optimization, before execution, over
//! the same abstract iteration-space walk as the message-cost model
//! ([`pdc_report::interp`]). Where the cost model *counts* the
//! communication, this crate *checks* it:
//!
//! * **Send/recv matching** — for every `(src, dst, tag)` channel the
//!   multiset of messages sent must equal the multiset received;
//!   unmatched receives, orphaned sends, and per-message shape (arity)
//!   mismatches are flagged.
//! * **Deadlock freedom** — the per-processor event streams are replayed
//!   under the abstract semantics (sends are asynchronous, receives
//!   block on their per-channel FIFO). The replay is *confluent*: sends
//!   only ever add to a channel and each channel has a single consumer
//!   that drains it in program order, so the reachable stuck state is
//!   independent of interleaving. If the replay sticks, the wait-for
//!   graph over the blocked receives is reported — either a cycle (true
//!   deadlock, with the full blocking chain) or a receive with no
//!   matching send left anywhere (an unsatisfiable receive).
//! * **Single assignment** — two statically placed writes to the same
//!   I-structure element (same owner, same local slot) are the compiled
//!   form of an I-structure double write and are flagged before the
//!   run-time error can happen.
//! * **Lints** — dead sends (sent but never received), self-sends (the
//!   machine faults on them), and receives into variables that are never
//!   read.
//!
//! Everything is sound *relative to exactness*: when the walk loses
//! precision (data-dependent control flow, unknown extents), the event
//! streams are under-approximations, so the analyzer degrades honestly —
//! it reports `exact = false` with notes, suppresses the checks that
//! would be unsound, and never claims a program verified. On the paper's
//! wavefront and Jacobi programs the walk is exact at every optimization
//! level, and [`AnalysisReport::verified`] is a proof of deadlock
//! freedom and matched communication for the given problem size.

use pdc_mapping::DistInstance;
use pdc_report::interp::{self, Events, RecvSink};
use pdc_report::{Phase, Remark, RemarkKind};
use pdc_spmd::ir::{RecvTarget, SpmdProgram};
use std::collections::{BTreeMap, BTreeSet, HashMap};

mod depend;
pub use depend::depend_remarks;

/// Diagnostic severity: errors predict a run-time fault or deadlock;
/// warnings flag suspicious-but-runnable communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program will fault, deadlock, or corrupt an I-structure.
    Error,
    /// The program runs, but the communication is wasteful or dubious.
    Warning,
}

/// What kind of defect a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagKind {
    /// Send and receive counts disagree on a channel.
    UnmatchedChannel,
    /// Counts agree but the i-th message's size differs from what the
    /// i-th receive expects (a run-time arity fault).
    ShapeMismatch,
    /// A cycle in the wait-for graph: a true deadlock.
    DeadlockCycle,
    /// A blocked receive with no matching send remaining anywhere.
    UnsatisfiedRecv,
    /// Two statically placed writes to the same I-structure element.
    DoubleWrite,
    /// A processor sends to itself (the machine faults on delivery).
    SelfSend,
    /// Messages sent on a channel nobody ever receives from.
    DeadSend,
    /// A receive whose target variable or buffer is never read.
    UnusedRecv,
}

impl DiagKind {
    /// Stable lower-case identifier used in JSON and remark details.
    pub fn slug(self) -> &'static str {
        match self {
            DiagKind::UnmatchedChannel => "unmatched-channel",
            DiagKind::ShapeMismatch => "shape-mismatch",
            DiagKind::DeadlockCycle => "deadlock-cycle",
            DiagKind::UnsatisfiedRecv => "unsatisfied-recv",
            DiagKind::DoubleWrite => "double-write",
            DiagKind::SelfSend => "self-send",
            DiagKind::DeadSend => "dead-send",
            DiagKind::UnusedRecv => "unused-recv",
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What kind of defect.
    pub kind: DiagKind,
    /// Error (faults/deadlocks) or warning (lint).
    pub severity: Severity,
    /// Human-readable, one-line message.
    pub message: String,
    /// Message tag the finding concerns, when it has one; the driver
    /// resolves this to a source span through its tag→span map.
    pub tag: Option<u32>,
    /// Array the finding concerns (double writes), for span resolution
    /// through the source program.
    pub array: Option<String>,
    /// Processor the finding is anchored to, when meaningful.
    pub proc: Option<usize>,
}

/// Observed traffic on one `(src, dst, tag)` channel — both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelFlow {
    /// Messages sent.
    pub sent: u64,
    /// Receives posted.
    pub received: u64,
    /// Payload words sent.
    pub sent_words: u64,
    /// Payload words the receives expect.
    pub recv_words: u64,
}

/// The result of statically analyzing one SPMD program.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All findings, errors first within each check, in deterministic
    /// order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-channel observed flow (self-send channels excluded — those
    /// messages are never delivered).
    pub channels: BTreeMap<(usize, usize, u32), ChannelFlow>,
    /// True when the abstract walk lost no precision: the event streams
    /// are then equalities and `verified()` is a proof.
    pub exact: bool,
    /// Why exactness was lost (empty when `exact`).
    pub notes: Vec<String>,
}

impl AnalysisReport {
    /// Did the analyzer *prove* the program safe? Requires an exact walk
    /// and no error-severity findings. Warnings do not block
    /// verification.
    pub fn verified(&self) -> bool {
        self.exact && !self.has_errors()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Render the report as `analyze`-phase remarks: one `Applied`
    /// remark when the program verifies, one `Missed` remark per
    /// finding, and one `Missed` remark when exactness was lost.
    pub fn remarks(&self) -> Vec<Remark> {
        let mut out = Vec::new();
        if self.verified() {
            let mut r = Remark::new(
                Phase::Analyze,
                RemarkKind::Applied,
                "verified: deadlock-free, all channels matched, single assignment holds",
            )
            .detail("channels", self.channels.len());
            let msgs: u64 = self.channels.values().map(|c| c.sent).sum();
            r = r.detail("messages", msgs);
            out.push(r);
        }
        for d in &self.diagnostics {
            let mut r = Remark::new(Phase::Analyze, RemarkKind::Missed, d.message.clone())
                .detail("check", d.kind.slug())
                .detail(
                    "severity",
                    match d.severity {
                        Severity::Error => "error",
                        Severity::Warning => "warning",
                    },
                );
            if let Some(t) = d.tag {
                r = r.with_tag(t);
            }
            out.push(r);
        }
        if !self.exact {
            let mut r = Remark::new(
                Phase::Analyze,
                RemarkKind::Missed,
                "analysis inexact: communication-safety checks were suppressed",
            );
            for n in &self.notes {
                r = r.detail("note", n);
            }
            out.push(r);
        }
        out
    }
}

/// Upper bound on reported diagnostics; the rest are summarized in a
/// note so a degenerate program cannot flood the remark stream.
const MAX_DIAGS: usize = 64;

/// One communication event in a processor's abstract program order.
#[derive(Debug, Clone, Copy)]
enum CommEv {
    Send { dst: usize, tag: u32 },
    Recv { src: usize, tag: u32 },
}

/// Event-recording sink over the shared walk.
#[derive(Default)]
struct Recorder {
    nprocs: usize,
    /// Per-processor communication streams, in abstract program order.
    streams: Vec<Vec<CommEv>>,
    /// Aggregate per-channel flow (self-sends excluded).
    channels: BTreeMap<(usize, usize, u32), ChannelFlow>,
    /// Ordered per-channel message sizes, send side / receive side.
    sent_shapes: HashMap<(usize, usize, u32), Vec<u64>>,
    recv_shapes: HashMap<(usize, usize, u32), Vec<u64>>,
    /// Self-send message counts per (proc, tag).
    self_sends: BTreeMap<(usize, u32), u64>,
    /// Writes per (array, owner, local row, local col) → writer → count.
    writes: BTreeMap<(String, usize, i64, i64), BTreeMap<usize, u64>>,
    /// Arrays with at least one write the walk could not place.
    unplaced_writes: BTreeSet<String>,
    /// Per (proc, variable or buffer name): tag of the last receive into
    /// it that has not been read since.
    pending_reads: BTreeMap<(usize, String), u32>,
    exact: bool,
    notes: Vec<String>,
}

impl Recorder {
    fn note(&mut self, msg: String) {
        self.exact = false;
        if self.notes.len() < 32 && !self.notes.contains(&msg) {
            self.notes.push(msg);
        }
    }
}

impl Events for Recorder {
    fn proc_begin(&mut self, proc: usize) {
        debug_assert_eq!(proc, self.streams.len());
        self.streams.push(Vec::new());
    }

    fn send(&mut self, proc: usize, dst: usize, tag: u32, words: u64) {
        if dst == proc {
            // Never delivered: the fabric records the fault instead.
            *self.self_sends.entry((proc, tag)).or_default() += 1;
            return;
        }
        self.streams[proc].push(CommEv::Send { dst, tag });
        let c = self.channels.entry((proc, dst, tag)).or_default();
        c.sent += 1;
        c.sent_words += words;
        self.sent_shapes
            .entry((proc, dst, tag))
            .or_default()
            .push(words);
    }

    fn recv(&mut self, proc: usize, src: usize, tag: u32, words: u64, sink: RecvSink<'_>) {
        self.streams[proc].push(CommEv::Recv { src, tag });
        let c = self.channels.entry((src, proc, tag)).or_default();
        c.received += 1;
        c.recv_words += words;
        self.recv_shapes
            .entry((src, proc, tag))
            .or_default()
            .push(words);
        match sink {
            RecvSink::Targets(targets) => {
                for t in targets {
                    let name = match t {
                        RecvTarget::Var(v) => v.clone(),
                        RecvTarget::Buf { buf, .. } => buf.clone(),
                    };
                    self.pending_reads.insert((proc, name), tag);
                }
            }
            RecvSink::Buffer(buf) => {
                self.pending_reads.insert((proc, buf.to_string()), tag);
            }
        }
    }

    fn array_write(&mut self, proc: usize, array: &str, element: Option<(usize, i64, i64)>) {
        match element {
            Some((home, li, lj)) => {
                *self
                    .writes
                    .entry((array.to_string(), home, li, lj))
                    .or_default()
                    .entry(proc)
                    .or_default() += 1;
            }
            None => {
                if self.unplaced_writes.insert(array.to_string()) {
                    self.note(format!(
                        "P{proc}: write to `{array}` at a statically unknown element"
                    ));
                }
            }
        }
    }

    fn var_read(&mut self, proc: usize, name: &str) {
        self.pending_reads.remove(&(proc, name.to_string()));
    }

    fn buf_read(&mut self, proc: usize, buf: &str) {
        self.pending_reads.remove(&(proc, buf.to_string()));
    }

    fn note(&mut self, _proc: usize, msg: String) {
        Recorder::note(self, msg);
    }
}

/// Statically analyze the communication safety of `prog`.
///
/// `env` seeds every processor's scalar environment (the compile-time
/// constants, e.g. `n = 16`); `arrays` provides distribution instances
/// for arrays that are *preloaded* rather than allocated by the program.
/// Same contract as [`pdc_report::predict`].
pub fn analyze(
    prog: &SpmdProgram,
    env: &BTreeMap<String, i64>,
    arrays: &BTreeMap<String, DistInstance>,
) -> AnalysisReport {
    let mut rec = Recorder {
        nprocs: prog.n_procs(),
        exact: true,
        ..Recorder::default()
    };
    interp::walk(prog, env, arrays, &mut rec);

    let mut diags: Vec<Diagnostic> = Vec::new();

    // Self-sends are real faults whether or not the walk was exact: each
    // one was actually witnessed.
    for (&(p, tag), &n) in &rec.self_sends {
        diags.push(Diagnostic {
            kind: DiagKind::SelfSend,
            severity: Severity::Error,
            message: format!(
                "P{p} sends tag {tag} to itself ({n} message(s)); the machine faults on self-sends"
            ),
            tag: Some(tag),
            array: None,
            proc: Some(p),
        });
    }

    // Every other check is only sound on exact event streams.
    if rec.exact {
        check_channels(&rec, &mut diags);
        check_deadlock(&rec, &mut diags);
        check_single_assignment(&rec, &mut diags);
        check_unused_recvs(&rec, &mut diags);
    }

    let mut notes = rec.notes;
    if diags.len() > MAX_DIAGS {
        notes.push(format!(
            "{} further diagnostic(s) truncated",
            diags.len() - MAX_DIAGS
        ));
        diags.truncate(MAX_DIAGS);
    }
    AnalysisReport {
        diagnostics: diags,
        channels: rec.channels,
        exact: rec.exact,
        notes,
    }
}

/// Multiset send/recv matching plus per-message shape checking.
fn check_channels(rec: &Recorder, diags: &mut Vec<Diagnostic>) {
    for (&(src, dst, tag), flow) in &rec.channels {
        if flow.sent > flow.received && flow.received == 0 {
            diags.push(Diagnostic {
                kind: DiagKind::DeadSend,
                severity: Severity::Warning,
                message: format!(
                    "channel P{src}->P{dst} tag {tag}: {} message(s) sent but never received",
                    flow.sent
                ),
                tag: Some(tag),
                array: None,
                proc: Some(src),
            });
        } else if flow.sent > flow.received {
            diags.push(Diagnostic {
                kind: DiagKind::UnmatchedChannel,
                severity: Severity::Warning,
                message: format!(
                    "channel P{src}->P{dst} tag {tag}: {} message(s) sent but only {} received \
                     ({} orphaned)",
                    flow.sent,
                    flow.received,
                    flow.sent - flow.received
                ),
                tag: Some(tag),
                array: None,
                proc: Some(src),
            });
        } else if flow.received > flow.sent {
            diags.push(Diagnostic {
                kind: DiagKind::UnmatchedChannel,
                severity: Severity::Error,
                message: format!(
                    "channel P{src}->P{dst} tag {tag}: {} receive(s) posted but only {} \
                     message(s) sent",
                    flow.received, flow.sent
                ),
                tag: Some(tag),
                array: None,
                proc: Some(dst),
            });
        }
        // The i-th message on a channel is consumed by the i-th receive
        // (per-channel FIFO), so shapes compare positionally.
        let sent = rec.sent_shapes.get(&(src, dst, tag));
        let recvd = rec.recv_shapes.get(&(src, dst, tag));
        if let (Some(sent), Some(recvd)) = (sent, recvd) {
            for (i, (sw, rw)) in sent.iter().zip(recvd.iter()).enumerate() {
                if sw != rw {
                    diags.push(Diagnostic {
                        kind: DiagKind::ShapeMismatch,
                        severity: Severity::Error,
                        message: format!(
                            "channel P{src}->P{dst} tag {tag}: message {} carries {sw} word(s) \
                             but the receive expects {rw}",
                            i + 1
                        ),
                        tag: Some(tag),
                        array: None,
                        proc: Some(dst),
                    });
                    break; // one shape report per channel is enough
                }
            }
        }
    }
}

/// Replay the event streams to a stuck state; report the wait-for graph.
fn check_deadlock(rec: &Recorder, diags: &mut Vec<Diagnostic>) {
    let nprocs = rec.nprocs;
    let mut idx = vec![0usize; nprocs];
    let mut pending: HashMap<(usize, usize, u32), u64> = HashMap::new();
    loop {
        let mut progressed = false;
        for (p, ix) in idx.iter_mut().enumerate() {
            while let Some(ev) = rec.streams[p].get(*ix) {
                match *ev {
                    CommEv::Send { dst, tag } => {
                        *pending.entry((p, dst, tag)).or_default() += 1;
                    }
                    CommEv::Recv { src, tag } => match pending.get_mut(&(src, p, tag)) {
                        Some(c) if *c > 0 => *c -= 1,
                        _ => break,
                    },
                }
                *ix += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Wait-for edges: every stuck processor is blocked on exactly one
    // receive.
    let mut blocked: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    for (p, &ix) in idx.iter().enumerate() {
        if let Some(CommEv::Recv { src, tag }) = rec.streams[p].get(ix) {
            blocked.insert(p, (*src, *tag));
        }
    }
    if blocked.is_empty() {
        return;
    }

    // A blocked receive whose source has no matching send left anywhere
    // in its remaining stream can never be satisfied, independent of
    // scheduling.
    let mut unsatisfied: BTreeSet<usize> = BTreeSet::new();
    for (&p, &(src, tag)) in &blocked {
        let has_future_send = rec.streams[src][idx[src]..]
            .iter()
            .any(|ev| matches!(ev, CommEv::Send { dst, tag: t } if *dst == p && *t == tag));
        if !has_future_send {
            unsatisfied.insert(p);
            diags.push(Diagnostic {
                kind: DiagKind::UnsatisfiedRecv,
                severity: Severity::Error,
                message: format!(
                    "P{p} blocks on its communication #{} (tag {tag} from P{src}) and P{src} \
                     has no matching send remaining",
                    idx[p] + 1
                ),
                tag: Some(tag),
                array: None,
                proc: Some(p),
            });
        }
    }

    // The remaining blocked processors form a functional wait-for graph
    // (one out-edge each). Chase it to find cycles; report each once,
    // starting from its smallest member, with the full blocking chain.
    let mut in_reported_cycle: BTreeSet<usize> = BTreeSet::new();
    for &start in blocked.keys() {
        if unsatisfied.contains(&start) || in_reported_cycle.contains(&start) {
            continue;
        }
        // Walk until we leave the blocked set, hit an unsatisfied root,
        // or revisit a node from this walk (a cycle).
        let mut seen: Vec<usize> = Vec::new();
        let mut cur = start;
        let cycle = loop {
            if let Some(pos) = seen.iter().position(|&q| q == cur) {
                break Some(seen[pos..].to_vec());
            }
            seen.push(cur);
            match blocked.get(&cur) {
                Some(&(next, _)) if !unsatisfied.contains(&next) && blocked.contains_key(&next) => {
                    cur = next;
                }
                _ => break None, // chain drains into a non-blocked or unsatisfied proc
            }
        };
        let Some(mut cycle) = cycle else { continue };
        if cycle.iter().any(|q| in_reported_cycle.contains(q)) {
            continue;
        }
        // Canonicalize: start the cycle at its smallest processor.
        let min_pos = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, &q)| q)
            .map(|(i, _)| i)
            .unwrap_or(0);
        cycle.rotate_left(min_pos);
        in_reported_cycle.extend(cycle.iter().copied());
        let chain = cycle
            .iter()
            .map(|&q| {
                let (src, tag) = blocked[&q];
                format!("P{q} awaits tag {tag} from P{src}")
            })
            .collect::<Vec<_>>()
            .join("; ");
        let upstream = blocked
            .keys()
            .filter(|q| !in_reported_cycle.contains(q) && !unsatisfied.contains(q))
            .count();
        let (_, first_tag) = blocked[&cycle[0]];
        let mut message = format!("deadlock cycle: {chain}");
        if upstream > 0 {
            message.push_str(&format!(
                " ({upstream} more processor(s) blocked behind it)"
            ));
        }
        diags.push(Diagnostic {
            kind: DiagKind::DeadlockCycle,
            severity: Severity::Error,
            message,
            tag: Some(first_tag),
            array: None,
            proc: Some(cycle[0]),
        });
    }
}

/// Two statically placed writes to one I-structure element.
fn check_single_assignment(rec: &Recorder, diags: &mut Vec<Diagnostic>) {
    for ((array, home, li, lj), writers) in &rec.writes {
        let total: u64 = writers.values().sum();
        if total < 2 {
            continue;
        }
        let who = writers
            .iter()
            .map(|(p, n)| {
                if *n > 1 {
                    format!("P{p} x{n}")
                } else {
                    format!("P{p}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        diags.push(Diagnostic {
            kind: DiagKind::DoubleWrite,
            severity: Severity::Error,
            message: format!(
                "element ({li}, {lj}) of `{array}` on P{home} is written {total} times \
                 (writers: {who})"
            ),
            tag: None,
            array: Some(array.clone()),
            proc: Some(*home),
        });
    }
}

/// Receives whose target variable or buffer is never read afterwards.
fn check_unused_recvs(rec: &Recorder, diags: &mut Vec<Diagnostic>) {
    for ((p, name), tag) in &rec.pending_reads {
        diags.push(Diagnostic {
            kind: DiagKind::UnusedRecv,
            severity: Severity::Warning,
            message: format!("P{p} receives tag {tag} into `{name}` but never reads it"),
            tag: Some(*tag),
            array: None,
            proc: Some(*p),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_spmd::ir::{RecvTarget, SExpr, SStmt};

    fn send(to: i64, tag: u32, v: SExpr) -> SStmt {
        SStmt::Send {
            to: SExpr::int(to),
            tag,
            values: vec![v],
        }
    }

    fn recv(from: i64, tag: u32, var: &str) -> SStmt {
        SStmt::Recv {
            from: SExpr::int(from),
            tag,
            into: vec![RecvTarget::Var(var.into())],
        }
    }

    /// `let _use = x;` so the unused-receive lint stays quiet.
    fn use_var(var: &str) -> SStmt {
        SStmt::Let {
            var: format!("use_{var}"),
            value: SExpr::var(var),
        }
    }

    fn report(prog: SpmdProgram) -> AnalysisReport {
        analyze(&prog, &BTreeMap::new(), &BTreeMap::new())
    }

    #[test]
    fn matched_stream_verifies() {
        let prog = SpmdProgram::new(vec![
            vec![send(1, 7, SExpr::int(1)), send(1, 7, SExpr::int(2))],
            vec![recv(0, 7, "x"), use_var("x"), recv(0, 7, "y"), use_var("y")],
        ]);
        let r = report(prog);
        assert!(r.verified(), "{:?}", r.diagnostics);
        assert_eq!(r.channels[&(0, 1, 7)].sent, 2);
        assert_eq!(r.channels[&(0, 1, 7)].received, 2);
        let remarks = r.remarks();
        assert_eq!(remarks.len(), 1);
        assert!(remarks[0].message.contains("verified"));
    }

    #[test]
    fn dropped_send_is_an_unsatisfied_recv() {
        let prog = SpmdProgram::new(vec![
            vec![send(1, 7, SExpr::int(1))],
            vec![recv(0, 7, "x"), use_var("x"), recv(0, 7, "y"), use_var("y")],
        ]);
        let r = report(prog);
        assert!(!r.verified());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::UnmatchedChannel && d.severity == Severity::Error));
        let unsat = r
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::UnsatisfiedRecv)
            .expect("unsatisfied recv");
        assert_eq!(unsat.tag, Some(7));
        assert!(unsat.message.contains("P1 blocks"));
    }

    #[test]
    fn crossed_receives_form_a_cycle() {
        // P0 waits for P1's message before sending; P1 does the same.
        let prog = SpmdProgram::new(vec![
            vec![recv(1, 9, "a"), use_var("a"), send(1, 8, SExpr::int(0))],
            vec![recv(0, 8, "b"), use_var("b"), send(0, 9, SExpr::int(0))],
        ]);
        let r = report(prog);
        let cyc = r
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::DeadlockCycle)
            .expect("cycle");
        assert!(
            cyc.message.contains("P0 awaits tag 9 from P1"),
            "{}",
            cyc.message
        );
        assert!(
            cyc.message.contains("P1 awaits tag 8 from P0"),
            "{}",
            cyc.message
        );
    }

    #[test]
    fn swapped_tags_deadlock_even_with_matching_counts() {
        // P1 posts its receives in an order the FIFO cannot satisfy only
        // if tags are *different* and sends are ordered; with tag swap on
        // one side, each channel's totals disagree.
        let prog = SpmdProgram::new(vec![
            vec![send(1, 7, SExpr::int(1)), send(1, 8, SExpr::int(2))],
            vec![recv(0, 8, "x"), use_var("x"), recv(0, 9, "y"), use_var("y")],
        ]);
        let r = report(prog);
        assert!(!r.verified());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::UnsatisfiedRecv && d.tag == Some(9)));
        // tag 7 was sent and never received.
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::DeadSend && d.tag == Some(7)));
    }

    #[test]
    fn self_send_is_flagged_even_when_inexact() {
        let prog = SpmdProgram::new(vec![vec![
            SStmt::AllocBuf {
                buf: "b".into(),
                len: SExpr::int(1),
            },
            SStmt::If {
                cond: SExpr::BufRead {
                    buf: "b".into(),
                    idx: Box::new(SExpr::int(0)),
                }
                .gt(SExpr::int(0)),
                then: vec![],
                els: vec![],
            },
            send(0, 3, SExpr::int(1)),
        ]]);
        let r = report(prog);
        assert!(!r.exact);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::SelfSend && d.severity == Severity::Error));
    }

    #[test]
    fn double_write_to_one_element_is_flagged() {
        let prog = SpmdProgram::new(vec![vec![
            SStmt::AWrite {
                array: "A".into(),
                idx: vec![SExpr::int(3)],
                value: SExpr::int(1),
            },
            SStmt::AWrite {
                array: "A".into(),
                idx: vec![SExpr::int(3)],
                value: SExpr::int(2),
            },
        ]]);
        let r = report(prog);
        let dw = r
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::DoubleWrite)
            .expect("double write");
        assert_eq!(dw.array.as_deref(), Some("A"));
        assert!(dw.message.contains("written 2 times"));
    }

    #[test]
    fn distinct_elements_do_not_collide() {
        let prog = SpmdProgram::new(vec![vec![
            SStmt::AWrite {
                array: "A".into(),
                idx: vec![SExpr::int(3)],
                value: SExpr::int(1),
            },
            SStmt::AWrite {
                array: "A".into(),
                idx: vec![SExpr::int(4)],
                value: SExpr::int(2),
            },
        ]]);
        let r = report(prog);
        assert!(r.verified(), "{:?}", r.diagnostics);
    }

    #[test]
    fn unread_receive_target_is_linted() {
        let prog = SpmdProgram::new(vec![vec![send(1, 7, SExpr::int(1))], vec![recv(0, 7, "x")]]);
        let r = report(prog);
        let lint = r
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::UnusedRecv)
            .expect("unused recv");
        assert_eq!(lint.severity, Severity::Warning);
        assert!(lint.message.contains("`x`"));
        // A warning alone does not block verification.
        assert!(r.verified());
    }

    #[test]
    fn shape_mismatch_is_flagged_positionally() {
        let prog = SpmdProgram::new(vec![
            vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 7,
                values: vec![SExpr::int(1), SExpr::int(2)],
            }],
            vec![recv(0, 7, "x"), use_var("x")],
        ]);
        let r = report(prog);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::ShapeMismatch && d.severity == Severity::Error));
    }

    #[test]
    fn inexact_walk_suppresses_replay_checks() {
        // The receive is under data-dependent control: the analyzer must
        // not claim an unsatisfied receive it cannot see.
        let prog = SpmdProgram::new(vec![
            vec![],
            vec![
                SStmt::AllocBuf {
                    buf: "b".into(),
                    len: SExpr::int(1),
                },
                SStmt::If {
                    cond: SExpr::BufRead {
                        buf: "b".into(),
                        idx: Box::new(SExpr::int(0)),
                    }
                    .gt(SExpr::int(0)),
                    then: vec![recv(0, 7, "x")],
                    els: vec![],
                },
            ],
        ]);
        let r = report(prog);
        assert!(!r.exact);
        assert!(!r.verified());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        let remarks = r.remarks();
        assert!(remarks.iter().any(|m| m.message.contains("inexact")));
    }

    #[test]
    fn pipelined_ring_verifies() {
        // P0 -> P1 -> P2 -> P0: a ring where every receive's message is
        // already in flight. Deadlock-free.
        let ring = |p: usize| -> Vec<SStmt> {
            let next = (p + 1) % 3;
            let prev = (p + 2) % 3;
            vec![
                send(next as i64, 20 + p as u32, SExpr::int(1)),
                recv(prev as i64, 20 + prev as u32, "x"),
                use_var("x"),
            ]
        };
        let r = report(SpmdProgram::new(vec![ring(0), ring(1), ring(2)]));
        assert!(r.verified(), "{:?}", r.diagnostics);
    }

    #[test]
    fn recv_before_send_ring_deadlocks() {
        // Everyone receives before sending: classic 3-cycle.
        let ring = |p: usize| -> Vec<SStmt> {
            let next = (p + 1) % 3;
            let prev = (p + 2) % 3;
            vec![
                recv(prev as i64, 20 + prev as u32, "x"),
                use_var("x"),
                send(next as i64, 20 + p as u32, SExpr::int(1)),
            ]
        };
        let r = report(SpmdProgram::new(vec![ring(0), ring(1), ring(2)]));
        let cyc = r
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::DeadlockCycle)
            .expect("cycle");
        assert!(cyc.message.contains("P0 awaits"), "{}", cyc.message);
        assert!(cyc.message.contains("P2 awaits"), "{}", cyc.message);
    }
}
