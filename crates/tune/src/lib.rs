//! Automatic decomposition search.
//!
//! The paper makes the programmer supply the domain decomposition
//! (Figure 1's italicized mappings). With the exact static cost model
//! (`pdc_report::cost`) and the exact static makespan model
//! (`pdc_report::makespan`), the choice can instead be *searched*: this
//! crate enumerates a space of candidate [`Decomposition`]s — per-array
//! [`Dist`] choices over block, cyclic, and block-cyclic families in
//! both dimensions, scalar placements, and strip-mine block sizes — and
//! scores each candidate by compiling it and predicting its simulator
//! makespan, without executing anything.
//!
//! The contract that makes the scores trustworthy: a candidate is
//! *viable* only when its prediction is *exact* (every loop bound,
//! branch, and message endpoint statically evaluable, sends matching
//! receives, and the makespan replay free of deadlock). Candidates
//! whose prediction degrades to `exact == false` are pruned with a
//! recorded reason rather than ranked on a guess. For viable candidates
//! the predicted makespan *equals* the measured simulator makespan
//! cycle for cycle, so predicted-best is measured-best by construction
//! — a property the `tune` bench bin and the `tests/tune.rs` harness
//! re-validate empirically.
//!
//! The crate is driver-agnostic: [`search`] takes a closure that maps a
//! [`Candidate`] to a compiled program, so `pdc-core` can plug in its
//! own pipeline (`Job::with_auto_decomposition`) without a dependency
//! cycle.

use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, Dist, DistInstance, ScalarMap};
use pdc_opt::OptLevel;
use pdc_report::makespan;
use pdc_report::Prediction;
use pdc_spmd::ir::SpmdProgram;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The candidate space for one program, derived from the seed
/// decomposition the job supplied.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Machine size every candidate targets.
    pub nprocs: usize,
    /// Arrays needing a distribution (from the seed decomposition).
    pub arrays: Vec<String>,
    /// Scalar placements of the seed, kept verbatim in dist-sweeping
    /// candidates.
    pub seed_scalars: Vec<(String, ScalarMap)>,
    /// Scalars whose placement is swept (`ALL` vs pinned on P0) while
    /// the distribution is held at the baseline — one-factor-at-a-time
    /// over the scalar axis.
    pub sweep_scalars: Vec<String>,
    /// Optimization levels swept per distribution; `None` skips the
    /// pipeline. A single entry pins the level (the job asked for a
    /// specific variant).
    pub opt_levels: Vec<Option<OptLevel>>,
    /// Block sizes for the block-cyclic distributions.
    pub block_sizes: Vec<usize>,
}

impl SearchSpace {
    /// The default space around `seed`: sweep distributions uniformly
    /// over both matrices, block-cyclic blocks of 2 and 4, the full
    /// optimization ladder with strip-mine block sizes 2/4/8 (unless
    /// `pinned_opt` fixes a level), scalar placement for the seed's
    /// mapped scalars, and mixed per-array pairs.
    pub fn from_seed(seed: &Decomposition, pinned_opt: Option<OptLevel>) -> Self {
        SearchSpace {
            nprocs: seed.nprocs(),
            arrays: seed.arrays().map(|(n, _)| n.to_owned()).collect(),
            seed_scalars: seed.scalars().map(|(n, m)| (n.to_owned(), m)).collect(),
            sweep_scalars: seed.scalars().map(|(n, _)| n.to_owned()).collect(),
            opt_levels: match pinned_opt {
                Some(o) => vec![Some(o)],
                None => vec![
                    Some(OptLevel::O2),
                    Some(OptLevel::O3 { blksize: 2 }),
                    Some(OptLevel::O3 { blksize: 4 }),
                    Some(OptLevel::O3 { blksize: 8 }),
                    Some(OptLevel::O1),
                    None,
                ],
            },
            block_sizes: vec![2, 4],
        }
    }

    /// Also sweep the placement of scalar `name` (builder style).
    pub fn sweep_scalar(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if !self.sweep_scalars.contains(&name) {
            self.sweep_scalars.push(name);
        }
        self
    }
}

/// One point of the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The decomposition to compile under.
    pub decomp: Decomposition,
    /// The optimization level to compile at (`None` = pipeline off).
    pub opt_level: Option<OptLevel>,
    /// Deterministic human-readable identity, stable across runs —
    /// remark and bench keys.
    pub label: String,
}

/// Compact display for candidate labels (the `Display` of [`OptLevel`]
/// is prose).
fn opt_label(o: Option<OptLevel>) -> String {
    match o {
        None => "none".into(),
        Some(OptLevel::O0) => "O0".into(),
        Some(OptLevel::O1) => "O1".into(),
        Some(OptLevel::O2) => "O2".into(),
        Some(OptLevel::O3 { blksize }) => format!("O3(b={blksize})"),
    }
}

fn label_of(decomp: &Decomposition, opt: Option<OptLevel>) -> String {
    let mut parts: Vec<String> = decomp.arrays().map(|(n, d)| format!("{n}={d}")).collect();
    for (n, m) in decomp.scalars() {
        parts.push(format!("{n}:{m}"));
    }
    parts.push(format!("opt={}", opt_label(opt)));
    parts.join(" ")
}

/// The distributions a candidate may assign to an array.
fn dist_palette(nprocs: usize, block_sizes: &[usize]) -> Vec<Dist> {
    let mut v = vec![
        Dist::ColumnCyclic,
        Dist::RowCyclic,
        Dist::ColumnBlock,
        Dist::RowBlock,
    ];
    for &b in block_sizes {
        v.push(Dist::ColumnBlockCyclic { block: b });
        v.push(Dist::RowBlockCyclic { block: b });
    }
    // True 2-d grids only: a 1×p or p×1 grid is already covered by the
    // column/row block entries.
    for prows in 2..nprocs {
        if nprocs.is_multiple_of(prows) {
            let pcols = nprocs / prows;
            if pcols >= 2 {
                v.push(Dist::Block2d { prows, pcols });
            }
        }
    }
    // Serial baseline: everything on one processor, no communication.
    v.push(Dist::OnProcessor(0));
    v
}

fn decomp_with(
    space: &SearchSpace,
    dist_of: impl Fn(usize) -> Dist,
    scalars: &[(String, ScalarMap)],
) -> Decomposition {
    let mut d = Decomposition::new(space.nprocs);
    for (s, m) in scalars {
        d = d.scalar(s.clone(), *m);
    }
    for (k, a) in space.arrays.iter().enumerate() {
        d = d.array(a.clone(), dist_of(k));
    }
    d
}

/// Enumerate the candidate list for `space`, in deterministic order:
///
/// 1. every palette distribution applied uniformly to all arrays, per
///    optimization level (seed scalar placements);
/// 2. scalar-placement variants (`ALL`, then everything on P0) at the
///    baseline distribution and first optimization level;
/// 3. mixed per-array pairs over the four core families (two-array
///    programs), first optimization level.
///
/// Duplicates arising from overlap (e.g. a scalar variant identical to
/// the seed placement) are dropped, keeping first occurrence.
pub fn enumerate(space: &SearchSpace) -> Vec<Candidate> {
    let palette = dist_palette(space.nprocs, &space.block_sizes);
    let core4 = [
        Dist::ColumnCyclic,
        Dist::RowCyclic,
        Dist::ColumnBlock,
        Dist::RowBlock,
    ];
    let mut out: Vec<Candidate> = Vec::new();
    let push = |out: &mut Vec<Candidate>, decomp: Decomposition, opt: Option<OptLevel>| {
        if out.iter().any(|c| c.decomp == decomp && c.opt_level == opt) {
            return;
        }
        let label = label_of(&decomp, opt);
        out.push(Candidate {
            decomp,
            opt_level: opt,
            label,
        });
    };

    for &opt in &space.opt_levels {
        for d in &palette {
            let dec = decomp_with(space, |_| d.clone(), &space.seed_scalars);
            push(&mut out, dec, opt);
        }
    }

    if !space.sweep_scalars.is_empty() {
        let first = space.opt_levels[0];
        for placement in [ScalarMap::All, ScalarMap::On(0)] {
            let scalars: Vec<(String, ScalarMap)> = space
                .sweep_scalars
                .iter()
                .map(|n| (n.clone(), placement))
                .collect();
            let dec = decomp_with(space, |_| palette[0].clone(), &scalars);
            push(&mut out, dec, first);
        }
    }

    if space.arrays.len() == 2 {
        let first = space.opt_levels[0];
        for d0 in &core4 {
            for d1 in &core4 {
                if d0 == d1 {
                    continue;
                }
                let dec = decomp_with(
                    space,
                    |k| if k == 0 { d0.clone() } else { d1.clone() },
                    &space.seed_scalars,
                );
                push(&mut out, dec, first);
            }
        }
    }

    out
}

/// A candidate compiled and ready to score: the specialized program
/// plus the static environment the models interpret it under.
#[derive(Debug, Clone)]
pub struct CandidateProgram {
    /// The per-processor target program.
    pub spmd: SpmdProgram,
    /// Compile-time scalar constants (e.g. `n = 16`).
    pub env: BTreeMap<String, i64>,
    /// Distribution instances of preloaded arrays.
    pub arrays: BTreeMap<String, DistInstance>,
    /// A message-cost prediction the pipeline already computed, if any;
    /// when present the scorer reuses it instead of re-walking.
    pub prediction: Option<Prediction>,
}

/// The exact static score of a viable candidate. Ordered
/// lexicographically — makespan first, messages and words as
/// tie-breakers (candidate index breaks remaining ties, so selection is
/// deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Score {
    /// Predicted simulator makespan in cycles — equals the measured
    /// makespan on viable candidates.
    pub makespan: u64,
    /// Predicted total messages.
    pub messages: u64,
    /// Predicted total payload words.
    pub words: u64,
}

/// One scored (or rejected) candidate.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The candidate.
    pub candidate: Candidate,
    /// Its exact score, or the reason it was pruned (compile error,
    /// inexact prediction, protocol inconsistency, replay deadlock).
    pub outcome: Result<Score, String>,
}

/// The completed search.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Every candidate in enumeration order with its score or rejection
    /// reason.
    pub evaluated: Vec<Evaluated>,
    /// Index of the winner in `evaluated`.
    pub winner: usize,
}

impl TuneResult {
    /// The winning candidate.
    pub fn winner(&self) -> &Evaluated {
        &self.evaluated[self.winner]
    }

    /// The winner's score.
    ///
    /// # Panics
    ///
    /// Never — the winner is viable by construction.
    pub fn winner_score(&self) -> Score {
        *self.winner().outcome.as_ref().expect("winner is viable")
    }

    /// How many candidates scored (were not pruned).
    pub fn viable(&self) -> usize {
        self.evaluated.iter().filter(|e| e.outcome.is_ok()).count()
    }
}

/// Search failure: nothing to rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The candidate list was empty.
    NoCandidates,
    /// Every candidate was pruned; `sample_reasons` holds the first few
    /// rejection reasons for diagnosis.
    NoViableCandidate {
        /// Candidates examined.
        total: usize,
        /// Up to three distinct rejection reasons.
        sample_reasons: Vec<String>,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoCandidates => write!(f, "decomposition search over zero candidates"),
            TuneError::NoViableCandidate {
                total,
                sample_reasons,
            } => {
                write!(
                    f,
                    "no viable candidate among {total}: {}",
                    sample_reasons.join("; ")
                )
            }
        }
    }
}

impl Error for TuneError {}

/// Score one compiled candidate, enforcing the exactness-pruning rule.
fn score_one(prog: &CandidateProgram, cost: &CostModel) -> Result<Score, String> {
    let (prediction, est) = match &prog.prediction {
        Some(p) => (
            p.clone(),
            makespan::estimate(&prog.spmd, &prog.env, &prog.arrays, cost),
        ),
        None => makespan::predict_and_estimate(&prog.spmd, &prog.env, &prog.arrays, cost),
    };
    if !prediction.exact {
        return Err(format!(
            "prediction inexact: {}",
            prediction
                .notes
                .first()
                .map(String::as_str)
                .unwrap_or("(no note)")
        ));
    }
    if !prediction.protocol_consistent() {
        return Err("prediction is protocol-inconsistent (sends != receives)".into());
    }
    if !est.exact {
        return Err(format!(
            "makespan replay inexact: {}",
            est.notes.first().map(String::as_str).unwrap_or("(no note)")
        ));
    }
    Ok(Score {
        makespan: est.makespan(),
        messages: prediction.total_messages(),
        words: prediction.total_words(),
    })
}

/// Compile and score every candidate with `compile`, prune the inexact
/// ones, and pick the winner: minimum `(makespan, messages, words,
/// index)`. A compile error rejects the candidate (recorded as its
/// reason) rather than aborting the search.
///
/// # Errors
///
/// [`TuneError::NoCandidates`] on an empty list;
/// [`TuneError::NoViableCandidate`] when every candidate was pruned.
pub fn search(
    candidates: Vec<Candidate>,
    cost: &CostModel,
    mut compile: impl FnMut(&Candidate) -> Result<CandidateProgram, String>,
) -> Result<TuneResult, TuneError> {
    if candidates.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    let mut evaluated = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let outcome = compile(&candidate).and_then(|prog| score_one(&prog, cost));
        evaluated.push(Evaluated { candidate, outcome });
    }
    let winner = evaluated
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.outcome.as_ref().ok().map(|s| (*s, i)))
        .min()
        .map(|(_, i)| i);
    match winner {
        Some(winner) => Ok(TuneResult { evaluated, winner }),
        None => {
            let mut sample_reasons: Vec<String> = Vec::new();
            for e in &evaluated {
                if let Err(r) = &e.outcome {
                    if !sample_reasons.contains(r) {
                        sample_reasons.push(r.clone());
                        if sample_reasons.len() == 3 {
                            break;
                        }
                    }
                }
            }
            Err(TuneError::NoViableCandidate {
                total: evaluated.len(),
                sample_reasons,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_spmd::ir::{RecvTarget, SExpr, SStmt};

    fn two_array_seed() -> Decomposition {
        Decomposition::new(4)
            .array("New", Dist::ColumnCyclic)
            .array("Old", Dist::ColumnCyclic)
    }

    #[test]
    fn default_space_exceeds_fifty_candidates() {
        let space = SearchSpace::from_seed(&two_array_seed(), None);
        let cands = enumerate(&space);
        assert!(cands.len() >= 50, "only {} candidates", cands.len());
    }

    #[test]
    fn enumeration_is_deterministic_and_duplicate_free() {
        let space = SearchSpace::from_seed(&two_array_seed(), None).sweep_scalar("c");
        let a = enumerate(&space);
        let b = enumerate(&space);
        assert_eq!(a, b);
        for (i, x) in a.iter().enumerate() {
            for y in &a[i + 1..] {
                assert!(
                    !(x.decomp == y.decomp && x.opt_level == y.opt_level),
                    "duplicate candidate {}",
                    x.label
                );
            }
        }
        let labels: std::collections::BTreeSet<&str> = a.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), a.len(), "labels must be unique");
    }

    #[test]
    fn pinned_opt_level_is_not_swept() {
        let space = SearchSpace::from_seed(&two_array_seed(), Some(OptLevel::O3 { blksize: 4 }));
        let cands = enumerate(&space);
        assert!(cands
            .iter()
            .all(|c| c.opt_level == Some(OptLevel::O3 { blksize: 4 })));
    }

    #[test]
    fn scalar_placement_variants_appear_when_swept() {
        let space = SearchSpace::from_seed(&two_array_seed(), None).sweep_scalar("c");
        let cands = enumerate(&space);
        assert!(cands
            .iter()
            .any(|c| c.decomp.scalar_map("c") == ScalarMap::On(0)));
    }

    #[test]
    fn mixed_per_array_pairs_appear_for_two_array_programs() {
        let space = SearchSpace::from_seed(&two_array_seed(), None);
        let cands = enumerate(&space);
        assert!(cands.iter().any(|c| {
            c.decomp.array_dist("New") == Some(Dist::ColumnCyclic)
                && c.decomp.array_dist("Old") == Some(Dist::RowBlock)
        }));
    }

    /// A compile closure over hand-built SPMD programs: the candidate's
    /// "New" distribution decides how much traffic the program sends, so
    /// the search has a real gradient without needing the full compiler.
    fn toy_compile(c: &Candidate) -> Result<CandidateProgram, String> {
        let messages: i64 = match c.decomp.array_dist("New") {
            Some(Dist::ColumnCyclic) => 1,
            Some(Dist::RowCyclic) => 3,
            Some(Dist::OnProcessor(0)) => return Err("serial candidate rejected".into()),
            _ => 5,
        };
        let p0 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(messages),
            step: SExpr::int(1),
            body: vec![SStmt::Send {
                to: SExpr::int(1),
                tag: 1,
                values: vec![SExpr::var("i")],
            }],
        }];
        let p1 = vec![SStmt::For {
            var: "i".into(),
            lo: SExpr::int(1),
            hi: SExpr::int(messages),
            step: SExpr::int(1),
            body: vec![SStmt::Recv {
                from: SExpr::int(0),
                tag: 1,
                into: vec![RecvTarget::Var("x".into())],
            }],
        }];
        Ok(CandidateProgram {
            spmd: SpmdProgram::new(vec![p0, p1]),
            env: BTreeMap::new(),
            arrays: BTreeMap::new(),
            prediction: None,
        })
    }

    #[test]
    fn search_picks_the_cheapest_viable_candidate() {
        let space = SearchSpace::from_seed(&two_array_seed(), Some(OptLevel::O2));
        let result =
            search(enumerate(&space), &CostModel::ipsc2(), toy_compile).expect("search succeeds");
        let w = result.winner();
        assert_eq!(
            w.candidate.decomp.array_dist("New"),
            Some(Dist::ColumnCyclic)
        );
        assert_eq!(result.winner_score().messages, 1);
        // Rejections are recorded, not fatal.
        assert!(result
            .evaluated
            .iter()
            .any(|e| e.outcome == Err("serial candidate rejected".into())));
        assert!(result.viable() < result.evaluated.len());
    }

    #[test]
    fn search_with_nothing_viable_reports_reasons() {
        let space = SearchSpace::from_seed(&two_array_seed(), Some(OptLevel::O2));
        let err = search(enumerate(&space), &CostModel::ipsc2(), |_| {
            Err("boom".into())
        })
        .unwrap_err();
        let TuneError::NoViableCandidate {
            total,
            sample_reasons,
        } = err
        else {
            panic!("expected NoViableCandidate, got {err}");
        };
        assert!(total >= 10);
        assert_eq!(sample_reasons, vec!["boom".to_string()]);
    }

    #[test]
    fn empty_candidate_list_is_an_error() {
        assert_eq!(
            search(Vec::new(), &CostModel::ipsc2(), toy_compile).unwrap_err(),
            TuneError::NoCandidates
        );
    }
}
