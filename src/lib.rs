//! Facade crate: re-exports the pdc workspace public API.
pub use pdc_analyze as analyze;
pub use pdc_core as core;
pub use pdc_istructure as istructure;
pub use pdc_lang as lang;
pub use pdc_machine as machine;
pub use pdc_mapping as mapping;
pub use pdc_opt as opt;
pub use pdc_report as report;
pub use pdc_spmd as spmd;
pub use pdc_tune as tune;
