//! The paper's headline experiment end to end: compile the Gauss-Seidel
//! wavefront program (Figure 1), run every optimization level on the
//! simulated iPSC/2, verify each result against the sequential
//! interpreter, and print the message/time table.
//!
//! Run with `cargo run --release --example wavefront [n] [s]`.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::handwritten;
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::ir::SpmdProgram;
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn run(
    label: &str,
    prog: &SpmdProgram,
    n: usize,
    seq: &pdc_lang::value::Value,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut m = SpmdMachine::new(prog, CostModel::ipsc2())?;
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m.run()?;
    let gathered = m.gather("New")?;
    let verified = driver::first_mismatch(&gathered, seq).is_none();
    println!(
        "{label:<28} {:>12} cycles {:>8} msgs   verified: {verified}",
        out.report.stats.makespan().0,
        out.report.stats.network.messages,
    );
    assert!(verified, "{label} computed a wrong answer");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let s: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    println!("Gauss-Seidel wavefront, {n}x{n} grid, {s} processors (iPSC/2 model)\n");

    let program = programs::gauss_seidel();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "gs_iteration", &inputs)?;

    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let rt = driver::compile(&job, Strategy::Runtime)?;
    let ct = driver::compile(&job, Strategy::CompileTime)?;
    run("run-time resolution", &rt.spmd, n, &seq)?;
    run("compile-time resolution", &ct.spmd, n, &seq)?;
    for (label, level) in [
        ("optimized I (vectorized)", OptLevel::O1),
        ("optimized II (pipelined)", OptLevel::O2),
        ("optimized III (b=8)", OptLevel::O3 { blksize: 8 }),
    ] {
        let (opt, _) = optimize(&ct.spmd, level);
        run(label, &opt, n, &seq)?;
    }
    run(
        "handwritten (Figure 3)",
        &handwritten::gauss_seidel(s, 8),
        n,
        &seq,
    )?;
    println!(
        "\nEvery version computes exactly the matrix the sequential\n\
         interpreter produces; they differ only in messages and time."
    );
    Ok(())
}
