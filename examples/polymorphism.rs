//! §5.1's mapping polymorphism, end to end (Figures 8 and 9): the same
//! identity function called on data owned by two processors, compiled
//! monomorphically (arguments dragged to the function's home) and
//! polymorphically (the call runs where the data lives).
//!
//! Run with `cargo run --example polymorphism`.

use pdc_core::driver::{compile, execute, Inputs, Job, Strategy};
use pdc_core::inline::{ParamMapMode, ParamMaps};
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, ScalarMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source (§5.1):\n{}", programs::IDENTITY_CALLS.trim());
    println!("\nmappings: f's parameter a:P1;  b,u:P2;  k,v:P3\n");
    for mode in [ParamMapMode::Monomorphic, ParamMapMode::Polymorphic] {
        let program = programs::identity_calls();
        let decomp = Decomposition::new(4)
            .scalar("b", ScalarMap::On(2))
            .scalar("k", ScalarMap::On(3))
            .scalar("u", ScalarMap::On(2))
            .scalar("v", ScalarMap::On(3));
        let mut param_maps = ParamMaps::new();
        param_maps.insert(("f".into(), "a".into()), ScalarMap::On(1));
        let mut job = Job::new(&program, "main", decomp);
        job.param_maps = param_maps;
        job.mode = mode;
        let compiled = compile(&job, Strategy::CompileTime)?;
        println!(
            "=== {} ===",
            match mode {
                ParamMapMode::Monomorphic => "monomorphic (Figure 8)",
                ParamMapMode::Polymorphic => "polymorphic (Figure 9)",
            }
        );
        println!("{}", compiled.spmd);
        let inputs = Inputs::new()
            .scalar("b", pdc_spmd::Scalar::Int(5))
            .scalar("k", pdc_spmd::Scalar::Int(7));
        let exec = execute(&compiled, &inputs, CostModel::ipsc2())?;
        println!(
            "messages: {}   simulated time: {} cycles\n",
            exec.messages(),
            exec.makespan()
        );
    }
    println!(
        "Polymorphic parameter mappings specialize each call site to the\n\
         mapping of its argument: the four coercion messages disappear and\n\
         the two calls no longer serialize through P1."
    );
    Ok(())
}
