//! Quickstart: compile the paper's three-statement example (Figure 4)
//! both ways and watch the messages flow.
//!
//! ```text
//! a:P1, b:P2, c:P3
//! a := 5;  b := 7;  c := a + b;
//! ```
//!
//! Run with `cargo run --example quickstart`.

use pdc_core::driver::{compile, execute, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_spmd::Scalar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = programs::figure4();
    println!("source program (Figure 4a):\n{}", programs::FIGURE4.trim());
    println!("\ndecomposition: a:P1, b:P2, c:P3 on a 4-processor machine\n");

    for strategy in [Strategy::Runtime, Strategy::CompileTime] {
        let job = Job::new(&program, "main", programs::figure4_decomposition(4));
        let compiled = compile(&job, strategy)?;
        println!(
            "=== {} ===",
            match strategy {
                Strategy::Runtime => "run-time resolution (Figure 4b)",
                Strategy::CompileTime => "compile-time resolution (Figure 4d)",
            }
        );
        println!("{}", compiled.spmd);
        let exec = execute(&compiled, &Inputs::new(), CostModel::ipsc2())?;
        println!(
            "messages: {}   simulated time: {} cycles",
            exec.messages(),
            exec.makespan()
        );
        assert_eq!(exec.machine.vm(3).var("c"), Some(Scalar::Int(12)));
        println!("P3 computed c = 12\n");
    }
    println!(
        "Both strategies exchange exactly two messages (a: P1->P3 and\n\
         b: P2->P3), but compile-time resolution deletes every guard: each\n\
         processor's code contains only its own role."
    );
    Ok(())
}
