//! Visualize the wavefront: run the pipelined (Optimized II) program with
//! event tracing enabled and print a text Gantt chart. The staircase of
//! sends and receives is the diagonal wavefront of the paper's Figure 2b.
//!
//! Run with `cargo run --release --example trace_gantt [n] [s]`.

use pdc_core::driver::{self, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{trace_render, CostModel, Machine};
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let s: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let program = programs::gauss_seidel();
    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let compiled = driver::compile(&job, Strategy::CompileTime)?;
    for (label, level) in [
        ("compile-time (element messages, serialized)", OptLevel::O0),
        (
            "optimized III (blocked pipeline)",
            OptLevel::O3 { blksize: 4 },
        ),
    ] {
        let (opt, _) = optimize(&compiled.spmd, level);
        let machine = Machine::new(s, CostModel::ipsc2()).with_trace(100_000);
        let mut m = SpmdMachine::with_machine(&opt, machine)?;
        m.preset_var("n", Scalar::Int(n as i64));
        m.preload_array(
            "Old",
            pdc_mapping::Dist::ColumnCyclic,
            &driver::standard_input(n, n),
        );
        let out = m.run()?;
        println!("== {label} ==  ({} cycles)", out.report.stats.makespan().0);
        print!("{}", trace_render(m.machine().trace(), s, 100));
        println!();
    }
    println!("s = send, r = receive, # = both, | = finish");
    Ok(())
}
