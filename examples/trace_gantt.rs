//! Visualize the wavefront: run two program versions with event tracing
//! enabled, print a text Gantt chart, and decompose each run's critical
//! path. The staircase of sends and receives is the diagonal wavefront
//! of the paper's Figure 2b, and the critical-path breakdown shows *why*
//! the serialized version is slow: its makespan is message overhead and
//! blocking, not compute.
//!
//! Pass `--threaded` to run on the threaded backend instead of the
//! simulator — the trace (and the chart) is identical, which is the
//! point of the unified observability layer.
//!
//! Run with `cargo run --release --example trace_gantt [n] [s] [--threaded]`.

use pdc_core::driver::{self, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{analyze, trace_render, Backend, CostModel};
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threaded = args.iter().any(|a| a == "--threaded");
    let mut nums = args.iter().filter_map(|a| a.parse::<usize>().ok());
    let n = nums.next().unwrap_or(24);
    let s = nums.next().unwrap_or(4);
    let backend = if threaded {
        Backend::threaded()
    } else {
        Backend::Simulated
    };
    let program = programs::gauss_seidel();
    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let compiled = driver::compile(&job, Strategy::CompileTime)?;
    for (label, level) in [
        ("compile-time (element messages, serialized)", OptLevel::O0),
        (
            "optimized III (blocked pipeline)",
            OptLevel::O3 { blksize: 4 },
        ),
    ] {
        let (opt, _) = optimize(&compiled.spmd, level);
        let mut m = SpmdMachine::new(&opt, CostModel::ipsc2())?
            .with_backend(backend)
            .with_trace(100_000);
        m.preset_var("n", Scalar::Int(n as i64));
        m.preload_array(
            "Old",
            pdc_mapping::Dist::ColumnCyclic,
            &driver::standard_input(n, n),
        );
        let out = m.run()?;
        let makespan = out.report.stats.makespan().0;
        println!("== {label} ==  ({makespan} cycles)");
        print!("{}", trace_render(&out.report.trace, s, 100));

        let cp = analyze(&out.report.trace, s).critical_path;
        let pct = |x: u64| 100.0 * x as f64 / makespan.max(1) as f64;
        println!(
            "critical path: compute {} ({:.0}%), msg overhead {} ({:.0}%), \
             flight {} ({:.0}%), blocked {} ({:.0}%)",
            cp.compute,
            pct(cp.compute),
            cp.send_overhead + cp.recv_overhead,
            pct(cp.send_overhead + cp.recv_overhead),
            cp.flight,
            pct(cp.flight),
            cp.blocked,
            pct(cp.blocked),
        );
        println!();
    }
    println!("s = send, r = receive, # = both, | = finish");
    Ok(())
}
