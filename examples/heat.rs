//! Iterated relaxation to convergence: compile the Gauss-Seidel sweep
//! once, then drive it repeatedly — each iteration's gathered `New`
//! becomes the next iteration's pre-distributed `Old` — until the grid
//! stops changing. This mirrors how the paper's `GS-iteration` procedure
//! would be used inside a real PDE solver loop, and accumulates the
//! simulated cost of the whole solve.
//!
//! Run with `cargo run --release --example heat [n] [s]`.

use pdc_core::driver::{self, Job, Strategy};
use pdc_core::programs;
use pdc_istructure::IMatrix;
use pdc_machine::CostModel;
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn max_delta(a: &IMatrix<Scalar>, b: &IMatrix<Scalar>) -> i64 {
    let mut worst = 0;
    for i in 1..=a.rows() as i64 {
        for j in 1..=a.cols() as i64 {
            if let (Some(Scalar::Int(x)), Some(Scalar::Int(y))) = (a.peek(i, j), b.peek(i, j)) {
                worst = worst.max((x - y).abs());
            }
        }
    }
    worst
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let s: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    println!("Heat relaxation to convergence — {n}x{n} grid, {s} processors\n");

    // Hot edge, cold interior.
    let mut grid = IMatrix::new(n, n);
    for i in 1..=n as i64 {
        for j in 1..=n as i64 {
            let edge = i == 1 || j == 1 || i == n as i64 || j == n as i64;
            grid.write(i, j, Scalar::Int(if edge { 1000 } else { 0 }))?;
        }
    }

    // Compile once; re-simulate per iteration with fresh data.
    let program = programs::gauss_seidel();
    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let compiled = driver::compile(&job, Strategy::CompileTime)?;
    let (opt, _) = optimize(&compiled.spmd, OptLevel::O3 { blksize: 8 });

    let mut total_cycles = 0u64;
    let mut total_msgs = 0u64;
    for iter in 1..=200 {
        let mut m = SpmdMachine::new(&opt, CostModel::ipsc2())?;
        m.preset_var("n", Scalar::Int(n as i64));
        m.preload_array("Old", pdc_mapping::Dist::ColumnCyclic, &grid);
        let out = m.run()?;
        total_cycles += out.report.stats.makespan().0;
        total_msgs += out.report.stats.network.messages;
        let next = m.gather("New")?;
        let delta = max_delta(&grid, &next);
        grid = next;
        if iter % 10 == 0 || delta <= 2 {
            println!("iteration {iter:>3}: max change {delta:>5}");
        }
        // Integer averaging rounds down, so the fixed point oscillates by
        // a couple of units; treat that as converged.
        if delta <= 2 {
            println!(
                "\nconverged after {iter} sweeps: {total_cycles} simulated cycles, \
                 {total_msgs} messages"
            );
            let mid = (n / 2) as i64;
            if let Some(v) = grid.peek(mid, mid) {
                println!("steady-state centre value: {v}");
            }
            return Ok(());
        }
    }
    println!("did not converge in 200 sweeps (total {total_cycles} cycles)");
    Ok(())
}
