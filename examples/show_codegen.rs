//! Print the code the compiler generates for the wavefront program —
//! the machine-readable analogue of the paper's Figure 5 and Appendix A
//! listings — together with the compiler's remark stream explaining what
//! each phase did (and declined to do) to get there.
//!
//! Run with `cargo run --example show_codegen [s] [processor]`.

use pdc_core::driver::{compile, Compiled, Job, Strategy};
use pdc_core::programs;
use pdc_opt::OptLevel;
use pdc_report::Phase;
use pdc_spmd::ir::SpmdProgram;

fn show(title: &str, prog: &SpmdProgram, p: usize) {
    println!("==== {title} (processor {p}) ====");
    let one = SpmdProgram::new(vec![prog.body(p).to_vec()]);
    let text = one.to_string();
    // Strip the synthetic "all 1 processors:" header.
    println!("{}", text.trim_start_matches("all 1 processors:\n"));
}

/// Print only the remarks of the given phases (the front-half phases
/// repeat identically at every level, so each section shows what's new).
fn show_remarks(compiled: &Compiled, phases: &[Phase]) {
    let picked: Vec<_> = compiled
        .remarks
        .iter()
        .filter(|r| phases.contains(&r.phase))
        .cloned()
        .collect();
    if !picked.is_empty() {
        println!("remarks:\n{}", pdc_report::render_text(&picked));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let p: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let program = programs::gauss_seidel();
    println!("source (Figure 1):\n{}", programs::GAUSS_SEIDEL.trim());
    println!();

    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", 128);
    let rt = compile(&job, Strategy::Runtime)?;
    show(
        "run-time resolution — identical on every processor",
        &rt.spmd,
        0,
    );
    show_remarks(&rt, &[Phase::Analysis, Phase::RuntimeRes]);

    let ct = compile(&job, Strategy::CompileTime)?;
    show("compile-time resolution (Figure 5)", &ct.spmd, p);
    show_remarks(&ct, &[Phase::Analysis, Phase::CompileTime]);

    for (title, level, phases) in [
        (
            "optimized I — vectorized old columns (A.2)",
            OptLevel::O1,
            vec![Phase::Vectorize],
        ),
        (
            "optimized II — pipelined new values (A.3)",
            OptLevel::O2,
            vec![Phase::Vectorize, Phase::Jam],
        ),
        (
            "optimized III — blocked new values (A.4)",
            OptLevel::O3 { blksize: 8 },
            vec![Phase::Vectorize, Phase::Jam, Phase::Strip],
        ),
    ] {
        let opt = compile(&job.clone().with_opt_level(level), Strategy::CompileTime)?;
        show(title, &opt.spmd, p);
        show_remarks(&opt, &phases);
        println!("pass report: {:?}", opt.opt_report);
        println!(
            "cost model:  {} message(s), {} payload word(s) over {} channel(s) predicted\n",
            opt.prediction.total_messages(),
            opt.prediction.total_words(),
            opt.prediction.sends.len()
        );
    }
    Ok(())
}
