//! Print the code the compiler generates for the wavefront program —
//! the machine-readable analogue of the paper's Figure 5 and Appendix A
//! listings.
//!
//! Run with `cargo run --example show_codegen [s] [processor]`.

use pdc_core::driver::{compile, Job, Strategy};
use pdc_core::programs;
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::ir::SpmdProgram;

fn show(title: &str, prog: &SpmdProgram, p: usize) {
    println!("==== {title} (processor {p}) ====");
    let one = SpmdProgram::new(vec![prog.body(p).to_vec()]);
    let text = one.to_string();
    // Strip the synthetic "all 1 processors:" header.
    println!("{}", text.trim_start_matches("all 1 processors:\n"));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let p: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let program = programs::gauss_seidel();
    println!("source (Figure 1):\n{}", programs::GAUSS_SEIDEL.trim());
    println!();

    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", 128);
    let rt = compile(&job, Strategy::Runtime)?;
    show(
        "run-time resolution — identical on every processor",
        &rt.spmd,
        0,
    );

    let ct = compile(&job, Strategy::CompileTime)?;
    show("compile-time resolution (Figure 5)", &ct.spmd, p);

    for (title, level) in [
        ("optimized I — vectorized old columns (A.2)", OptLevel::O1),
        ("optimized II — pipelined new values (A.3)", OptLevel::O2),
        (
            "optimized III — blocked new values (A.4)",
            OptLevel::O3 { blksize: 8 },
        ),
    ] {
        let (opt, report) = optimize(&ct.spmd, level);
        show(title, &opt, p);
        println!("pass report: {report:?}\n");
    }
    Ok(())
}
