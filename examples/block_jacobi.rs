//! Beyond wrapped columns: the same compiler with the other distribution
//! families the introduction motivates ("mapping by columns, rows,
//! blocks, etc."). A Jacobi sweep is compiled under four decompositions
//! and each result is verified against the sequential interpreter —
//! on **both** execution backends: the deterministic simulator and the
//! threaded backend (one OS thread per processor, real channels), which
//! must agree on outputs, logical makespan, and message counts.
//!
//! Run with `cargo run --release --example block_jacobi [n]`.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{Backend, CostModel};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::Scalar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let program = programs::jacobi();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "jacobi", &inputs)?;

    let cases: Vec<(&str, usize, Dist)> = vec![
        ("column-cyclic (wrapped)", 8, Dist::ColumnCyclic),
        ("column-block (panels)", 8, Dist::ColumnBlock),
        ("row-cyclic", 8, Dist::RowCyclic),
        (
            "2-D blocks (4x2 grid)",
            8,
            Dist::Block2d { prows: 4, pcols: 2 },
        ),
    ];
    println!("Jacobi sweep, {n}x{n} grid — one kernel, four decompositions\n");
    for (label, s, dist) in cases {
        let decomp = Decomposition::new(s)
            .array("New", dist.clone())
            .array("Old", dist);
        let mut job = Job::new(&program, "jacobi", decomp).with_const("n", n as i64);
        job.extent_overrides.insert("Old".into(), (n, n));
        let compiled = driver::compile(&job, Strategy::CompileTime)?;
        let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)?;
        let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())?;
        let verified = driver::first_mismatch(&sim.gather("New")?, &seq).is_none()
            && driver::first_mismatch(&thr.gather("New")?, &seq).is_none();
        let backends_agree = sim.makespan() == thr.makespan()
            && sim.outcome.report.pair_messages == thr.outcome.report.pair_messages;
        println!(
            "{label:<26} {:>10} cycles {:>8} msgs   verified: {verified}  backends agree: {backends_agree}",
            sim.makespan(),
            sim.messages()
        );
        assert!(verified, "{label} computed a wrong answer");
        assert!(backends_agree, "{label}: backends diverge");
    }
    println!(
        "\nJacobi reads only Old, so a block decomposition needs messages\n\
         only at panel borders — far fewer than the cyclic mappings. The\n\
         compiler derives all of this from the same source program, and\n\
         the simulator and the threaded backend agree cycle-for-cycle."
    );
    Ok(())
}
