//! Property tests of the domain-decomposition algebra and its use by the
//! machine layer: owner totality, local/alloc consistency, and the
//! preload→gather round trip for every distribution family.

use pdc_istructure::IMatrix;
use pdc_mapping::{Dist, DistInstance, OwnerSet};
use pdc_spmd::ir::{SExpr, SStmt, SpmdProgram};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use proptest::prelude::*;

fn dist_strategy() -> impl Strategy<Value = Dist> {
    prop_oneof![
        Just(Dist::Replicated),
        Just(Dist::ColumnCyclic),
        Just(Dist::RowCyclic),
        Just(Dist::ColumnBlock),
        Just(Dist::RowBlock),
        (1usize..4).prop_map(|b| Dist::ColumnBlockCyclic { block: b }),
        (1usize..4).prop_map(|b| Dist::RowBlockCyclic { block: b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Map is total: every element has an owner inside the machine, and
    /// Local lands inside Alloc.
    #[test]
    fn owner_total_and_local_in_alloc(
        dist in dist_strategy(),
        rows in 1usize..10,
        cols in 1usize..10,
        nprocs in 1usize..6,
    ) {
        let inst = DistInstance::new(dist.clone(), rows, cols, nprocs);
        let (lr, lc) = inst.alloc();
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                match inst.owner(i, j) {
                    OwnerSet::One(p) => prop_assert!(p < nprocs),
                    OwnerSet::All => {}
                }
                let (li, lj) = inst.local(i, j);
                prop_assert!(li >= 1 && lj >= 1);
                prop_assert!(li as usize <= lr, "{dist}: local row {li} > {lr}");
                prop_assert!(lj as usize <= lc, "{dist}: local col {lj} > {lc}");
            }
        }
    }

    /// Local is injective per owner: two elements owned by the same
    /// processor never collide in its segment.
    #[test]
    fn local_is_injective_per_owner(
        dist in dist_strategy(),
        rows in 1usize..9,
        cols in 1usize..9,
        nprocs in 1usize..5,
    ) {
        let inst = DistInstance::new(dist.clone(), rows, cols, nprocs);
        for p in 0..nprocs {
            let mut seen = std::collections::HashSet::new();
            for (i, j) in inst.owned_cells(p) {
                let loc = inst.local(i, j);
                prop_assert!(
                    seen.insert(loc),
                    "{dist}: P{p} collision at local {loc:?} from ({i},{j})"
                );
            }
        }
    }

    /// A matrix preloaded under any distribution gathers back verbatim.
    #[test]
    fn preload_gather_round_trip(
        dist in dist_strategy(),
        rows in 1usize..8,
        cols in 1usize..8,
        nprocs in 1usize..5,
    ) {
        // Minimal program that only references the array so the slot
        // exists on every processor.
        let body = vec![SStmt::If {
            cond: SExpr::Bool(false),
            then: vec![SStmt::Let {
                var: "x".into(),
                value: SExpr::ARead {
                    array: "A".into(),
                    idx: vec![SExpr::int(1), SExpr::int(1)],
                },
            }],
            els: vec![],
        }];
        let prog = SpmdProgram::uniform(nprocs, body);
        let mut machine = SpmdMachine::new(&prog, pdc_machine::CostModel::zero()).unwrap();
        let mut data = IMatrix::new(rows, cols);
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                data.write(i, j, Scalar::Int(i * 1000 + j)).unwrap();
            }
        }
        machine.preload_array("A", dist.clone(), &data);
        machine.run().unwrap();
        let gathered = machine.gather("A").unwrap();
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                prop_assert_eq!(
                    gathered.peek(i, j),
                    data.peek(i, j),
                    "{} at ({},{})", dist, i, j
                );
            }
        }
    }

    /// 2-D grids partition correctly too (separate case because the grid
    /// shape must match the machine size).
    #[test]
    fn block2d_round_trip(
        prows in 1usize..4,
        pcols in 1usize..4,
        rows in 1usize..8,
        cols in 1usize..8,
    ) {
        let nprocs = prows * pcols;
        let dist = Dist::Block2d { prows, pcols };
        let inst = DistInstance::new(dist.clone(), rows, cols, nprocs);
        let total: usize = (0..nprocs).map(|p| inst.owned_cells(p).count()).sum();
        prop_assert_eq!(total, rows * cols);
    }
}
