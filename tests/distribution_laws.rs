//! Property tests of the domain-decomposition algebra and its use by the
//! machine layer: owner totality, local/alloc consistency, and the
//! preload→gather round trip for every distribution family.
//! (Deterministic `pdc-testkit` cases; a failing case prints its seed
//! for replay.)

use pdc_istructure::IMatrix;
use pdc_mapping::{Dist, DistInstance, OwnerSet};
use pdc_spmd::ir::{SExpr, SStmt, SpmdProgram};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use pdc_testkit::{cases, Rng};

fn random_dist(rng: &mut Rng) -> Dist {
    match rng.range_usize(0, 7) {
        0 => Dist::Replicated,
        1 => Dist::ColumnCyclic,
        2 => Dist::RowCyclic,
        3 => Dist::ColumnBlock,
        4 => Dist::RowBlock,
        5 => Dist::ColumnBlockCyclic {
            block: rng.range_usize(1, 4),
        },
        _ => Dist::RowBlockCyclic {
            block: rng.range_usize(1, 4),
        },
    }
}

/// Map is total: every element has an owner inside the machine, and
/// Local lands inside Alloc.
#[test]
fn owner_total_and_local_in_alloc() {
    cases(128, "owner_total_and_local_in_alloc", |rng| {
        let dist = random_dist(rng);
        let rows = rng.range_usize(1, 10);
        let cols = rng.range_usize(1, 10);
        let nprocs = rng.range_usize(1, 6);
        let inst = DistInstance::new(dist.clone(), rows, cols, nprocs);
        let (lr, lc) = inst.alloc();
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                match inst.owner(i, j) {
                    OwnerSet::One(p) => assert!(p < nprocs),
                    OwnerSet::All => {}
                }
                let (li, lj) = inst.local(i, j);
                assert!(li >= 1 && lj >= 1);
                assert!(li as usize <= lr, "{dist}: local row {li} > {lr}");
                assert!(lj as usize <= lc, "{dist}: local col {lj} > {lc}");
            }
        }
    });
}

/// Local is injective per owner: two elements owned by the same
/// processor never collide in its segment.
#[test]
fn local_is_injective_per_owner() {
    cases(128, "local_is_injective_per_owner", |rng| {
        let dist = random_dist(rng);
        let rows = rng.range_usize(1, 9);
        let cols = rng.range_usize(1, 9);
        let nprocs = rng.range_usize(1, 5);
        let inst = DistInstance::new(dist.clone(), rows, cols, nprocs);
        for p in 0..nprocs {
            let mut seen = std::collections::HashSet::new();
            for (i, j) in inst.owned_cells(p) {
                let loc = inst.local(i, j);
                assert!(
                    seen.insert(loc),
                    "{dist}: P{p} collision at local {loc:?} from ({i},{j})"
                );
            }
        }
    });
}

/// A matrix preloaded under any distribution gathers back verbatim.
#[test]
fn preload_gather_round_trip() {
    cases(128, "preload_gather_round_trip", |rng| {
        let dist = random_dist(rng);
        let rows = rng.range_usize(1, 8);
        let cols = rng.range_usize(1, 8);
        let nprocs = rng.range_usize(1, 5);
        // Minimal program that only references the array so the slot
        // exists on every processor.
        let body = vec![SStmt::If {
            cond: SExpr::Bool(false),
            then: vec![SStmt::Let {
                var: "x".into(),
                value: SExpr::ARead {
                    array: "A".into(),
                    idx: vec![SExpr::int(1), SExpr::int(1)],
                },
            }],
            els: vec![],
        }];
        let prog = SpmdProgram::uniform(nprocs, body);
        let mut machine = SpmdMachine::new(&prog, pdc_machine::CostModel::zero()).unwrap();
        let mut data = IMatrix::new(rows, cols);
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                data.write(i, j, Scalar::Int(i * 1000 + j)).unwrap();
            }
        }
        machine.preload_array("A", dist.clone(), &data);
        machine.run().unwrap();
        let gathered = machine.gather("A").unwrap();
        for i in 1..=rows as i64 {
            for j in 1..=cols as i64 {
                assert_eq!(gathered.peek(i, j), data.peek(i, j), "{dist} at ({i},{j})");
            }
        }
    });
}

/// 2-D grids partition correctly too (separate case because the grid
/// shape must match the machine size).
#[test]
fn block2d_round_trip() {
    cases(128, "block2d_round_trip", |rng| {
        let prows = rng.range_usize(1, 4);
        let pcols = rng.range_usize(1, 4);
        let rows = rng.range_usize(1, 8);
        let cols = rng.range_usize(1, 8);
        let nprocs = prows * pcols;
        let dist = Dist::Block2d { prows, pcols };
        let inst = DistInstance::new(dist.clone(), rows, cols, nprocs);
        let total: usize = (0..nprocs).map(|p| inst.owned_cells(p).count()).sum();
        assert_eq!(total, rows * cols);
    });
}
