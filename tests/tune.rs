//! The decomposition tuner and its exact-scoring contract.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{Backend, CostModel};
use pdc_mapping::{Decomposition, Dist};
use pdc_opt::OptLevel;
use pdc_spmd::Scalar;
use pdc_testkit::cases;
use pdc_tune::TuneResult;

/// The five compiler variants of Figures 6/7: strategy plus pinned
/// optimization level (`None` = pipeline skipped, the run-time
/// resolution configuration).
const PAPER_VARIANTS: [(&str, Strategy, Option<OptLevel>); 5] = [
    ("runtime", Strategy::Runtime, None),
    ("compile_time", Strategy::CompileTime, Some(OptLevel::O0)),
    ("optimized_i", Strategy::CompileTime, Some(OptLevel::O1)),
    ("optimized_ii", Strategy::CompileTime, Some(OptLevel::O2)),
    (
        "optimized_iii",
        Strategy::CompileTime,
        Some(OptLevel::O3 { blksize: 4 }),
    ),
];

/// The score of the paper's hand decomposition (uniform column-cyclic,
/// [`programs::wavefront_decomposition`]) within a search trace, if it
/// was viable.
fn hand_candidate_score(tune: &TuneResult, nprocs: usize) -> Option<pdc_tune::Score> {
    let hand = programs::wavefront_decomposition(nprocs);
    tune.evaluated
        .iter()
        .filter(|e| e.candidate.decomp == hand)
        .filter_map(|e| e.outcome.clone().ok())
        .min()
}

/// Golden test on the Figure 6/7 wavefront: for every paper variant, the
/// automatic search must rediscover the paper's hand decomposition — or
/// beat it with a strictly lower predicted cost — and the search trace
/// must be byte-stable across recompilations.
fn check_wavefront_golden(n: usize, stability_variants: &[&str]) {
    let s = 4usize;
    let program = programs::gauss_seidel();
    for (name, strategy, opt) in PAPER_VARIANTS {
        let label = format!("wavefront n={n} {name}");
        let make_job = || {
            let mut job = Job::new(
                &program,
                "gs_iteration",
                programs::wavefront_decomposition(s),
            )
            .with_const("n", n as i64)
            .with_auto_decomposition();
            if let Some(o) = opt {
                job = job.with_opt_level(o);
            }
            job
        };
        let job = make_job();
        let compiled = driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
        let tune = compiled.tune.as_ref().unwrap_or_else(|| {
            panic!("{label}: auto-decomposition compile carries no search trace")
        });
        let winner = tune.winner();
        let score = tune.winner_score();
        let hand = hand_candidate_score(tune, s)
            .unwrap_or_else(|| panic!("{label}: hand decomposition was not a viable candidate"));
        let hand_decomp = programs::wavefront_decomposition(s);
        assert!(
            winner.candidate.decomp == hand_decomp || score < hand,
            "{label}: winner `{}` (score {score:?}) neither is the paper's hand \
             decomposition nor beats it (hand score {hand:?})",
            winner.candidate.label
        );
        // The winner's predicted makespan is the measured makespan.
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            score.makespan,
            exec.makespan(),
            "{label}: selected decomposition's predicted makespan diverges from the simulator"
        );
        // Byte-stable search trace: recompiling yields the identical
        // remark JSON, Phase::Tune remarks included. (Repeating the whole
        // search doubles its cost, so the large problem size spot-checks
        // one variant instead of all five.)
        if stability_variants.contains(&name) {
            let again =
                driver::compile(&make_job(), strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(
                compiled.remarks_json(),
                again.remarks_json(),
                "{label}: search trace is not byte-stable"
            );
        }
    }
}

#[test]
fn auto_decomposition_rediscovers_the_paper_wavefront_small() {
    check_wavefront_golden(
        16,
        &[
            "runtime",
            "compile_time",
            "optimized_i",
            "optimized_ii",
            "optimized_iii",
        ],
    );
}

#[test]
fn auto_decomposition_rediscovers_the_paper_wavefront_large() {
    check_wavefront_golden(128, &["optimized_ii"]);
}

/// Under the iPSC/2 cost model small problems are communication-bound
/// and the search correctly falls back to serial placement; once
/// communication is cheap (the shared-memory preset) and the problem is
/// big enough, the winner must be *exactly* the paper's hand
/// decomposition — uniform column-cyclic — strip-mined at the largest
/// swept block size. The search discovers the paper's Figure 6
/// crossover instead of being told about it.
#[test]
fn cheap_communication_flips_the_winner_to_the_paper_decomposition() {
    let s = 4usize;
    let program = programs::gauss_seidel();
    let compile_at = |n: usize| {
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64)
        .with_auto_decomposition_under(CostModel::shared_memory());
        driver::compile(&job, Strategy::CompileTime).unwrap_or_else(|e| panic!("n={n}: {e}"))
    };

    // n=16: even cheap messages cannot pay for themselves; serial wins.
    let small = compile_at(16);
    let small_tune = small.tune.as_ref().expect("search trace");
    assert_eq!(
        small_tune.winner().candidate.decomp.array_dist("New"),
        Some(Dist::OnProcessor(0)),
        "n=16 should stay serial, got `{}`",
        small_tune.winner().candidate.label
    );

    // n=32: the parallel wavefront pays off; the winner is the paper's
    // column-cyclic decomposition, strip-mined.
    let large = compile_at(32);
    let tune = large.tune.as_ref().expect("search trace");
    let winner = tune.winner();
    assert_eq!(
        winner.candidate.decomp,
        programs::wavefront_decomposition(s),
        "expected the paper's hand decomposition, got `{}`",
        winner.candidate.label
    );
    assert_eq!(
        winner.candidate.opt_level,
        Some(OptLevel::O3 { blksize: 8 }),
        "expected the strip-mined pipeline, got `{}`",
        winner.candidate.label
    );
}

/// A random distribution valid for `nprocs` processors, drawn from the
/// block / cyclic / block-cyclic families plus serial placement.
fn random_dist(rng: &mut pdc_testkit::Rng, nprocs: usize) -> Dist {
    match rng.range_usize(0, 8) {
        0 => Dist::ColumnCyclic,
        1 => Dist::RowCyclic,
        2 => Dist::ColumnBlock,
        3 => Dist::RowBlock,
        4 => Dist::ColumnBlockCyclic {
            block: rng.range_usize(1, 4),
        },
        5 => Dist::RowBlockCyclic {
            block: rng.range_usize(1, 4),
        },
        6 => Dist::OnProcessor(rng.range_usize(0, nprocs)),
        _ => {
            let divisors: Vec<usize> = (1..=nprocs).filter(|d| nprocs.is_multiple_of(*d)).collect();
            let prows = divisors[rng.range_usize(0, divisors.len())];
            Dist::Block2d {
                prows,
                pcols: nprocs / prows,
            }
        }
    }
}

/// Property test for the tuner's scoring contract: across random
/// programs, problem sizes, strategies, optimization levels, and *pairs*
/// of candidate decompositions, whenever both candidates score as exact
/// the predicted makespans rank them exactly as the simulator does —
/// because each prediction individually equals the measured makespan.
/// Non-vacuity is asserted: the family must produce plenty of exact
/// pairs, and plenty whose makespans genuinely differ.
#[test]
fn predicted_ranking_agrees_with_simulator_on_random_programs() {
    let exact_pairs = std::cell::Cell::new(0usize);
    let distinct_pairs = std::cell::Cell::new(0usize);
    cases(
        100,
        "predicted_ranking_agrees_with_simulator_on_random_programs",
        |rng| {
            let nprocs = rng.range_usize(2, 4);
            let n = rng.range_usize(4, 9);
            let (program, entry) = if rng.bool() {
                (programs::jacobi(), "jacobi")
            } else {
                (programs::gauss_seidel(), "gs_iteration")
            };
            let strategy = if rng.bool() {
                Strategy::Runtime
            } else {
                Strategy::CompileTime
            };
            let opt = match rng.range_usize(0, 4) {
                0 => None,
                1 => Some(OptLevel::O1),
                2 => Some(OptLevel::O2),
                _ => Some(OptLevel::O3 {
                    blksize: rng.range_usize(2, 5),
                }),
            };
            let cost = CostModel::ipsc2();
            let mut scored: Vec<(String, u64, u64)> = Vec::new(); // label, predicted, measured
            for c in 0..2 {
                let dist = random_dist(rng, nprocs);
                let label = format!("{entry} n={n} s={nprocs} {strategy:?} {opt:?} #{c} {dist}");
                let decomp = Decomposition::new(nprocs)
                    .array("New", dist.clone())
                    .array("Old", dist);
                let mut job = Job::new(&program, entry, decomp)
                    .with_const("n", n as i64)
                    .with_verify_static(false);
                job.extent_overrides.insert("Old".into(), (n, n));
                if let Some(o) = opt {
                    job = job.with_opt_level(o);
                }
                let compiled = match driver::compile(&job, strategy) {
                    Ok(c) => c,
                    // Some random configurations are legitimately
                    // uncompilable; the tuner records these as rejected.
                    Err(e) => panic!("{label}: {e}"),
                };
                let (env, arrays) = compiled.static_env(&job.const_params);
                let est = pdc_report::estimate(&compiled.spmd, &env, &arrays, &cost);
                if !est.exact {
                    continue;
                }
                let inputs = Inputs::new()
                    .scalar("n", Scalar::Int(n as i64))
                    .array("Old", driver::standard_input(n, n));
                let exec = driver::execute_on(&compiled, &inputs, cost, Backend::Simulated)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                scored.push((label, est.makespan(), exec.makespan()));
            }
            for (label, predicted, measured) in &scored {
                assert_eq!(predicted, measured, "{label}: prediction diverges");
            }
            if let [(la, pa, ma), (lb, pb, mb)] = &scored[..] {
                exact_pairs.set(exact_pairs.get() + 1);
                assert_eq!(
                    pa.cmp(pb),
                    ma.cmp(mb),
                    "ranking disagreement between\n  {la}\n  {lb}"
                );
                if ma != mb {
                    distinct_pairs.set(distinct_pairs.get() + 1);
                }
            }
        },
    );
    // The property must not hold vacuously.
    assert!(
        exact_pairs.get() >= 50,
        "family too inexact: only {} exact pairs",
        exact_pairs.get()
    );
    assert!(
        distinct_pairs.get() >= 25,
        "family too uniform: only {} pairs with distinct makespans",
        distinct_pairs.get()
    );
}

/// The static makespan model is *exact* on driver-compiled programs:
/// whatever the strategy, optimization level, or decomposition, the
/// predicted makespan equals the simulator's measured makespan cycle
/// for cycle.
#[test]
fn predicted_makespan_is_exact_on_compiled_programs() {
    let n = 8usize;
    let dists = [
        Dist::ColumnCyclic,
        Dist::RowBlock,
        Dist::Block2d { prows: 2, pcols: 2 },
    ];
    let programs: [(&str, pdc_lang::Program, &str); 2] = [
        ("gauss_seidel", programs::gauss_seidel(), "gs_iteration"),
        ("jacobi", programs::jacobi(), "jacobi"),
    ];
    for (name, program, entry) in &programs {
        for dist in &dists {
            for strategy in [Strategy::Runtime, Strategy::CompileTime] {
                for opt in [
                    None,
                    Some(OptLevel::O1),
                    Some(OptLevel::O2),
                    Some(OptLevel::O3 { blksize: 4 }),
                ] {
                    let label = format!("{name}/{dist}/{strategy:?}/{opt:?}");
                    let decomp = Decomposition::new(4)
                        .array("New", dist.clone())
                        .array("Old", dist.clone());
                    let mut job = Job::new(program, entry, decomp).with_const("n", n as i64);
                    job.extent_overrides.insert("Old".into(), (n, n));
                    if let Some(o) = opt {
                        job = job.with_opt_level(o);
                    }
                    let compiled =
                        driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
                    let (env, arrays) = compiled.static_env(&job.const_params);
                    let cost = CostModel::ipsc2();
                    let est = pdc_report::estimate(&compiled.spmd, &env, &arrays, &cost);
                    assert!(est.exact, "{label}: inexact: {:?}", est.notes);
                    let inputs = Inputs::new()
                        .scalar("n", Scalar::Int(n as i64))
                        .array("Old", driver::standard_input(n, n));
                    let exec = driver::execute_on(&compiled, &inputs, cost, Backend::Simulated)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                    assert_eq!(
                        est.makespan(),
                        exec.makespan(),
                        "{label}: predicted makespan diverges from the simulator"
                    );
                }
            }
        }
    }
}
