//! Differential testing of the two execution backends.
//!
//! Every workload is compiled once per strategy and then run twice: on
//! the deterministic discrete-event simulator and on the threaded
//! backend (one OS thread per processor, real `mpsc` channels). The
//! gathered outputs must match each other *and* the sequential
//! reference interpreter, and the per-(src, dst, tag) message counts
//! must match **exactly**: as the scheduler documents (see
//! `crates/machine/src/sched.rs`), FIFO order within a typed channel is
//! program order on the sender, so the communication pattern of a
//! program is a backend-independent invariant — any divergence means
//! one of the backends delivered, dropped, or reordered a message.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_istructure::IMatrix;
use pdc_machine::{Backend, CostModel, MachineError};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use std::time::Duration;

/// A named workload: program, entry point, decomposition, output array,
/// and input data.
struct Workload {
    name: &'static str,
    program: pdc_lang::Program,
    entry: &'static str,
    decomp: Decomposition,
    output: &'static str,
    n: usize,
    input_name: &'static str,
    input: IMatrix<Scalar>,
}

/// Hot edges, cold interior — the heat-equation starting grid from
/// `examples/heat.rs`.
fn hot_edge_grid(n: usize) -> IMatrix<Scalar> {
    let mut grid = IMatrix::new(n, n);
    for i in 1..=n as i64 {
        for j in 1..=n as i64 {
            let edge = i == 1 || j == 1 || i == n as i64 || j == n as i64;
            grid.write(i, j, Scalar::Int(if edge { 1000 } else { 0 }))
                .expect("fresh matrix");
        }
    }
    grid
}

fn workloads() -> Vec<Workload> {
    let n = 8usize;
    vec![
        Workload {
            name: "jacobi/column-cyclic",
            program: programs::jacobi(),
            entry: "jacobi",
            decomp: Decomposition::new(4)
                .array("New", Dist::ColumnCyclic)
                .array("Old", Dist::ColumnCyclic),
            output: "New",
            n,
            input_name: "Old",
            input: driver::standard_input(n, n),
        },
        Workload {
            name: "wavefront/gauss-seidel",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            decomp: programs::wavefront_decomposition(4),
            output: "New",
            n,
            input_name: "Old",
            input: driver::standard_input(n, n),
        },
        Workload {
            name: "block-jacobi/2x2-grid",
            program: programs::jacobi(),
            entry: "jacobi",
            decomp: Decomposition::new(4)
                .array("New", Dist::Block2d { prows: 2, pcols: 2 })
                .array("Old", Dist::Block2d { prows: 2, pcols: 2 }),
            output: "New",
            n,
            input_name: "Old",
            input: driver::standard_input(n, n),
        },
        Workload {
            name: "heat/hot-edge-sweep",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            decomp: programs::wavefront_decomposition(4),
            output: "New",
            n,
            input_name: "Old",
            input: hot_edge_grid(n),
        },
    ]
}

/// Compile `w` under `strategy` and run it on both backends; assert the
/// full equivalence contract.
fn check(w: &Workload, strategy: Strategy) {
    let label = format!("{} under {strategy:?}", w.name);
    let mut job = Job::new(&w.program, w.entry, w.decomp.clone()).with_const("n", w.n as i64);
    job.extent_overrides
        .insert(w.input_name.to_owned(), (w.n, w.n));
    let compiled = driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(w.n as i64))
        .array(w.input_name, w.input.clone());

    let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .unwrap_or_else(|e| panic!("{label} (simulated): {e}"));
    let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
        .unwrap_or_else(|e| panic!("{label} (threaded): {e}"));

    // Both backends deliver every message they send, and both report the
    // same (empty) set of pending (src, dst, tag) triples — the threaded
    // backend's diagnostic parity with the simulator's `pending_triples`.
    assert_eq!(
        sim.outcome.report.undelivered, 0,
        "{label}: sim undelivered"
    );
    assert_eq!(
        thr.outcome.report.undelivered, 0,
        "{label}: threaded undelivered"
    );
    assert_eq!(
        sim.outcome.report.pending,
        Vec::new(),
        "{label}: sim pending triples"
    );
    assert_eq!(
        thr.outcome.report.pending,
        Vec::new(),
        "{label}: threaded pending triples"
    );

    // Outputs: threaded == simulated == sequential interpreter.
    let g_sim = sim.gather(w.output).expect("sim gather");
    let g_thr = thr.gather(w.output).expect("threaded gather");
    let seq = driver::run_sequential(&w.program, w.entry, &inputs).expect("sequential");
    assert_eq!(
        driver::first_mismatch(&g_sim, &seq),
        None,
        "{label}: simulator disagrees with sequential interpreter"
    );
    assert_eq!(
        driver::first_mismatch(&g_thr, &seq),
        None,
        "{label}: threaded backend disagrees with sequential interpreter"
    );

    // Per-pair message counts match exactly (the FIFO invariant above).
    assert_eq!(
        thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
        "{label}: per-(src, dst, tag) message counts diverge"
    );

    // Logical clocks are carried inside the messages, so even the
    // makespan is thread-schedule-independent.
    assert_eq!(
        thr.outcome.report.stats.makespan(),
        sim.outcome.report.stats.makespan(),
        "{label}: makespan diverges"
    );
}

/// An automatically tuned decomposition is bit-identical across
/// backends too: the tuner picks a decomposition statically, so the
/// compiled program it selects must satisfy the same equivalence
/// contract — outputs equal to the sequential interpreter on both
/// backends, identical per-pair message counts, identical makespan.
#[test]
fn backends_agree_on_tuned_decompositions() {
    let n = 8usize;
    let program = programs::gauss_seidel();
    for strategy in [Strategy::Runtime, Strategy::CompileTime] {
        let label = format!("tuned wavefront under {strategy:?}");
        let mut job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(4),
        )
        .with_const("n", n as i64)
        .with_opt_level(pdc_opt::OptLevel::O2)
        .with_auto_decomposition();
        job.extent_overrides.insert("Old".into(), (n, n));
        let compiled = driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(compiled.tune.is_some(), "{label}: missing search trace");
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));

        let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
            .unwrap_or_else(|e| panic!("{label} (simulated): {e}"));
        let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
            .unwrap_or_else(|e| panic!("{label} (threaded): {e}"));

        assert_eq!(
            sim.outcome.report.undelivered, 0,
            "{label}: sim undelivered"
        );
        assert_eq!(
            thr.outcome.report.undelivered, 0,
            "{label}: threaded undelivered"
        );
        assert_eq!(
            sim.outcome.report.pending,
            Vec::new(),
            "{label}: sim pending"
        );
        assert_eq!(
            thr.outcome.report.pending,
            Vec::new(),
            "{label}: threaded pending"
        );

        let g_sim = sim.gather("New").expect("sim gather");
        let g_thr = thr.gather("New").expect("threaded gather");
        let seq = driver::run_sequential(&program, "gs_iteration", &inputs).expect("sequential");
        assert_eq!(
            driver::first_mismatch(&g_sim, &seq),
            None,
            "{label}: simulator disagrees with sequential interpreter"
        );
        assert_eq!(
            driver::first_mismatch(&g_thr, &seq),
            None,
            "{label}: threaded backend disagrees with sequential interpreter"
        );
        assert_eq!(
            thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
            "{label}: per-(src, dst, tag) message counts diverge"
        );
        assert_eq!(
            thr.outcome.report.stats.makespan(),
            sim.outcome.report.stats.makespan(),
            "{label}: makespan diverges"
        );
        // And the tuner's predicted makespan is the one both backends agree on.
        assert_eq!(
            compiled.tune.as_ref().unwrap().winner_score().makespan,
            sim.outcome.report.stats.makespan().0,
            "{label}: tuner's predicted makespan diverges from execution"
        );
    }
}

#[test]
fn backends_agree_under_runtime_resolution() {
    for w in workloads() {
        check(&w, Strategy::Runtime);
    }
}

#[test]
fn backends_agree_under_compile_time_resolution() {
    for w in workloads() {
        check(&w, Strategy::CompileTime);
    }
}

/// A cycle of receives that no execution can satisfy: the simulator
/// proves a global deadlock, while the threaded backend — which has no
/// global view — must surface a receive timeout instead of hanging.
#[test]
fn cyclic_deadlock_returns_timeout_on_threaded_backend() {
    // Each of the two processors waits for the other before sending.
    let body = vec![
        SStmt::Recv {
            from: SExpr::int(1).sub(SExpr::my_node()),
            tag: 7,
            into: vec![RecvTarget::Var("x".into())],
        },
        SStmt::Send {
            to: SExpr::int(1).sub(SExpr::my_node()),
            tag: 7,
            values: vec![SExpr::int(1)],
        },
    ];
    let prog = SpmdProgram::uniform(2, body);

    let sim_err = SpmdMachine::new(&prog, CostModel::zero())
        .expect("lowers")
        .run()
        .expect_err("simulator detects the cycle");
    assert!(
        matches!(
            sim_err,
            pdc_spmd::SpmdError::Machine(MachineError::Deadlock { .. })
        ),
        "simulator reports a deadlock, got: {sim_err}"
    );

    let thr_err = SpmdMachine::new(&prog, CostModel::zero())
        .expect("lowers")
        .with_backend(Backend::Threaded {
            recv_timeout: Duration::from_millis(50),
        })
        .run()
        .expect_err("threaded backend times out");
    assert!(
        matches!(
            thr_err,
            pdc_spmd::SpmdError::Machine(MachineError::RecvTimeout { .. })
        ),
        "threaded backend reports a receive timeout, got: {thr_err}"
    );
}
