//! Differential testing of the two execution backends.
//!
//! Every workload is compiled once per strategy and then run twice: on
//! the deterministic discrete-event simulator and on the threaded
//! backend (one OS thread per processor, real `mpsc` channels). The
//! gathered outputs must match each other *and* the sequential
//! reference interpreter, and the per-(src, dst, tag) message counts
//! must match **exactly**: as the scheduler documents (see
//! `crates/machine/src/sched.rs`), FIFO order within a typed channel is
//! program order on the sender, so the communication pattern of a
//! program is a backend-independent invariant — any divergence means
//! one of the backends delivered, dropped, or reordered a message.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_istructure::IMatrix;
use pdc_machine::{Backend, CheckpointCfg, CostModel, FaultPlan, MachineError, RelConfig};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use std::time::Duration;

/// A named workload: program, entry point, decomposition, output array,
/// and input data.
struct Workload {
    name: &'static str,
    program: pdc_lang::Program,
    entry: &'static str,
    decomp: Decomposition,
    output: &'static str,
    n: usize,
    input_name: &'static str,
    input: IMatrix<Scalar>,
}

/// Hot edges, cold interior — the heat-equation starting grid from
/// `examples/heat.rs`.
fn hot_edge_grid(n: usize) -> IMatrix<Scalar> {
    let mut grid = IMatrix::new(n, n);
    for i in 1..=n as i64 {
        for j in 1..=n as i64 {
            let edge = i == 1 || j == 1 || i == n as i64 || j == n as i64;
            grid.write(i, j, Scalar::Int(if edge { 1000 } else { 0 }))
                .expect("fresh matrix");
        }
    }
    grid
}

fn workloads() -> Vec<Workload> {
    let n = 8usize;
    vec![
        Workload {
            name: "jacobi/column-cyclic",
            program: programs::jacobi(),
            entry: "jacobi",
            decomp: Decomposition::new(4)
                .array("New", Dist::ColumnCyclic)
                .array("Old", Dist::ColumnCyclic),
            output: "New",
            n,
            input_name: "Old",
            input: driver::standard_input(n, n),
        },
        Workload {
            name: "wavefront/gauss-seidel",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            decomp: programs::wavefront_decomposition(4),
            output: "New",
            n,
            input_name: "Old",
            input: driver::standard_input(n, n),
        },
        Workload {
            name: "block-jacobi/2x2-grid",
            program: programs::jacobi(),
            entry: "jacobi",
            decomp: Decomposition::new(4)
                .array("New", Dist::Block2d { prows: 2, pcols: 2 })
                .array("Old", Dist::Block2d { prows: 2, pcols: 2 }),
            output: "New",
            n,
            input_name: "Old",
            input: driver::standard_input(n, n),
        },
        Workload {
            name: "heat/hot-edge-sweep",
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            decomp: programs::wavefront_decomposition(4),
            output: "New",
            n,
            input_name: "Old",
            input: hot_edge_grid(n),
        },
    ]
}

/// Compile `w` under `strategy` and run it on both backends; assert the
/// full equivalence contract.
fn check(w: &Workload, strategy: Strategy) {
    let label = format!("{} under {strategy:?}", w.name);
    let mut job = Job::new(&w.program, w.entry, w.decomp.clone()).with_const("n", w.n as i64);
    job.extent_overrides
        .insert(w.input_name.to_owned(), (w.n, w.n));
    let compiled = driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(w.n as i64))
        .array(w.input_name, w.input.clone());

    let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .unwrap_or_else(|e| panic!("{label} (simulated): {e}"));
    let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
        .unwrap_or_else(|e| panic!("{label} (threaded): {e}"));

    // Both backends deliver every message they send, and both report the
    // same (empty) set of pending (src, dst, tag) triples — the threaded
    // backend's diagnostic parity with the simulator's `pending_triples`.
    assert_eq!(
        sim.outcome.report.undelivered, 0,
        "{label}: sim undelivered"
    );
    assert_eq!(
        thr.outcome.report.undelivered, 0,
        "{label}: threaded undelivered"
    );
    assert_eq!(
        sim.outcome.report.pending,
        Vec::new(),
        "{label}: sim pending triples"
    );
    assert_eq!(
        thr.outcome.report.pending,
        Vec::new(),
        "{label}: threaded pending triples"
    );

    // Outputs: threaded == simulated == sequential interpreter.
    let g_sim = sim.gather(w.output).expect("sim gather");
    let g_thr = thr.gather(w.output).expect("threaded gather");
    let seq = driver::run_sequential(&w.program, w.entry, &inputs).expect("sequential");
    assert_eq!(
        driver::first_mismatch(&g_sim, &seq),
        None,
        "{label}: simulator disagrees with sequential interpreter"
    );
    assert_eq!(
        driver::first_mismatch(&g_thr, &seq),
        None,
        "{label}: threaded backend disagrees with sequential interpreter"
    );

    // Per-pair message counts match exactly (the FIFO invariant above).
    assert_eq!(
        thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
        "{label}: per-(src, dst, tag) message counts diverge"
    );

    // Logical clocks are carried inside the messages, so even the
    // makespan is thread-schedule-independent.
    assert_eq!(
        thr.outcome.report.stats.makespan(),
        sim.outcome.report.stats.makespan(),
        "{label}: makespan diverges"
    );
}

/// An automatically tuned decomposition is bit-identical across
/// backends too: the tuner picks a decomposition statically, so the
/// compiled program it selects must satisfy the same equivalence
/// contract — outputs equal to the sequential interpreter on both
/// backends, identical per-pair message counts, identical makespan.
#[test]
fn backends_agree_on_tuned_decompositions() {
    let n = 8usize;
    let program = programs::gauss_seidel();
    for strategy in [Strategy::Runtime, Strategy::CompileTime] {
        let label = format!("tuned wavefront under {strategy:?}");
        let mut job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(4),
        )
        .with_const("n", n as i64)
        .with_opt_level(pdc_opt::OptLevel::O2)
        .with_auto_decomposition();
        job.extent_overrides.insert("Old".into(), (n, n));
        let compiled = driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(compiled.tune.is_some(), "{label}: missing search trace");
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));

        let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
            .unwrap_or_else(|e| panic!("{label} (simulated): {e}"));
        let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
            .unwrap_or_else(|e| panic!("{label} (threaded): {e}"));

        assert_eq!(
            sim.outcome.report.undelivered, 0,
            "{label}: sim undelivered"
        );
        assert_eq!(
            thr.outcome.report.undelivered, 0,
            "{label}: threaded undelivered"
        );
        assert_eq!(
            sim.outcome.report.pending,
            Vec::new(),
            "{label}: sim pending"
        );
        assert_eq!(
            thr.outcome.report.pending,
            Vec::new(),
            "{label}: threaded pending"
        );

        let g_sim = sim.gather("New").expect("sim gather");
        let g_thr = thr.gather("New").expect("threaded gather");
        let seq = driver::run_sequential(&program, "gs_iteration", &inputs).expect("sequential");
        assert_eq!(
            driver::first_mismatch(&g_sim, &seq),
            None,
            "{label}: simulator disagrees with sequential interpreter"
        );
        assert_eq!(
            driver::first_mismatch(&g_thr, &seq),
            None,
            "{label}: threaded backend disagrees with sequential interpreter"
        );
        assert_eq!(
            thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
            "{label}: per-(src, dst, tag) message counts diverge"
        );
        assert_eq!(
            thr.outcome.report.stats.makespan(),
            sim.outcome.report.stats.makespan(),
            "{label}: makespan diverges"
        );
        // And the tuner's predicted makespan is the one both backends agree on.
        assert_eq!(
            compiled.tune.as_ref().unwrap().winner_score().makespan,
            sim.outcome.report.stats.makespan().0,
            "{label}: tuner's predicted makespan diverges from execution"
        );
    }
}

#[test]
fn backends_agree_under_runtime_resolution() {
    for w in workloads() {
        check(&w, Strategy::Runtime);
    }
}

#[test]
fn backends_agree_under_compile_time_resolution() {
    for w in workloads() {
        check(&w, Strategy::CompileTime);
    }
}

/// A two-processor pipeline streaming 40 four-scalar messages one way
/// and a checksum back — every frame (10 words) is bigger than an
/// 8-word ring, so tiny rings force the chunked send path and hundreds
/// of wraparounds.
fn stream_program() -> SpmdProgram {
    let mut p0 = Vec::new();
    let mut p1 = vec![SStmt::Let {
        var: "acc".into(),
        value: SExpr::int(0),
    }];
    for m in 0..40i64 {
        p0.push(SStmt::Send {
            to: SExpr::int(1),
            tag: 0,
            values: vec![
                SExpr::int(m),
                SExpr::int(3 * m + 1),
                SExpr::int(5 * m + 2),
                SExpr::int(7 * m + 3),
            ],
        });
        p1.push(SStmt::Recv {
            from: SExpr::int(0),
            tag: 0,
            into: vec![
                RecvTarget::Var("a".into()),
                RecvTarget::Var("b".into()),
                RecvTarget::Var("c".into()),
                RecvTarget::Var("d".into()),
            ],
        });
        p1.push(SStmt::Let {
            var: "acc".into(),
            value: SExpr::var("acc")
                .add(SExpr::var("a"))
                .add(SExpr::var("b"))
                .add(SExpr::var("c"))
                .add(SExpr::var("d")),
        });
    }
    p1.push(SStmt::Send {
        to: SExpr::int(0),
        tag: 1,
        values: vec![SExpr::var("acc")],
    });
    p0.push(SStmt::Recv {
        from: SExpr::int(1),
        tag: 1,
        into: vec![RecvTarget::Var("total".into())],
    });
    SpmdProgram::new(vec![p0, p1])
}

/// Ring capacity is invisible to programs: an 8-word ring (every frame
/// chunked), a 64-word ring, and the default all produce the checksum,
/// per-pair message counts, and logical makespan of the simulator.
#[test]
fn ring_capacity_is_invisible_to_programs() {
    let prog = stream_program();
    let expected_total: i64 = (0..40).map(|m| 16 * m + 6).sum();

    let mut sim = SpmdMachine::new(&prog, CostModel::ipsc2()).expect("lowers");
    let sim_out = sim.run().expect("simulator runs");
    assert_eq!(sim.vm(0).var("total"), Some(Scalar::Int(expected_total)));

    for words in [Some(8usize), Some(64), None] {
        let label = format!("ring capacity {words:?}");
        let mut m = SpmdMachine::new(&prog, CostModel::ipsc2())
            .expect("lowers")
            .with_backend(Backend::threaded());
        if let Some(words) = words {
            m = m.with_ring_capacity(words);
        }
        let out = m.run().unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(
            m.vm(0).var("total"),
            Some(Scalar::Int(expected_total)),
            "{label}: checksum"
        );
        assert_eq!(
            m.vm(1).var("acc"),
            Some(Scalar::Int(expected_total)),
            "{label}: receiver accumulator"
        );
        assert_eq!(out.report.undelivered, 0, "{label}: undelivered");
        assert_eq!(
            out.report.pair_messages, sim_out.report.pair_messages,
            "{label}: per-pair message counts"
        );
        assert_eq!(
            out.report.stats.makespan(),
            sim_out.report.stats.makespan(),
            "{label}: logical makespan"
        );
    }
}

/// The equivalence contract holds over the ring fabric with the
/// reliable-delivery protocol and checkpointing interposed: a lossy
/// fault plan plus periodic snapshots on both backends still produces
/// the sequential interpreter's output and identical per-pair counts.
#[test]
fn backends_agree_on_faulty_checkpointed_wavefronts() {
    let n = 8usize;
    let program = programs::gauss_seidel();
    let plan = FaultPlan::seeded(9)
        .with_drops(200)
        .with_dups(120)
        .with_fault_budget(4);
    let rel = RelConfig {
        rto_wall: Duration::from_millis(2),
        ..RelConfig::default()
    };
    let mut job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(4),
    )
    .with_const("n", n as i64)
    .with_fault_plan(plan, rel)
    .with_checkpoint_cfg(CheckpointCfg::every(64));
    job.extent_overrides.insert("Old".into(), (n, n));
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "gs_iteration", &inputs).expect("sequential");

    let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .expect("simulated faulty run");
    let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
        .expect("threaded faulty run");
    for (label, exec) in [("simulated", &sim), ("threaded", &thr)] {
        assert_eq!(exec.outcome.report.undelivered, 0, "{label}: undelivered");
        let gathered = exec.gather("New").expect("gathers");
        assert_eq!(
            driver::first_mismatch(&gathered, &seq),
            None,
            "{label}: faulty checkpointed run disagrees with the interpreter"
        );
        assert!(
            exec.outcome.report.recovery.is_some(),
            "{label}: checkpointed run carries a recovery report"
        );
    }
    assert_eq!(
        thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
        "per-pair logical message counts diverge under faults"
    );
}

/// A cycle of receives that no execution can satisfy: the simulator
/// proves a global deadlock, while the threaded backend — which has no
/// global view — must surface a receive timeout instead of hanging.
#[test]
fn cyclic_deadlock_returns_timeout_on_threaded_backend() {
    // Each of the two processors waits for the other before sending.
    let body = vec![
        SStmt::Recv {
            from: SExpr::int(1).sub(SExpr::my_node()),
            tag: 7,
            into: vec![RecvTarget::Var("x".into())],
        },
        SStmt::Send {
            to: SExpr::int(1).sub(SExpr::my_node()),
            tag: 7,
            values: vec![SExpr::int(1)],
        },
    ];
    let prog = SpmdProgram::uniform(2, body);

    let sim_err = SpmdMachine::new(&prog, CostModel::zero())
        .expect("lowers")
        .run()
        .expect_err("simulator detects the cycle");
    assert!(
        matches!(
            sim_err,
            pdc_spmd::SpmdError::Machine(MachineError::Deadlock { .. })
        ),
        "simulator reports a deadlock, got: {sim_err}"
    );

    let thr_err = SpmdMachine::new(&prog, CostModel::zero())
        .expect("lowers")
        .with_backend(Backend::Threaded {
            recv_timeout: Duration::from_millis(50),
        })
        .run()
        .expect_err("threaded backend times out");
    assert!(
        matches!(
            thr_err,
            pdc_spmd::SpmdError::Machine(MachineError::RecvTimeout { .. })
        ),
        "threaded backend reports a receive timeout, got: {thr_err}"
    );
}
