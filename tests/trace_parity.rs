//! Trace parity between the two execution backends — the regression
//! test for the silently-empty-trace bug, where `SpmdMachine` on
//! `Backend::Threaded` dropped the trace configuration and returned an
//! empty trace with no error.
//!
//! Logical clocks are backend-invariant, so the *communication* events
//! of a traced run are too: the per-(src, dst, tag) multiset of send
//! and receive events (with payload sizes and timestamps) must be
//! identical across backends. Only the interleaving of independent
//! processors in the merged order may differ.

use pdc_bench::{run_wavefront_traced, Variant};
use pdc_machine::{analyze, Backend, CostModel, EventKind, RunReport, Trace};
use std::collections::BTreeMap;

/// The backend-invariant fingerprint of a communication event:
/// (is_recv, src, dst, tag, words, completion time).
type CommKey = (bool, usize, usize, u32, usize, u64);

fn comm_multiset(trace: &Trace) -> BTreeMap<CommKey, u64> {
    let mut out = BTreeMap::new();
    for e in trace.events() {
        let key = match e.kind {
            EventKind::Send {
                dst, tag, words, ..
            } => (false, e.proc.0, dst.0, tag.0, words, e.at.0),
            EventKind::Recv {
                src, tag, words, ..
            } => (true, src.0, e.proc.0, tag.0, words, e.at.0),
            _ => continue,
        };
        *out.entry(key).or_insert(0) += 1;
    }
    out
}

fn traced(variant: Variant, n: usize, s: usize, backend: Backend) -> RunReport {
    run_wavefront_traced(variant, n, s, CostModel::ipsc2(), backend, 1 << 20)
}

#[test]
fn wavefront_traces_match_across_backends() {
    for s in [2usize, 4] {
        for variant in [Variant::CompileTime, Variant::OptimizedII] {
            let sim = traced(variant, 16, s, Backend::Simulated);
            let thr = traced(variant, 16, s, Backend::threaded());

            // The regression itself: the threaded backend used to return
            // an empty trace with no error.
            assert!(
                !thr.trace.is_empty(),
                "{variant} (s={s}): threaded backend recorded no events"
            );
            assert_eq!(thr.trace.dropped(), 0, "cap was large enough");
            assert_eq!(sim.trace.dropped(), 0, "cap was large enough");

            assert_eq!(
                comm_multiset(&sim.trace),
                comm_multiset(&thr.trace),
                "{variant} (s={s}): send/recv event multisets diverge"
            );
        }
    }
}

#[test]
fn critical_path_sums_to_makespan_on_simulator() {
    for s in [2usize, 4] {
        let report = traced(Variant::CompileTime, 16, s, Backend::Simulated);
        let cp = analyze(&report.trace, s).critical_path;
        assert_eq!(cp.makespan, report.stats.makespan().0);
        assert_eq!(
            cp.total(),
            cp.makespan,
            "s={s}: compute {} + send {} + recv {} + flight {} + blocked {} != makespan {}",
            cp.compute,
            cp.send_overhead,
            cp.recv_overhead,
            cp.flight,
            cp.blocked,
            cp.makespan
        );
        assert!(cp.exact, "fault-free simulator trace decomposes exactly");
    }
}

#[test]
fn untraced_runs_still_carry_an_empty_trace() {
    // No with_trace: the report's trace is present but disabled/empty on
    // both backends — tracing stays strictly opt-in.
    let prog = pdc_bench::build_wavefront(Variant::CompileTime, 8, 2);
    for backend in [Backend::Simulated, Backend::threaded()] {
        let mut m = pdc_spmd::run::SpmdMachine::new(&prog, CostModel::ipsc2())
            .expect("lowers")
            .with_backend(backend);
        m.preset_var("n", pdc_spmd::Scalar::Int(8));
        m.preload_array(
            "Old",
            pdc_mapping::Dist::ColumnCyclic,
            &pdc_core::driver::standard_input(8, 8),
        );
        let out = m.run().expect("runs");
        assert!(out.report.trace.is_empty(), "{backend:?}");
    }
}
