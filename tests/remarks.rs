//! Golden tests for the compiler remark stream on the wavefront program.
//!
//! The per-phase Applied/Missed counts are pinned for every optimization
//! level, every optimization-pass remark must carry a source span, and
//! two identical compiles must serialize to byte-identical JSON.

use pdc_core::driver::{compile, Compiled, Job, Strategy};
use pdc_core::programs;
use pdc_opt::OptLevel;
use pdc_report::{counts, Phase, RemarkKind};

const N: usize = 16;
const S: usize = 4;

fn compile_wavefront(strategy: Strategy, level: Option<OptLevel>) -> Compiled {
    let program = programs::gauss_seidel();
    let mut job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(S),
    )
    .with_const("n", N as i64);
    if let Some(level) = level {
        job = job.with_opt_level(level);
    }
    compile(&job, strategy).expect("wavefront compiles")
}

fn count(c: &Compiled, phase: Phase, kind: RemarkKind) -> usize {
    counts(&c.remarks).get(&(phase, kind)).copied().unwrap_or(0)
}

#[test]
fn golden_counts_runtime_resolution() {
    let c = compile_wavefront(Strategy::Runtime, None);
    // Seven assignments: two replicated `let`s, four boundary copies and
    // rows, one interior point.
    assert_eq!(count(&c, Phase::Analysis, RemarkKind::Applied), 7);
    assert_eq!(count(&c, Phase::Analysis, RemarkKind::Missed), 0);
    // §3.1 resolves every one of them at run time.
    assert_eq!(count(&c, Phase::RuntimeRes, RemarkKind::Missed), 7);
    assert_eq!(count(&c, Phase::RuntimeRes, RemarkKind::Applied), 0);
    // Dependence analysis is strategy-independent: three exact nest
    // summaries and the one wavefront hotspot lint.
    assert_eq!(count(&c, Phase::Depend, RemarkKind::Applied), 3);
    assert_eq!(count(&c, Phase::Depend, RemarkKind::Missed), 1);
    assert_eq!(count(&c, Phase::CostModel, RemarkKind::Applied), 1);
    assert_eq!(count(&c, Phase::CostModel, RemarkKind::Missed), 0);
}

#[test]
fn golden_counts_per_opt_level() {
    // (level, vectorize A/M, jam A/M, strip A/M)
    let cases = [
        (OptLevel::O0, (0, 0), (0, 0), (0, 0)),
        (OptLevel::O1, (1, 1), (0, 0), (0, 0)),
        (OptLevel::O2, (1, 1), (1, 0), (0, 0)),
        (OptLevel::O3 { blksize: 4 }, (1, 1), (1, 0), (1, 1)),
    ];
    for (level, vec, jam, strip) in cases {
        let c = compile_wavefront(Strategy::CompileTime, Some(level));
        // The front half does not depend on the level.
        assert_eq!(
            count(&c, Phase::Analysis, RemarkKind::Applied),
            7,
            "{level}"
        );
        assert_eq!(
            count(&c, Phase::CompileTime, RemarkKind::Applied),
            16,
            "{level}"
        );
        // One statement (the last-row copy whose owner depends on `n`)
        // keeps a runtime ownership guard.
        assert_eq!(
            count(&c, Phase::CompileTime, RemarkKind::Missed),
            1,
            "{level}"
        );
        // Dependence analysis runs before optimization and does not
        // depend on the level: three exact nest summaries plus the
        // column-carried wavefront hotspot lint.
        assert_eq!(count(&c, Phase::Depend, RemarkKind::Applied), 3, "{level}");
        assert_eq!(count(&c, Phase::Depend, RemarkKind::Missed), 1, "{level}");
        let got = (
            (
                count(&c, Phase::Vectorize, RemarkKind::Applied),
                count(&c, Phase::Vectorize, RemarkKind::Missed),
            ),
            (
                count(&c, Phase::Jam, RemarkKind::Applied),
                count(&c, Phase::Jam, RemarkKind::Missed),
            ),
            (
                count(&c, Phase::Strip, RemarkKind::Applied),
                count(&c, Phase::Strip, RemarkKind::Missed),
            ),
        );
        assert_eq!(got, (vec, jam, strip), "{level}");
        // The report counts per-processor rewrites; remarks are per tag.
        // A pass fired iff it has an Applied remark.
        assert_eq!(c.opt_report.vectorized > 0, vec.0 > 0, "{level}");
        assert_eq!(c.opt_report.jammed > 0, jam.0 > 0, "{level}");
        assert_eq!(c.opt_report.stripped > 0, strip.0 > 0, "{level}");
        assert_eq!(
            count(&c, Phase::CostModel, RemarkKind::Applied),
            1,
            "{level}"
        );
        assert_eq!(
            count(&c, Phase::CostModel, RemarkKind::Missed),
            0,
            "{level}"
        );
    }
}

#[test]
fn every_opt_candidate_has_a_source_span() {
    let c = compile_wavefront(Strategy::CompileTime, Some(OptLevel::O3 { blksize: 4 }));
    let mut opt_remarks = 0;
    for r in &c.remarks {
        if matches!(r.phase, Phase::Vectorize | Phase::Jam | Phase::Strip) {
            opt_remarks += 1;
            assert!(
                r.span.is_some(),
                "[{}] {} remark lacks a span: {}",
                r.phase,
                r.kind,
                r.message
            );
            assert!(r.tag.is_some(), "opt remark lacks a tag: {}", r.message);
        }
    }
    assert!(opt_remarks >= 5, "expected a full candidate list");
}

#[test]
fn remark_stream_is_deterministic() {
    let a = compile_wavefront(Strategy::CompileTime, Some(OptLevel::O3 { blksize: 4 }));
    let b = compile_wavefront(Strategy::CompileTime, Some(OptLevel::O3 { blksize: 4 }));
    assert_eq!(a.remarks_json(), b.remarks_json());
    assert_eq!(a.remarks_text(), b.remarks_text());
    let c = compile_wavefront(Strategy::Runtime, None);
    let d = compile_wavefront(Strategy::Runtime, None);
    assert_eq!(c.remarks_json(), d.remarks_json());
}

#[test]
fn remarks_json_parses_with_std_only_parser() {
    let c = compile_wavefront(Strategy::CompileTime, Some(OptLevel::O3 { blksize: 4 }));
    let doc = pdc_machine::trace_chrome::parse_json(&c.remarks_json()).expect("valid JSON");
    let remarks = doc
        .get("remarks")
        .and_then(|r| r.as_arr())
        .expect("remarks array");
    assert_eq!(remarks.len(), c.remarks.len());
    for r in remarks {
        assert!(r.get("phase").and_then(|p| p.as_str()).is_some());
        assert!(r.get("kind").and_then(|k| k.as_str()).is_some());
        assert!(r.get("message").and_then(|m| m.as_str()).is_some());
    }
    assert!(doc.get("counts").is_some());
}
