//! Golden diagnostics for the static communication-safety analyzer.
//!
//! Each test compiles a correct paper program, *breaks* the compiled
//! per-processor IR the way a buggy optimization pass or code generator
//! would (dropping a send, swapping tags, duplicating a write, shrinking
//! a loop bound), re-analyzes the mutated program under the same static
//! environment, and asserts the analyzer reports the expected diagnostic
//! — anchored to a resolved source span, since a finding the user cannot
//! locate is barely a finding at all.

use pdc_analyze::{analyze, DiagKind, Severity};
use pdc_core::driver::{self, Compiled, Job, Strategy};
use pdc_core::{programs, CoreError};
use pdc_mapping::DistInstance;
use pdc_opt::OptLevel;
use pdc_spmd::ir::{SBinOp, SExpr, SStmt};
use std::collections::{BTreeMap, HashMap};

const N: i64 = 6;
const NPROCS: usize = 4;

/// A verified Jacobi compile at O1: vectorized sends/receives nested in
/// loops and guards — realistic prey for the mutations below.
fn jacobi_o1() -> (
    Compiled,
    BTreeMap<String, i64>,
    BTreeMap<String, DistInstance>,
) {
    let program = programs::jacobi();
    let job = Job::new(
        &program,
        "jacobi",
        programs::wavefront_decomposition(NPROCS),
    )
    .with_const("n", N)
    .with_opt_level(OptLevel::O1);
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("jacobi compiles");
    let report = compiled
        .verification
        .as_ref()
        .expect("verification on at O1");
    assert!(report.verified(), "the unbroken program must verify");
    let consts: HashMap<String, i64> = [("n".to_string(), N)].into();
    let (env, arrays) = compiled.static_env(&consts);
    (compiled, env, arrays)
}

/// Remove the first vectorized send (recursing into loops and guards);
/// returns its tag.
fn drop_first_send(body: &mut Vec<SStmt>) -> Option<u32> {
    for i in 0..body.len() {
        match &mut body[i] {
            SStmt::Send { tag, .. } | SStmt::SendBuf { tag, .. } => {
                let tag = *tag;
                body.remove(i);
                return Some(tag);
            }
            SStmt::For { body: b, .. } => {
                if let Some(t) = drop_first_send(b) {
                    return Some(t);
                }
            }
            SStmt::If { then, els, .. } => {
                if let Some(t) = drop_first_send(then).or_else(|| drop_first_send(els)) {
                    return Some(t);
                }
            }
            _ => {}
        }
    }
    None
}

/// Swap two tags on every send in the body (receives keep theirs).
fn swap_send_tags(body: &mut Vec<SStmt>, a: u32, b: u32) {
    for s in body {
        match s {
            SStmt::Send { tag, .. } | SStmt::SendBuf { tag, .. } => {
                if *tag == a {
                    *tag = b;
                } else if *tag == b {
                    *tag = a;
                }
            }
            SStmt::For { body, .. } => swap_send_tags(body, a, b),
            SStmt::If { then, els, .. } => {
                swap_send_tags(then, a, b);
                swap_send_tags(els, a, b);
            }
            _ => {}
        }
    }
}

/// Duplicate the first I-structure write; returns the array written.
fn duplicate_first_awrite(body: &mut Vec<SStmt>) -> Option<String> {
    for i in 0..body.len() {
        match &mut body[i] {
            SStmt::AWrite { array, .. } | SStmt::AWriteGlobal { array, .. } => {
                let array = array.clone();
                let dup = body[i].clone();
                body.insert(i + 1, dup);
                return Some(array);
            }
            SStmt::For { body: b, .. } => {
                if let Some(a) = duplicate_first_awrite(b) {
                    return Some(a);
                }
            }
            SStmt::If { then, els, .. } => {
                if let Some(a) =
                    duplicate_first_awrite(then).or_else(|| duplicate_first_awrite(els))
                {
                    return Some(a);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does this subtree contain a send?
fn has_send(body: &[SStmt]) -> bool {
    body.iter().any(|s| match s {
        SStmt::Send { .. } | SStmt::SendBuf { .. } => true,
        SStmt::For { body, .. } => has_send(body),
        SStmt::If { then, els, .. } => has_send(then) || has_send(els),
        _ => false,
    })
}

/// Shrink by one the upper bound of the first loop whose body sends.
fn shrink_first_send_loop(body: &mut Vec<SStmt>) -> bool {
    for s in body {
        if let SStmt::For { hi, body: b, .. } = s {
            if has_send(b) {
                *hi = SExpr::Bin(SBinOp::Sub, Box::new(hi.clone()), Box::new(SExpr::Int(1)));
                return true;
            }
            if shrink_first_send_loop(b) {
                return true;
            }
        }
    }
    false
}

#[test]
fn dropped_send_is_reported_with_a_source_span() {
    let (mut compiled, env, arrays) = jacobi_o1();
    let tag = drop_first_send(compiled.spmd.body_mut(0)).expect("P0 sends");
    let report = analyze(&compiled.spmd, &env, &arrays);
    assert!(report.exact, "mutation must not cost precision");
    assert!(!report.verified());
    // The starved channel is both a count mismatch and, in the abstract
    // replay, a receive no remaining send can satisfy.
    let unmatched = report
        .diagnostics
        .iter()
        .find(|d| d.kind == DiagKind::UnmatchedChannel && d.tag == Some(tag))
        .expect("unmatched channel on the dropped tag");
    assert_eq!(unmatched.severity, Severity::Error);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.kind == DiagKind::UnsatisfiedRecv && d.tag == Some(tag)));
    let span = compiled
        .resolve_tag_span(tag)
        .expect("tag resolves to source");
    let src = programs::JACOBI;
    assert!(span.start < src.len(), "span lands inside the source");
}

#[test]
fn swapped_send_tags_starve_one_channel_and_orphan_another() {
    let (mut compiled, env, arrays) = jacobi_o1();
    // P0's two boundary-exchange sends carry consecutive tags to
    // different neighbours; swapping them misroutes both streams.
    let tags: Vec<u32> = {
        let mut tags = Vec::new();
        fn collect(body: &[SStmt], tags: &mut Vec<u32>) {
            for s in body {
                match s {
                    SStmt::Send { tag, .. } | SStmt::SendBuf { tag, .. } => tags.push(*tag),
                    SStmt::For { body, .. } => collect(body, tags),
                    SStmt::If { then, els, .. } => {
                        collect(then, tags);
                        collect(els, tags);
                    }
                    _ => {}
                }
            }
        }
        collect(compiled.spmd.body(0), &mut tags);
        tags.sort_unstable();
        tags.dedup();
        tags
    };
    assert!(tags.len() >= 2, "need two send tags to swap, got {tags:?}");
    let (a, b) = (tags[0], tags[1]);
    swap_send_tags(compiled.spmd.body_mut(0), a, b);
    let report = analyze(&compiled.spmd, &env, &arrays);
    assert!(report.exact);
    assert!(!report.verified());
    // Receivers of the original streams starve (error) while the
    // misrouted messages land on channels nobody ever reads — the
    // dead-send lint (warning).
    let starved = report
        .diagnostics
        .iter()
        .find(|d| d.kind == DiagKind::UnsatisfiedRecv)
        .expect("some receive starves");
    assert_eq!(starved.severity, Severity::Error);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.kind == DiagKind::DeadSend && d.severity == Severity::Warning));
    let tag = starved.tag.expect("starved receive names its tag");
    assert!(compiled.resolve_tag_span(tag).is_some());
}

#[test]
fn duplicated_write_breaks_single_assignment_with_a_source_span() {
    let (mut compiled, env, arrays) = jacobi_o1();
    let array = duplicate_first_awrite(compiled.spmd.body_mut(0)).expect("P0 writes");
    let report = analyze(&compiled.spmd, &env, &arrays);
    assert!(report.exact);
    assert!(!report.verified());
    let dw = report
        .diagnostics
        .iter()
        .find(|d| d.kind == DiagKind::DoubleWrite)
        .expect("double write reported");
    assert_eq!(dw.severity, Severity::Error);
    assert_eq!(dw.array.as_deref(), Some(array.as_str()));
    assert!(dw.message.contains("written 2 times"), "{}", dw.message);
    // Tag-less finding: anchored via the first source write of the array.
    assert!(compiled.resolve_array_span(&array).is_some());
}

#[test]
fn off_by_one_loop_bound_starves_the_last_receive() {
    let (mut compiled, env, arrays) = jacobi_o1();
    // P1's sweep loop both sends and receives; ending it one iteration
    // early drops its final send while the neighbour still waits.
    assert!(shrink_first_send_loop(compiled.spmd.body_mut(1)));
    let report = analyze(&compiled.spmd, &env, &arrays);
    assert!(report.exact);
    assert!(!report.verified());
    let starved = report
        .diagnostics
        .iter()
        .find(|d| d.kind == DiagKind::UnsatisfiedRecv && d.severity == Severity::Error)
        .expect("the dropped iteration's receiver starves");
    assert!(compiled
        .resolve_tag_span(starved.tag.expect("names its tag"))
        .is_some());
}

/// End-to-end: a source program with a genuine double write compiles,
/// but the driver's default-on verification at O1 turns what would be a
/// runtime I-structure fault into a typed compile-time error.
#[test]
fn driver_rejects_a_double_writing_program_at_compile_time() {
    let src = r#"
procedure main(Old, n) {
    let A = matrix(n, n);
    for i = 1 to n do {
        A[i, 1] = Old[i, 1];
    }
    for i = 1 to n do {
        A[i, 1] = Old[i, 1] + 1;
    }
    return A;
}
"#;
    let program = pdc_lang::parse(src).expect("parses");
    let d = pdc_mapping::Decomposition::new(2)
        .array("A", pdc_mapping::Dist::ColumnCyclic)
        .array("Old", pdc_mapping::Dist::ColumnCyclic);
    let mut job = Job::new(&program, "main", d)
        .with_const("n", 4)
        .with_opt_level(OptLevel::O1);
    job.extent_overrides.insert("Old".into(), (4, 4));
    let err = driver::compile(&job, Strategy::CompileTime).expect_err("analyzer rejects");
    match err {
        CoreError::StaticAnalysis { diagnostics } => {
            assert!(diagnostics
                .iter()
                .any(|d| d.kind == DiagKind::DoubleWrite && d.array.as_deref() == Some("A")));
        }
        other => panic!("expected StaticAnalysis, got {other}"),
    }
    // Opting out compiles the same program (it would fault at runtime).
    let job = {
        let d = pdc_mapping::Decomposition::new(2)
            .array("A", pdc_mapping::Dist::ColumnCyclic)
            .array("Old", pdc_mapping::Dist::ColumnCyclic);
        let mut job = Job::new(&program, "main", d)
            .with_const("n", 4)
            .with_opt_level(OptLevel::O1)
            .with_verify_static(false);
        job.extent_overrides.insert("Old".into(), (4, 4));
        job
    };
    assert!(driver::compile(&job, Strategy::CompileTime).is_ok());
}
