//! Crash-recovery suite: processor crashes with checkpoint/restart must
//! be semantically invisible.
//!
//! Each case compiles one of the paper's kernels under a seeded random
//! decomposition, runs it fault-free, then re-runs it with an injected
//! crash plan ([`pdc_testkit::fault::crash_plan`]) and periodic
//! checkpoints on *both* backends. The recovery contract:
//!
//! 1. outputs of the crashed-and-recovered run are bit-identical to the
//!    fault-free run (and to the sequential interpreter);
//! 2. every injected crash is actually survived
//!    (`RecoveryReport::crashes_survived == FaultReport::injected.crashes`,
//!    asserted ≥ 1 over the sweep so the suite can never pass vacuously);
//! 3. simulator recovery runs are fully deterministic: same seed → the
//!    same `RunReport`, makespan, `FaultReport`, and `RecoveryReport`.
//!
//! Seeds come from `PDC_FAULT_SEEDS` (comma-separated), with a baked
//! default, exactly like `fault_injection.rs` — CI sweeps a matrix
//! through the same hook.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{Backend, CheckpointCfg, CostModel, RelConfig};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::Scalar;
use pdc_testkit::Rng;
use std::time::Duration;

/// Fault seeds to sweep: `PDC_FAULT_SEEDS` if set, else a baked pair.
fn fault_seeds() -> Vec<u64> {
    match std::env::var("PDC_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad seed `{t}` in PDC_FAULT_SEEDS"))
            })
            .collect(),
        Err(_) => vec![0xC0FFEE, 7],
    }
}

/// Fast retransmission policy so threaded replay does not wait out the
/// production 20 ms timer.
fn test_rel() -> RelConfig {
    RelConfig {
        rto_wall: Duration::from_millis(2),
        ..RelConfig::default()
    }
}

/// A random distribution for the kernel's arrays — every processor owns
/// work, so every processor both communicates and can be crashed.
fn random_dist(rng: &mut Rng) -> Dist {
    match rng.range_usize(0, 4) {
        0 => Dist::ColumnCyclic,
        1 => Dist::RowCyclic,
        2 => Dist::ColumnBlock,
        _ => Dist::ColumnBlockCyclic {
            block: rng.range_usize(1, 3),
        },
    }
}

struct Case {
    nprocs: usize,
    dist: Dist,
    plan: pdc_machine::FaultPlan,
    ckpt: CheckpointCfg,
}

fn random_case(rng: &mut Rng) -> Case {
    let nprocs = rng.range_usize(2, 5);
    Case {
        nprocs,
        dist: random_dist(rng),
        plan: pdc_testkit::fault::crash_plan(rng, nprocs),
        ckpt: CheckpointCfg::every(rng.range_i64(2, 24) as u64)
            .with_reboot(5_000, Duration::from_millis(1)),
    }
}

fn jacobi_job<'a>(program: &'a pdc_lang::Program, decomp: Decomposition, n: usize) -> Job<'a> {
    let mut job = Job::new(program, "jacobi", decomp).with_const("n", n as i64);
    job.extent_overrides.insert("Old".to_owned(), (n, n));
    job
}

/// Run one case through the whole contract; returns crashes survived.
fn check_case(case: &Case, seed: u64, idx: usize) -> u64 {
    let n = 8usize;
    let label = format!(
        "seed {seed} case {idx} ({:?} on {})",
        case.dist, case.nprocs
    );
    let program = programs::jacobi();
    let decomp = Decomposition::new(case.nprocs)
        .array("New", case.dist.clone())
        .array("Old", case.dist.clone());
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "jacobi", &inputs).expect("sequential");

    // Fault-free reference run.
    let clean_job = jacobi_job(&program, decomp.clone(), n);
    let clean = driver::compile(&clean_job, Strategy::Runtime).unwrap();
    let clean_exec =
        driver::execute_on(&clean, &inputs, CostModel::ipsc2(), Backend::Simulated).unwrap();
    let clean_out = clean_exec.gather("New").expect("clean gather");
    assert_eq!(
        driver::first_mismatch(&clean_out, &seq),
        None,
        "{label}: fault-free baseline is wrong"
    );

    // Crash + checkpoint/restart, exercising the Job-level surface:
    // crash plan, checkpoint config, retransmit override, recv timeout.
    let job = jacobi_job(&program, decomp, n)
        .with_crash_plan(case.plan.clone())
        .with_checkpoint_cfg(case.ckpt)
        .with_retransmit_cfg(test_rel())
        .with_recv_timeout(Duration::from_secs(30));
    let compiled = driver::compile(&job, Strategy::Runtime).unwrap();

    let mut survived = 0;
    for backend in [Backend::Simulated, Backend::threaded()] {
        let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), backend)
            .unwrap_or_else(|e| panic!("{label} on {backend:?}: {e}"));
        let out = exec.gather("New").expect("gather");
        assert_eq!(
            driver::first_mismatch(&out, &seq),
            None,
            "{label} on {backend:?}: recovered output differs from fault-free"
        );
        assert_eq!(
            exec.outcome.report.pair_messages, clean_exec.outcome.report.pair_messages,
            "{label} on {backend:?}: recovery leaked into program-level traffic"
        );
        assert_eq!(exec.outcome.report.undelivered, 0, "{label} on {backend:?}");
        let rec = exec
            .outcome
            .report
            .recovery
            .unwrap_or_else(|| panic!("{label} on {backend:?}: no recovery report"));
        let injected = exec
            .outcome
            .report
            .fault
            .as_ref()
            .map_or(0, |f| f.injected.crashes);
        assert_eq!(
            rec.crashes_survived, injected,
            "{label} on {backend:?}: a crash was injected but not recovered"
        );
        assert!(rec.checkpoints_taken > 0, "{label} on {backend:?}");
        if matches!(backend, Backend::Simulated) {
            survived = rec.crashes_survived;
        }
    }
    survived
}

#[test]
fn crashed_runs_match_fault_free_runs_on_both_backends() {
    let mut total_survived = 0;
    for seed in fault_seeds() {
        let mut rng = Rng::from_seed(seed);
        for idx in 0..3 {
            let case = random_case(&mut rng);
            total_survived += check_case(&case, seed, idx);
        }
    }
    // Non-vacuity: the sweep must have actually crashed and recovered.
    assert!(
        total_survived >= 1,
        "no crash was ever injected — the suite is testing nothing"
    );
}

/// Simulator recovery is bit-for-bit deterministic: same seed, same
/// crash, same recovery, same makespan.
#[test]
fn simulator_recovery_is_deterministic() {
    let mut rng = Rng::from_seed(fault_seeds()[0]);
    let case = random_case(&mut rng);
    let n = 8usize;
    let program = programs::jacobi();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let run = || {
        let decomp = Decomposition::new(case.nprocs)
            .array("New", case.dist.clone())
            .array("Old", case.dist.clone());
        let job = jacobi_job(&program, decomp, n)
            .with_crash_plan(case.plan.clone())
            .with_checkpoint_cfg(case.ckpt)
            .with_retransmit_cfg(test_rel());
        let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
        driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
            .expect("recovers")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.outcome.report.stats.makespan(),
        b.outcome.report.stats.makespan()
    );
    assert_eq!(a.outcome.report.stats, b.outcome.report.stats);
    assert_eq!(a.outcome.report.fault, b.outcome.report.fault);
    assert_eq!(a.outcome.report.recovery, b.outcome.report.recovery);
    assert_eq!(
        a.outcome.report.pair_messages,
        b.outcome.report.pair_messages
    );
}

/// Coordinated (barrier-aligned) snapshots on the simulator: all
/// processors roll back together and the run still matches the
/// interpreter.
#[test]
fn coordinated_mode_recovers_on_the_simulator() {
    let n = 8usize;
    let program = programs::jacobi();
    let decomp = Decomposition::new(3)
        .array("New", Dist::ColumnCyclic)
        .array("Old", Dist::ColumnCyclic);
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "jacobi", &inputs).expect("sequential");
    let job = jacobi_job(&program, decomp, n)
        .with_crash_plan(pdc_machine::FaultPlan::seeded(5).with_crash(pdc_machine::ProcId(1), 6))
        .with_checkpoint_cfg(CheckpointCfg::every(8).coordinated());
    let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
    let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .expect("coordinated recovery");
    let out = exec.gather("New").expect("gather");
    assert_eq!(driver::first_mismatch(&out, &seq), None);
    let rec = exec.outcome.report.recovery.expect("recovery report");
    assert_eq!(rec.crashes_survived, 1);
}

/// Crashes layered on a lossy fabric: restart while frames are being
/// dropped and duplicated, the hardest composite fault case.
#[test]
fn crashes_on_a_lossy_fabric_still_recover() {
    let mut rng = Rng::from_seed(fault_seeds()[0] ^ 0x1055);
    let nprocs = 3;
    let case = Case {
        nprocs,
        dist: Dist::ColumnCyclic,
        plan: pdc_testkit::fault::crash_plan_with_losses(&mut rng, nprocs),
        ckpt: CheckpointCfg::every(8).with_reboot(5_000, Duration::from_millis(1)),
    };
    check_case(&case, 0x10, 99);
}

/// Without checkpoints a crash is fatal and names the victim.
#[test]
fn uncheckpointed_crash_fails_with_crashed_error() {
    let n = 8usize;
    let program = programs::jacobi();
    let decomp = Decomposition::new(2)
        .array("New", Dist::ColumnCyclic)
        .array("Old", Dist::ColumnCyclic);
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let job = jacobi_job(&program, decomp, n)
        .with_crash_plan(pdc_machine::FaultPlan::seeded(0).with_crash(pdc_machine::ProcId(0), 4))
        .with_retransmit_cfg(RelConfig {
            rto_cycles: 1_000,
            max_retries: 4,
            ..RelConfig::default()
        });
    let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
    let err = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .expect_err("a crash without checkpoints is fatal");
    let msg = err.to_string();
    assert!(
        msg.contains("crash") || msg.contains("P0") || msg.contains("retries"),
        "error should name the crash or the starved stream: {msg}"
    );
}
