//! Backend metrics parity: the *logical* projection of the runtime
//! metrics registry — frames, words, scratch-arena reuse, the frame-size
//! histogram, and the per-channel traffic tables — must be identical
//! across the deterministic simulator and the threaded backend, because
//! every logical counter is recorded by backend-independent code on a
//! deterministic event sequence. Physical metrics (parks, stalls, ring
//! occupancy) are excluded by `MetricsSnapshot::logical()` by
//! construction.
//!
//! Also pins down the always-on flight recorder: a forced deadlock must
//! still produce a report whose per-processor event rings are
//! non-vacuous, since that is the entire point of a flight recorder.

use pdc_bench::{build_wavefront, Variant};
use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_machine::{
    Backend, CostModel, Ctr, Fabric, FlightKind, MachineError, ProcId, Process, RunReport, Step,
    Tag, ThreadedRunner,
};
use pdc_mapping::{Decomposition, ScalarMap};
use pdc_spmd::ir::SpmdProgram;
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use pdc_testkit::{cases, Rng};
use std::time::Duration;

/// Run a wavefront program with full metrics on the given backend.
fn run_wavefront_metrics(prog: &SpmdProgram, n: usize, backend: Backend) -> RunReport {
    let mut m = SpmdMachine::new(prog, CostModel::ipsc2())
        .expect("program lowers")
        .with_backend(backend)
        .with_metrics();
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    m.run()
        .unwrap_or_else(|e| panic!("{backend:?}: {e}"))
        .report
}

/// The metrics registry's per-channel table must agree triple-by-triple
/// with the scheduler's own `pair_messages` ledger — two fully
/// independent recording paths.
fn assert_triples_match(report: &RunReport, label: &str) {
    let by_triple = report.metrics.out_by_triple();
    assert_eq!(
        by_triple.len(),
        report.pair_messages.len(),
        "{label}: metric channels vs scheduler channels"
    );
    for ((src, dst, tag), (frames, _words)) in &by_triple {
        assert_eq!(
            report.pair_messages.get(&(
                ProcId(*src as usize),
                ProcId(*dst as usize),
                Tag(*tag as u32)
            )),
            Some(frames),
            "{label}: frame count for channel {src}->{dst} tag {tag}"
        );
    }
}

/// The five Fig. 6/7 compiler variants, simulator vs threads: identical
/// logical counters, histograms, and channel tables, and both agreeing
/// with the scheduler's message ledger and the network totals.
#[test]
fn wavefront_variants_logical_parity() {
    let (n, s) = (16, 4);
    for variant in [
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ] {
        let prog = build_wavefront(variant, n, s);
        let sim = run_wavefront_metrics(&prog, n, Backend::Simulated);
        let thr = run_wavefront_metrics(&prog, n, Backend::threaded());
        assert!(
            sim.metrics.full,
            "{variant}: simulator records full metrics"
        );
        assert!(thr.metrics.full, "{variant}: threads record full metrics");
        assert_eq!(
            sim.metrics.logical(),
            thr.metrics.logical(),
            "{variant}: logical metrics diverge across backends"
        );
        assert!(
            sim.metrics.total(Ctr::FramesSent) > 0,
            "{variant}: a 4-processor wavefront must communicate"
        );
        // Each send has a matching receive, and the registry agrees with
        // the machine's own traffic statistics.
        assert_eq!(
            sim.metrics.total(Ctr::FramesSent),
            sim.metrics.total(Ctr::FramesRecvd),
            "{variant}: frames sent vs received"
        );
        assert_eq!(
            sim.metrics.total(Ctr::FramesSent),
            sim.stats.network.messages,
            "{variant}: registry vs network message count"
        );
        assert_eq!(
            sim.metrics.total(Ctr::WordsSent),
            sim.stats.network.words,
            "{variant}: registry vs network word count"
        );
        assert_triples_match(&sim, &format!("{variant} (sim)"));
        assert_triples_match(&thr, &format!("{variant} (threaded)"));
        // The VM's ops counter is logical too: both backends execute the
        // same instruction sequence.
        assert!(sim.metrics.total(Ctr::Ops) > 0, "{variant}: ops recorded");
    }
}

/// A recipe for one `let` statement of a random straight-line program
/// (the `random_programs.rs` generator, trimmed to what metrics parity
/// needs: random operand references and random owner pinning).
#[derive(Debug, Clone)]
struct StmtSpec {
    a: usize,
    b: usize,
    op: u8,
    map: Option<usize>,
}

fn random_specs(rng: &mut Rng) -> Vec<StmtSpec> {
    let n = rng.range_usize(1, 12);
    (0..n)
        .map(|_| StmtSpec {
            a: rng.range_usize(0, 8),
            b: rng.range_usize(0, 8),
            op: rng.range_usize(0, 4) as u8,
            map: if rng.bool() {
                Some(rng.range_usize(0, 16))
            } else {
                None
            },
        })
        .collect()
}

fn build_source(specs: &[StmtSpec]) -> String {
    let mut src = String::from("procedure main() {\n    let x0 = 3;\n    let x1 = 10;\n");
    let mut count = 2;
    for (i, s) in specs.iter().enumerate() {
        let idx = i + 2;
        let a = s.a % count;
        let b = s.b % count;
        let expr = match s.op {
            0 => format!("x{a} + x{b}"),
            1 => format!("x{a} - x{b}"),
            2 => format!("min(x{a}, x{b})"),
            _ => format!("max(x{a}, x{b})"),
        };
        src.push_str(&format!("    let x{idx} = {expr};\n"));
        count += 1;
    }
    src.push_str(&format!("    return x{};\n}}\n", count - 1));
    src
}

fn decomposition_for(specs: &[StmtSpec], nprocs: usize) -> Decomposition {
    let mut d = Decomposition::new(nprocs);
    for (i, s) in specs.iter().enumerate() {
        if let Some(p) = s.map {
            d = d.scalar(format!("x{}", i + 2), ScalarMap::On(p % nprocs));
        }
    }
    d
}

/// Random straight-line programs with random owner pinnings, run through
/// the full driver (`Job::with_metrics` → `execute_on`) on both
/// backends: the logical snapshots and the scheduler ledger must agree.
#[test]
fn random_programs_metrics_parity() {
    cases(24, "random_programs_metrics_parity", |rng| {
        let nprocs = rng.range_usize(1, 6);
        let specs = random_specs(rng);
        let src = build_source(&specs);
        let program = pdc_lang::parse(&src).expect("generated source parses");
        let d = decomposition_for(&specs, nprocs);
        let strategy = if rng.bool() {
            Strategy::Runtime
        } else {
            Strategy::CompileTime
        };
        let job = Job::new(&program, "main", d).with_metrics();
        let compiled = driver::compile(&job, strategy)
            .unwrap_or_else(|e| panic!("{strategy:?} failed on:\n{src}\n{e}"));
        let sim = driver::execute_on(
            &compiled,
            &Inputs::new(),
            CostModel::ipsc2(),
            Backend::Simulated,
        )
        .unwrap_or_else(|e| panic!("sim run failed on:\n{src}\n{e}"));
        let thr = driver::execute_on(
            &compiled,
            &Inputs::new(),
            CostModel::ipsc2(),
            Backend::threaded(),
        )
        .unwrap_or_else(|e| panic!("threaded run failed on:\n{src}\n{e}"));
        assert!(sim.metrics().full && thr.metrics().full);
        assert_eq!(
            sim.metrics().logical(),
            thr.metrics().logical(),
            "logical metrics diverge on:\n{src}"
        );
        assert_triples_match(&sim.outcome.report, "sim");
        assert_triples_match(&thr.outcome.report, "threaded");
    });
}

/// Two processes that deadlock after one successful exchange: P0 sends,
/// then both block on receives no one will ever satisfy.
#[derive(Default)]
struct Cyclic {
    sent: bool,
    got: bool,
}

impl Process for Cyclic {
    fn step(&mut self, f: &mut dyn Fabric, me: ProcId) -> Result<Step, MachineError> {
        if me.0 == 0 {
            if !self.sent {
                self.sent = true;
                f.send(me, ProcId(1), Tag(1), vec![7, 8]);
                return Ok(Step::Ran);
            }
            match f.try_recv(me, ProcId(1), Tag(9)) {
                Some(_) => Ok(Step::Done),
                None => Ok(Step::BlockedOnRecv {
                    src: ProcId(1),
                    tag: Tag(9),
                }),
            }
        } else if !self.got {
            match f.try_recv(me, ProcId(0), Tag(1)) {
                Some(_) => {
                    self.got = true;
                    Ok(Step::Ran)
                }
                None => Ok(Step::BlockedOnRecv {
                    src: ProcId(0),
                    tag: Tag(1),
                }),
            }
        } else {
            match f.try_recv(me, ProcId(0), Tag(9)) {
                Some(_) => Ok(Step::Done),
                None => Ok(Step::BlockedOnRecv {
                    src: ProcId(0),
                    tag: Tag(9),
                }),
            }
        }
    }
}

/// The flight recorder is always on — even with full metrics off, a
/// forced deadlock's report carries the recent event history of every
/// processor, which is exactly the post-mortem a deadlock needs.
#[test]
fn deadlock_report_has_nonvacuous_flight_recorder() {
    let mut procs = vec![Cyclic::default(), Cyclic::default()];
    let (report, err) = ThreadedRunner::new(CostModel::ipsc2())
        .with_recv_timeout(Duration::from_millis(50))
        .run_with_report(&mut procs);
    let err = err.expect("the cyclic wait must fail");
    assert!(
        matches!(
            err,
            MachineError::RecvTimeout { .. } | MachineError::Deadlock { .. }
        ),
        "expected a deadlock-shaped error, got {err}"
    );
    // Full metrics were never requested: flight-only mode.
    assert!(!report.metrics.full);
    assert_eq!(report.metrics.total(Ctr::FramesSent), 0);
    // ...but the recorder captured the exchange that *did* happen.
    for (p, pm) in report.metrics.procs.iter().enumerate() {
        assert!(pm.flight_recorded > 0, "P{p}: empty flight recorder");
    }
    assert!(
        report.metrics.procs[0]
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Send && e.peer == Some(1) && e.value == 2),
        "P0's send of 2 words is on record"
    );
    assert!(
        report.metrics.procs[1]
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Recv && e.peer == Some(0)),
        "P1's receive is on record"
    );
    // The same deadlock on the simulator, via the wavefront-independent
    // scheduler path: flight events survive there too.
    let mut machine = pdc_machine::Machine::new(2, CostModel::ipsc2());
    machine.enable_metrics(std::sync::Arc::new(
        pdc_machine::MetricsRegistry::flight_only(2),
    ));
    let (mut p0, mut p1) = (Cyclic::default(), Cyclic::default());
    let mut procs: Vec<&mut dyn Process> = vec![&mut p0, &mut p1];
    let err = pdc_machine::Scheduler::new()
        .run(&mut machine, &mut procs)
        .expect_err("the simulator deadlocks");
    assert!(matches!(err, MachineError::Deadlock { .. }), "got {err}");
    let snap = machine.metrics_snapshot();
    assert!(snap.procs[0]
        .flight
        .iter()
        .any(|e| e.kind == FlightKind::Send));
    assert!(snap.procs[1]
        .flight
        .iter()
        .any(|e| e.kind == FlightKind::Recv));
}
