//! Property test: the wavefront program compiled at *every* optimization
//! level, over random grid sizes, machine sizes, and block sizes, always
//! gathers to exactly the sequential interpreter's matrix.
//! (Deterministic `pdc-testkit` cases; a failing case prints its seed
//! for replay.)

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::handwritten;
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use pdc_testkit::cases;

fn check(prog: &pdc_spmd::ir::SpmdProgram, n: usize, label: &str) {
    let mut m =
        SpmdMachine::new(prog, CostModel::ipsc2()).unwrap_or_else(|e| panic!("{label}: {e}"));
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m.run().unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(out.report.undelivered, 0, "{label}: orphaned messages");
    let gathered = m.gather("New").unwrap_or_else(|e| panic!("{label}: {e}"));
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&programs::gauss_seidel(), "gs_iteration", &inputs)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(
        driver::first_mismatch(&gathered, &seq),
        None,
        "{label}: wrong matrix"
    );
}

#[test]
fn all_levels_match_sequential() {
    cases(24, "all_levels_match_sequential", |rng| {
        let n = rng.range_usize(5, 16);
        let s = rng.range_usize(1, 6);
        let blk = rng.range_usize(1, 6);
        let program = programs::gauss_seidel();
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let rt = driver::compile(&job, Strategy::Runtime).unwrap();
        check(&rt.spmd, n, "runtime");
        let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
        check(&ct.spmd, n, "compile-time");
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3 { blksize: blk }] {
            let (opt, _) = optimize(&ct.spmd, level);
            check(&opt, n, &format!("{level}"));
        }
        check(&handwritten::gauss_seidel(s, blk), n, "handwritten");
    });
}

/// Optimizations never increase message count, and blocking divides
/// the pipelined stream count by roughly the block size.
#[test]
fn optimization_message_monotonicity() {
    cases(24, "optimization_message_monotonicity", |rng| {
        let n = rng.range_usize(8, 16);
        let s = rng.range_usize(2, 5);
        let blk = rng.range_usize(1, 6);
        let program = programs::gauss_seidel();
        let job = Job::new(
            &program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
        let count = |prog: &pdc_spmd::ir::SpmdProgram| {
            let mut m = SpmdMachine::new(prog, CostModel::zero()).unwrap();
            m.preset_var("n", Scalar::Int(n as i64));
            m.preload_array(
                "Old",
                pdc_mapping::Dist::ColumnCyclic,
                &driver::standard_input(n, n),
            );
            m.run().unwrap().report.stats.network.messages
        };
        let base = count(&ct.spmd);
        let (o1, _) = optimize(&ct.spmd, OptLevel::O1);
        let m1 = count(&o1);
        let (o2, _) = optimize(&ct.spmd, OptLevel::O2);
        let m2 = count(&o2);
        let (o3, _) = optimize(&ct.spmd, OptLevel::O3 { blksize: blk });
        let m3 = count(&o3);
        assert!(m1 <= base);
        assert!(m2 <= m1);
        assert!(m3 <= m2);
    });
}
