//! Property test: the wavefront program compiled at *every* optimization
//! level, over random grid sizes, machine sizes, and block sizes, always
//! gathers to exactly the sequential interpreter's matrix.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::handwritten;
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_opt::{optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use proptest::prelude::*;

fn check(prog: &pdc_spmd::ir::SpmdProgram, n: usize, label: &str) -> Result<(), TestCaseError> {
    let mut m = SpmdMachine::new(prog, CostModel::ipsc2())
        .map_err(|e| TestCaseError::fail(format!("{label}: {e}")))?;
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m
        .run()
        .map_err(|e| TestCaseError::fail(format!("{label}: {e}")))?;
    prop_assert_eq!(out.report.undelivered, 0, "{}: orphaned messages", label);
    let gathered = m
        .gather("New")
        .map_err(|e| TestCaseError::fail(format!("{label}: {e}")))?;
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&programs::gauss_seidel(), "gs_iteration", &inputs)
        .map_err(|e| TestCaseError::fail(format!("{label}: {e}")))?;
    prop_assert_eq!(
        driver::first_mismatch(&gathered, &seq),
        None,
        "{}: wrong matrix",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_levels_match_sequential(
        n in 5usize..16,
        s in 1usize..6,
        blk in 1usize..6,
    ) {
        let program = programs::gauss_seidel();
        let job = Job::new(&program, "gs_iteration", programs::wavefront_decomposition(s))
            .with_const("n", n as i64);
        let rt = driver::compile(&job, Strategy::Runtime).unwrap();
        check(&rt.spmd, n, "runtime")?;
        let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
        check(&ct.spmd, n, "compile-time")?;
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3 { blksize: blk }] {
            let (opt, _) = optimize(&ct.spmd, level);
            check(&opt, n, &format!("{level}"))?;
        }
        check(&handwritten::gauss_seidel(s, blk), n, "handwritten")?;
    }

    /// Optimizations never increase message count, and blocking divides
    /// the pipelined stream count by roughly the block size.
    #[test]
    fn optimization_message_monotonicity(
        n in 8usize..16,
        s in 2usize..5,
        blk in 1usize..6,
    ) {
        let program = programs::gauss_seidel();
        let job = Job::new(&program, "gs_iteration", programs::wavefront_decomposition(s))
            .with_const("n", n as i64);
        let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
        let count = |prog: &pdc_spmd::ir::SpmdProgram| {
            let mut m = SpmdMachine::new(prog, CostModel::zero()).unwrap();
            m.preset_var("n", Scalar::Int(n as i64));
            m.preload_array(
                "Old",
                pdc_mapping::Dist::ColumnCyclic,
                &driver::standard_input(n, n),
            );
            m.run().unwrap().report.stats.network.messages
        };
        let base = count(&ct.spmd);
        let (o1, _) = optimize(&ct.spmd, OptLevel::O1);
        let m1 = count(&o1);
        let (o2, _) = optimize(&ct.spmd, OptLevel::O2);
        let m2 = count(&o2);
        let (o3, _) = optimize(&ct.spmd, OptLevel::O3 { blksize: blk });
        let m3 = count(&o3);
        prop_assert!(m1 <= base);
        prop_assert!(m2 <= m1);
        prop_assert!(m3 <= m2);
    }
}
