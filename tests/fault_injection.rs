//! Fault-injection suite: the paper's workloads under deterministic
//! network damage.
//!
//! Each workload is compiled once, then run on both backends under a
//! seeded [`FaultPlan`] that drops, duplicates, delays, and reorders
//! frames. The reliable-delivery layer must recover the exact program
//! semantics: gathered outputs equal the sequential interpreter's, the
//! *logical* per-(src, dst, tag) message counts match across backends,
//! and nothing is left undelivered — only the [`FaultReport`] and timing
//! are allowed to show the damage.
//!
//! Seeds come from the `PDC_FAULT_SEEDS` environment variable
//! (comma-separated integers, e.g. `PDC_FAULT_SEEDS=1,2,3`), with a baked
//! default so plain `cargo test` exercises the suite too. CI sweeps a
//! small seed matrix through this hook.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_istructure::IMatrix;
use pdc_machine::{Backend, CostModel, FaultPlan, MachineError, ProcId, RelConfig, Tag};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;
use pdc_testkit::Rng;
use std::time::Duration;

/// Fault seeds to sweep: `PDC_FAULT_SEEDS` if set, else a baked pair.
fn fault_seeds() -> Vec<u64> {
    match std::env::var("PDC_FAULT_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad seed `{t}` in PDC_FAULT_SEEDS"))
            })
            .collect(),
        Err(_) => vec![0xC0FFEE, 7],
    }
}

/// A retransmission policy tuned for tests: the threaded backend retries
/// after 2 ms instead of the production 20 ms so lossy runs stay fast.
fn test_rel() -> RelConfig {
    RelConfig {
        rto_wall: Duration::from_millis(2),
        ..RelConfig::default()
    }
}

struct Workload {
    name: &'static str,
    program: pdc_lang::Program,
    entry: &'static str,
    decomp: Decomposition,
    output: &'static str,
    n: usize,
    input: IMatrix<Scalar>,
}

/// Hot edges, cold interior (the heat-equation starting grid).
fn hot_edge_grid(n: usize) -> IMatrix<Scalar> {
    let mut grid = IMatrix::new(n, n);
    for i in 1..=n as i64 {
        for j in 1..=n as i64 {
            let edge = i == 1 || j == 1 || i == n as i64 || j == n as i64;
            grid.write(i, j, Scalar::Int(if edge { 1000 } else { 0 }))
                .expect("fresh matrix");
        }
    }
    grid
}

/// The paper's workloads across machine sizes from 1 to 8 processors.
fn workloads() -> Vec<Workload> {
    let n = 8usize;
    let mut out = Vec::new();
    for procs in [1usize, 3, 8] {
        out.push(Workload {
            name: match procs {
                1 => "jacobi/column-cyclic/p1",
                3 => "jacobi/column-cyclic/p3",
                _ => "jacobi/column-cyclic/p8",
            },
            program: programs::jacobi(),
            entry: "jacobi",
            decomp: Decomposition::new(procs)
                .array("New", Dist::ColumnCyclic)
                .array("Old", Dist::ColumnCyclic),
            output: "New",
            n,
            input: driver::standard_input(n, n),
        });
    }
    for s in [2usize, 4] {
        out.push(Workload {
            name: if s == 2 {
                "wavefront/gauss-seidel/p2"
            } else {
                "wavefront/gauss-seidel/p4"
            },
            program: programs::gauss_seidel(),
            entry: "gs_iteration",
            decomp: programs::wavefront_decomposition(s),
            output: "New",
            n,
            input: driver::standard_input(n, n),
        });
    }
    out.push(Workload {
        name: "block-jacobi/2x2-grid",
        program: programs::jacobi(),
        entry: "jacobi",
        decomp: Decomposition::new(4)
            .array("New", Dist::Block2d { prows: 2, pcols: 2 })
            .array("Old", Dist::Block2d { prows: 2, pcols: 2 }),
        output: "New",
        n,
        input: driver::standard_input(n, n),
    });
    out.push(Workload {
        name: "heat/hot-edge-sweep/p4",
        program: programs::gauss_seidel(),
        entry: "gs_iteration",
        decomp: programs::wavefront_decomposition(4),
        output: "New",
        n,
        input: hot_edge_grid(n),
    });
    out
}

/// Compile `w`, run it on both backends under `plan`, and assert the
/// recovery contract.
fn check_under_plan(w: &Workload, strategy: Strategy, plan: &FaultPlan, label_extra: &str) {
    let label = format!("{} under {strategy:?} {label_extra}", w.name);
    let mut job = Job::new(&w.program, w.entry, w.decomp.clone())
        .with_const("n", w.n as i64)
        .with_fault_plan(plan.clone(), test_rel());
    job.extent_overrides.insert("Old".to_owned(), (w.n, w.n));
    let compiled = driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: {e}"));
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(w.n as i64))
        .array("Old", w.input.clone());

    let sim = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .unwrap_or_else(|e| panic!("{label} (simulated): {e}"));
    let thr = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
        .unwrap_or_else(|e| panic!("{label} (threaded): {e}"));

    // Program-level delivery is complete on both backends.
    assert_eq!(sim.outcome.report.undelivered, 0, "{label}: sim");
    assert_eq!(thr.outcome.report.undelivered, 0, "{label}: threaded");
    assert!(sim.outcome.report.pending.is_empty(), "{label}: sim");
    assert!(thr.outcome.report.pending.is_empty(), "{label}: threaded");

    // Outputs: both backends == sequential interpreter, faults or not.
    let seq = driver::run_sequential(&w.program, w.entry, &inputs).expect("sequential");
    let g_sim = sim.gather(w.output).expect("sim gather");
    let g_thr = thr.gather(w.output).expect("threaded gather");
    assert_eq!(
        driver::first_mismatch(&g_sim, &seq),
        None,
        "{label}: simulator output corrupted by faults"
    );
    assert_eq!(
        driver::first_mismatch(&g_thr, &seq),
        None,
        "{label}: threaded output corrupted by faults"
    );

    // The *logical* communication pattern is fault-independent: the
    // program sent exactly the same messages it always does.
    assert_eq!(
        thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
        "{label}: logical per-(src, dst, tag) counts diverge"
    );

    // Multi-processor runs under the reliability layer carry a report.
    if w.decomp.nprocs() > 1 && !plan.is_none() {
        assert!(sim.outcome.report.fault.is_some(), "{label}: no sim report");
        assert!(
            thr.outcome.report.fault.is_some(),
            "{label}: no threaded report"
        );
    }
}

#[test]
fn workloads_recover_under_seeded_fault_plans() {
    for seed in fault_seeds() {
        let mut rng = Rng::from_seed(seed);
        for w in workloads() {
            let plan = pdc_testkit::fault::fault_plan(&mut rng);
            check_under_plan(&w, Strategy::Runtime, &plan, &format!("(seed {seed})"));
        }
    }
}

#[test]
fn compile_time_strategy_recovers_too() {
    let mut rng = Rng::from_seed(fault_seeds()[0]);
    for w in workloads() {
        let plan = pdc_testkit::fault::fault_plan(&mut rng);
        check_under_plan(&w, Strategy::CompileTime, &plan, "(compile-time)");
    }
}

/// A deliberately heavy plan on the chattiest workload: drops must force
/// actual retransmissions, duplicates must be discarded, and the run must
/// still produce interpreter-identical output.
#[test]
fn heavy_losses_force_retransmissions() {
    let plan = FaultPlan::seeded(42)
        .with_drops(300)
        .with_dups(150)
        .with_delays(100, 10_000)
        .with_reorders(50)
        .with_fault_budget(4);
    let w = &workloads()[2]; // jacobi on 8 processors: the most traffic
    check_under_plan(w, Strategy::Runtime, &plan, "(heavy)");

    // Re-run on the simulator alone to inspect the report.
    let mut job = Job::new(&w.program, w.entry, w.decomp.clone())
        .with_const("n", w.n as i64)
        .with_fault_plan(plan, test_rel());
    job.extent_overrides.insert("Old".to_owned(), (w.n, w.n));
    let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(w.n as i64))
        .array("Old", w.input.clone());
    let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
        .expect("recovers");
    let fr = exec.outcome.report.fault.expect("fault report");
    assert!(fr.injected.drops > 0, "the plan dropped frames: {fr:?}");
    assert!(fr.retransmits > 0, "drops forced retransmits: {fr:?}");
    assert!(fr.acks_sent > 0, "receivers acked: {fr:?}");
    assert!(fr.dup_frames_dropped > 0, "dup suppression engaged: {fr:?}");
}

/// Simulator runs under a fault plan are exactly reproducible: same
/// seed, same damage, same makespan, same report.
#[test]
fn faulty_simulator_runs_are_reproducible() {
    let plan = FaultPlan::seeded(9)
        .with_drops(250)
        .with_dups(100)
        .with_fault_budget(4);
    let w = &workloads()[1]; // jacobi on 3 processors
    let run = || {
        let mut job = Job::new(&w.program, w.entry, w.decomp.clone())
            .with_const("n", w.n as i64)
            .with_fault_plan(plan.clone(), test_rel());
        job.extent_overrides.insert("Old".to_owned(), (w.n, w.n));
        let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(w.n as i64))
            .array("Old", w.input.clone());
        driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
            .expect("recovers")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.outcome.report.stats.makespan(),
        b.outcome.report.stats.makespan()
    );
    assert_eq!(a.outcome.report.fault, b.outcome.report.fault);
    assert_eq!(
        a.outcome.report.pair_messages,
        b.outcome.report.pair_messages
    );
}

/// `FaultPlan::none()` is free: the run takes the vanilla fast path and
/// is bit-identical to a run that never mentioned faults.
#[test]
fn empty_plan_is_bit_identical_to_vanilla() {
    let w = &workloads()[1];
    let run = |faulty: bool| {
        let mut job = Job::new(&w.program, w.entry, w.decomp.clone()).with_const("n", w.n as i64);
        if faulty {
            job = job.with_fault_plan(FaultPlan::none(), RelConfig::default());
        }
        job.extent_overrides.insert("Old".to_owned(), (w.n, w.n));
        let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(w.n as i64))
            .array("Old", w.input.clone());
        driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated).unwrap()
    };
    let vanilla = run(false);
    let none_plan = run(true);
    assert_eq!(
        none_plan.outcome.report.stats, vanilla.outcome.report.stats,
        "stats (clocks, traffic, makespan) must be bit-identical"
    );
    assert_eq!(
        none_plan.outcome.report.pair_messages,
        vanilla.outcome.report.pair_messages
    );
    assert_eq!(none_plan.outcome.report.fault, None, "no reliability layer");
}

/// A black hole starves one stream forever; the sender must give up with
/// an error naming exactly the starved (proc, peer, tag) stream — on both
/// backends.
#[test]
fn black_hole_names_the_starved_stream() {
    // P0 sends to P1 on tag 1 and the fabric eats every copy.
    let p0 = vec![SStmt::Send {
        to: SExpr::int(1),
        tag: 1,
        values: vec![SExpr::int(5)],
    }];
    let p1 = vec![SStmt::Recv {
        from: SExpr::int(0),
        tag: 1,
        into: vec![RecvTarget::Var("x".into())],
    }];
    let prog = SpmdProgram::new(vec![p0, p1]);
    let plan = FaultPlan::seeded(0).with_black_hole(ProcId(0), ProcId(1), Tag(1));

    let sim_cfg = RelConfig {
        rto_cycles: 1_000,
        max_retries: 4,
        ..RelConfig::default()
    };
    let sim_err = SpmdMachine::new(&prog, CostModel::ipsc2())
        .expect("lowers")
        .with_faults_cfg(plan.clone(), sim_cfg)
        .run()
        .expect_err("the stream is starved");
    match sim_err {
        pdc_spmd::SpmdError::Machine(MachineError::RetriesExhausted {
            proc,
            peer,
            tag,
            retries,
            last_acked,
        }) => {
            assert_eq!((proc, peer, tag), (ProcId(0), ProcId(1), Tag(1)));
            assert_eq!(retries, 4);
            // Nothing ever got through: the suspect's cumulative ack
            // floor is still at the first sequence number.
            assert_eq!(last_acked, 0);
        }
        other => panic!("expected RetriesExhausted, got: {other}"),
    }

    let thr_cfg = RelConfig {
        rto_wall: Duration::from_millis(2),
        max_retries: 4,
        ..RelConfig::default()
    };
    let thr_err = SpmdMachine::new(&prog, CostModel::ipsc2())
        .expect("lowers")
        .with_backend(Backend::Threaded {
            recv_timeout: Duration::from_secs(30),
        })
        .with_faults_cfg(plan, thr_cfg)
        .run()
        .expect_err("the stream is starved");
    match thr_err {
        pdc_spmd::SpmdError::Machine(MachineError::RetriesExhausted {
            proc, peer, tag, ..
        }) => {
            assert_eq!((proc, peer, tag), (ProcId(0), ProcId(1), Tag(1)));
        }
        other => panic!("expected RetriesExhausted, got: {other}"),
    }
}

/// Stalling a processor must never change outputs — only timing.
#[test]
fn stalls_preserve_outputs_and_slow_the_victim() {
    let w = &workloads()[4]; // wavefront on 4 processors: a pipeline
    let run = |plan: FaultPlan| {
        let mut job = Job::new(&w.program, w.entry, w.decomp.clone())
            .with_const("n", w.n as i64)
            .with_fault_plan(plan, RelConfig::default());
        job.extent_overrides.insert("Old".to_owned(), (w.n, w.n));
        let compiled = driver::compile(&job, Strategy::Runtime).unwrap();
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(w.n as i64))
            .array("Old", w.input.clone());
        let exec = driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
            .expect("recovers");
        let seq = driver::run_sequential(&w.program, w.entry, &inputs).expect("sequential");
        let g = exec.gather(w.output).expect("gather");
        assert_eq!(driver::first_mismatch(&g, &seq), None, "stall broke output");
        exec.makespan()
    };
    // Force the reliable path in both runs so the comparison is
    // apples-to-apples (an actually-empty plan takes the vanilla path).
    let baseline = run(FaultPlan::seeded(1).with_fault_budget(0).with_drops(1));
    let stalled = run(FaultPlan::seeded(1)
        .with_fault_budget(0)
        .with_drops(1)
        .with_stall(ProcId(0), 5, 200_000));
    assert!(
        stalled > baseline,
        "a 200k-cycle stall on the pipeline head must show in the makespan \
         (stalled {stalled} vs baseline {baseline})"
    );
}
