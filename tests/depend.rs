//! Golden tests for the exact loop-dependence framework (`pdc-depend`)
//! and its integration into the compiler driver.
//!
//! The distance/direction vectors of the paper's kernels are pinned
//! exactly: Gauss-Seidel carries its two flow dependences at levels 1
//! and 2 (the wavefront), the interchanged variant carries the same
//! dependences with the vector components swapped, and Jacobi carries
//! nothing. Non-affine subscripts must degrade to `exact = false` with
//! a reason rather than silently claiming independence. The driver
//! surfaces all of this as `Phase::Depend` remarks — one summary per
//! nest plus the cross-processor hotspot lint — and the tuner rejects
//! optimizer-on candidates before compiling or costing them when the
//! source analysis is inexact.

use pdc_core::driver::{self, Compiled, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_depend::ast::{analyze_for_env, nests};
use pdc_depend::{DepKind, DependenceInfo};
use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, Dist};
use pdc_opt::OptLevel;
use pdc_report::{Phase, RemarkKind};
use std::collections::BTreeMap;

const N: usize = 16;
const S: usize = 4;

fn env_n(n: i64) -> BTreeMap<String, i64> {
    [("n".to_string(), n)].into()
}

/// Analyze every source nest of `prog` under `n` and return them keyed
/// by owning procedure, in program order.
fn analyzed(prog: &pdc_lang::Program, n: i64) -> Vec<(String, DependenceInfo)> {
    nests(prog)
        .into_iter()
        .map(|(proc, nest)| (proc.to_string(), analyze_for_env(nest, &env_n(n))))
        .collect()
}

/// The `(direction, distance, level)` triples of the loop-carried
/// dependences on `array`, sorted for a stable comparison.
fn carried_vectors(info: &DependenceInfo, array: &str) -> Vec<(String, String, usize)> {
    let mut v: Vec<_> = info
        .deps
        .iter()
        .filter(|d| d.array == array && d.is_loop_carried())
        .map(|d| {
            (
                d.direction_string(),
                d.distance_string(),
                d.level.expect("carried dependence has a level"),
            )
        })
        .collect();
    v.sort();
    v
}

#[test]
fn gauss_seidel_wavefront_vectors_are_exact() {
    let prog = programs::gauss_seidel();
    let infos = analyzed(&prog, N as i64);
    // Two boundary nests in init_boundary plus the interior nest.
    assert_eq!(infos.len(), 3);
    for (proc, info) in &infos {
        assert!(info.exact, "{proc}: {:?}", info.notes);
    }
    let (_, boundary_i) = &infos[0];
    let (_, boundary_j) = &infos[1];
    assert!(boundary_i.loop_carried().next().is_none());
    assert!(boundary_j.loop_carried().next().is_none());

    // The interior nest is `for j { for i { … } }`: the read of
    // New[i, j-1] is carried by the outer column loop with distance
    // (1,0), the read of New[i-1, j] by the inner row loop with
    // distance (0,1) — the paper's Figure 2 wavefront, exactly.
    let (proc, interior) = &infos[2];
    assert_eq!(proc, "gs_iteration");
    assert!(interior
        .deps
        .iter()
        .all(|d| d.array == "New" && d.kind == DepKind::Flow));
    assert_eq!(
        carried_vectors(interior, "New"),
        vec![
            ("(<,=)".to_string(), "(1,0)".to_string(), 1),
            ("(=,<)".to_string(), "(0,1)".to_string(), 2),
        ]
    );
    // Old is read-only: no dependence may mention it.
    assert!(interior.deps.iter().all(|d| d.array != "Old"));
}

#[test]
fn interchanged_variant_swaps_the_vector_components() {
    let prog = programs::gauss_seidel_interchanged();
    let infos = analyzed(&prog, N as i64);
    let (proc, interior) = &infos[2];
    assert_eq!(proc, "gs_iteration");
    assert!(interior.exact, "{:?}", interior.notes);
    // Same two flow dependences; under `for i { for j { … } }` the
    // carrying loops trade places and the vectors transpose.
    assert_eq!(
        carried_vectors(interior, "New"),
        vec![
            ("(<,=)".to_string(), "(1,0)".to_string(), 1),
            ("(=,<)".to_string(), "(0,1)".to_string(), 2),
        ]
    );
}

#[test]
fn jacobi_carries_nothing() {
    let prog = programs::jacobi();
    let infos = analyzed(&prog, N as i64);
    assert_eq!(infos.len(), 3);
    for (proc, info) in &infos {
        assert!(info.exact, "{proc}: {:?}", info.notes);
        assert!(
            info.loop_carried().next().is_none(),
            "{proc} unexpectedly carries a dependence"
        );
    }
}

/// Indirect subscripts cannot be analyzed exactly; the framework must
/// say so instead of claiming independence.
#[test]
fn indirect_subscripts_degrade_honestly() {
    let src = r#"
procedure scatter(Idx, n) {
    let A = matrix(n, n);
    for i = 1 to n do {
        for j = 1 to n do {
            A[Idx[i, 1], j] = i + j;
        }
    }
    return A;
}
"#;
    let prog = pdc_lang::parse(src).expect("scatter parses");
    let infos = analyzed(&prog, N as i64);
    assert_eq!(infos.len(), 1);
    let (_, info) = &infos[0];
    assert!(!info.exact, "indirect subscript must not analyze exactly");
    assert!(
        !info.notes.is_empty(),
        "inexactness must carry a reason for the report"
    );
}

fn compile_wavefront(level: Option<OptLevel>) -> Compiled {
    let program = programs::gauss_seidel();
    let mut job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(S),
    )
    .with_const("n", N as i64);
    if let Some(level) = level {
        job = job.with_opt_level(level);
    }
    driver::compile(&job, Strategy::CompileTime).expect("wavefront compiles")
}

/// The driver surfaces the framework's results as `Phase::Depend`
/// remarks: one exact summary per inlined nest, and exactly one
/// hotspot lint — the column-carried flow dependence on `New` crosses
/// the column-cyclic distribution; the row-carried one stays on its
/// owner and must not be flagged.
#[test]
fn depend_remarks_flag_the_wavefront_hotspot() {
    let c = compile_wavefront(Some(OptLevel::O0));
    let depend: Vec<_> = c
        .remarks
        .iter()
        .filter(|r| r.phase == Phase::Depend)
        .collect();
    let summaries: Vec<_> = depend
        .iter()
        .filter(|r| r.kind == RemarkKind::Applied)
        .collect();
    let lints: Vec<_> = depend
        .iter()
        .filter(|r| r.kind == RemarkKind::Missed)
        .collect();
    // init_boundary is inlined: its two nests plus the interior nest.
    assert_eq!(summaries.len(), 3);
    for s in &summaries {
        assert!(s.span.is_some(), "summary lacks a span: {}", s.message);
        assert!(
            s.details.iter().any(|(k, v)| k == "exact" && v == "true"),
            "nest not analyzed exactly: {:?}",
            s.details
        );
    }
    assert_eq!(lints.len(), 1, "{lints:#?}");
    let lint = lints[0];
    assert!(lint.message.contains("crosses its distributed dimension"));
    assert!(lint.span.is_some(), "hotspot lint must point at the source");
    assert!(
        lint.details
            .iter()
            .any(|(k, v)| k == "dependence" && v.contains("flow on `New`")),
        "{:?}",
        lint.details
    );
}

/// Jacobi under the same distribution communicates only at column
/// boundaries that carry no dependence — the lint must stay quiet.
#[test]
fn jacobi_raises_no_hotspot_lint() {
    let program = programs::jacobi();
    let job = Job::new(&program, "jacobi", programs::wavefront_decomposition(S))
        .with_const("n", N as i64);
    let c = driver::compile(&job, Strategy::CompileTime).expect("jacobi compiles");
    assert!(
        !c.remarks
            .iter()
            .any(|r| r.phase == Phase::Depend && r.kind == RemarkKind::Missed),
        "Jacobi has no loop-carried dependence to lint"
    );
}

/// Under a row distribution the *row*-carried dependence is the one
/// that crosses processors; the lint must follow the decomposition,
/// not the program text.
#[test]
fn hotspot_lint_follows_the_distribution() {
    let program = programs::gauss_seidel();
    let d = Decomposition::new(S)
        .array("New", Dist::RowCyclic)
        .array("Old", Dist::RowCyclic);
    let job = Job::new(&program, "gs_iteration", d).with_const("n", N as i64);
    let c = driver::compile(&job, Strategy::CompileTime).expect("compiles");
    let lints: Vec<_> = c
        .remarks
        .iter()
        .filter(|r| r.phase == Phase::Depend && r.kind == RemarkKind::Missed)
        .collect();
    assert_eq!(lints.len(), 1, "{lints:#?}");
    assert!(
        lints[0]
            .details
            .iter()
            .any(|(k, v)| k == "dependence" && v.contains("(=,<)")),
        "the row-carried dependence is the crossing one under rows: {:?}",
        lints[0].details
    );
}

/// The remark stream (now including `Phase::Depend`) stays byte-stable
/// across identical compiles.
#[test]
fn depend_remarks_are_deterministic() {
    let a = compile_wavefront(Some(OptLevel::O2));
    let b = compile_wavefront(Some(OptLevel::O2));
    assert_eq!(a.remarks_json(), b.remarks_json());
    assert!(a.remarks_json().contains("\"depend\""));
}

/// When the source nests cannot be analyzed exactly, the tuner must
/// reject every optimizer-on candidate *before* compiling and costing
/// it, with the analysis's reason as the rejection witness — and still
/// pick a working optimizer-off winner.
#[test]
fn tuner_prunes_unprovable_candidates_before_costing() {
    let src = r#"
procedure twist(Old, n) {
    let New = matrix(n, n);
    for i = 1 to n do {
        for j = 1 to n do {
            New[(i * i) div i, j] = Old[i, j] + 1;
        }
    }
    return New;
}
"#;
    let program = pdc_lang::parse(src).expect("twist parses");
    let d = Decomposition::new(S)
        .array("New", Dist::ColumnCyclic)
        .array("Old", Dist::ColumnCyclic);
    let job = Job::new(&program, "twist", d)
        .with_const("n", 8)
        .with_auto_decomposition();
    let c = driver::compile(&job, Strategy::Runtime).expect("auto compile succeeds");
    let tune = c.tune.as_ref().expect("auto job records the search");

    let mut rejected_illegal = 0usize;
    for e in &tune.evaluated {
        let optimizing = !matches!(e.candidate.opt_level, None | Some(OptLevel::O0));
        match &e.outcome {
            Err(reason) if optimizing => {
                assert!(
                    reason.contains("dependence analysis inexact"),
                    "{}: wrong rejection reason: {reason}",
                    e.candidate.label
                );
                rejected_illegal += 1;
            }
            Ok(_) => assert!(
                !optimizing,
                "{}: unprovable candidate was compiled and scored",
                e.candidate.label
            ),
            Err(_) => {}
        }
    }
    assert!(rejected_illegal > 0, "filter never fired");
    // The rejections surface as Tune remarks with the reason attached.
    assert!(c.remarks.iter().any(|r| {
        r.phase == Phase::Tune
            && r.kind == RemarkKind::Missed
            && r.details
                .iter()
                .any(|(k, v)| k == "rejected" && v.contains("dependence analysis inexact"))
    }));
    // The winner still runs: the framework prunes, it does not break.
    let winner = tune.winner();
    assert!(matches!(
        winner.candidate.opt_level,
        None | Some(OptLevel::O0)
    ));
    let exec = driver::execute(
        &c,
        &Inputs::new()
            .scalar("n", pdc_spmd::Scalar::Int(8))
            .array("Old", driver::standard_input(8, 8)),
        CostModel::ipsc2(),
    )
    .expect("winner executes");
    assert_eq!(exec.outcome.report.undelivered, 0);
}

/// Differential regression: every interchange the framework approves
/// preserves the simulator's output bit for bit. The interchanged
/// Gauss-Seidel source is the paper's own motivating case — the pass
/// swaps its `i`/`j` loops back into wavefront order — and both the
/// original and the swapped program, compiled and run on the
/// simulator, must gather the exact matrix the sequential interpreter
/// computes.
#[test]
fn applied_interchange_preserves_simulated_output() {
    let reversed = programs::gauss_seidel_interchanged();
    let mut sink = pdc_report::RemarkSink::new();
    let (swapped, count) = pdc_opt::interchange_with_remarks(&reversed, &mut sink);
    assert!(count > 0, "the motivating case must actually interchange");
    // Every applied swap names its legality witness from the framework.
    let applied: Vec<_> = sink
        .remarks()
        .iter()
        .filter(|r| r.phase == Phase::Interchange && r.kind == RemarkKind::Applied)
        .collect();
    assert_eq!(applied.len(), count);
    for r in &applied {
        assert!(
            r.details.iter().any(|(k, _)| k == "witness"),
            "applied interchange lacks a witness: {}",
            r.message
        );
    }

    let n = 10usize;
    let inputs = Inputs::new()
        .scalar("n", pdc_spmd::Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&reversed, "gs_iteration", &inputs).expect("sequential");
    for (label, program) in [("reversed", &reversed), ("interchanged", &swapped)] {
        for level in [OptLevel::O0, OptLevel::O2] {
            let job = Job::new(
                program,
                "gs_iteration",
                programs::wavefront_decomposition(S),
            )
            .with_const("n", n as i64)
            .with_opt_level(level);
            let c = driver::compile(&job, Strategy::CompileTime).expect("compiles");
            let exec = driver::execute(&c, &inputs, CostModel::ipsc2()).expect("runs");
            let gathered = exec.gather("New").expect("gathers");
            assert_eq!(
                driver::first_mismatch(&gathered, &seq),
                None,
                "{label} at {level}: output diverged from the interpreter"
            );
        }
    }
}
