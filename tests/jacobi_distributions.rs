//! The Jacobi kernel compiled under every distribution family the
//! introduction motivates ("mapping by columns, rows, blocks, etc."),
//! under both code generators — all must equal the sequential result.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::Scalar;

fn check(dist: Dist, s: usize, strategy: Strategy) -> u64 {
    let n = 8usize;
    let program = programs::jacobi();
    let decomp = Decomposition::new(s)
        .array("New", dist.clone())
        .array("Old", dist.clone());
    let mut job = Job::new(&program, "jacobi", decomp).with_const("n", n as i64);
    job.extent_overrides.insert("Old".into(), (n, n));
    let compiled =
        driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{dist} ({strategy:?}): {e}"));
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2())
        .unwrap_or_else(|e| panic!("{dist} ({strategy:?}): {e}"));
    assert_eq!(exec.outcome.report.undelivered, 0, "{dist}: orphans");
    let gathered = exec.gather("New").unwrap();
    let seq = driver::run_sequential(&program, "jacobi", &inputs).unwrap();
    assert_eq!(
        driver::first_mismatch(&gathered, &seq),
        None,
        "{dist} ({strategy:?}): wrong matrix"
    );
    exec.messages()
}

#[test]
fn every_distribution_family_is_correct() {
    for strategy in [Strategy::Runtime, Strategy::CompileTime] {
        for (dist, s) in [
            (Dist::Replicated, 3usize),
            (Dist::OnProcessor(1), 3),
            (Dist::ColumnCyclic, 4),
            (Dist::RowCyclic, 4),
            (Dist::ColumnBlock, 4),
            (Dist::RowBlock, 4),
            (Dist::ColumnBlockCyclic { block: 2 }, 3),
            (Dist::RowBlockCyclic { block: 3 }, 2),
            (Dist::Block2d { prows: 2, pcols: 2 }, 4),
            (Dist::column_weighted(&[1, 2, 1]), 3),
        ] {
            check(dist, s, strategy);
        }
    }
}

#[test]
fn locality_ranking_for_jacobi() {
    // Jacobi's halo pattern: blocks need messages only at panel borders,
    // cyclic layouts pay for every interior element.
    let cyclic = check(Dist::ColumnCyclic, 4, Strategy::CompileTime);
    let block = check(Dist::ColumnBlock, 4, Strategy::CompileTime);
    let grid = check(
        Dist::Block2d { prows: 2, pcols: 2 },
        4,
        Strategy::CompileTime,
    );
    assert!(
        block < cyclic,
        "block panels ({block}) should beat cyclic ({cyclic}) on messages"
    );
    assert!(
        grid <= cyclic,
        "2-D blocks ({grid}) should not exceed cyclic ({cyclic})"
    );
}

#[test]
fn replicated_and_pinned_exchange_no_messages() {
    assert_eq!(check(Dist::Replicated, 3, Strategy::CompileTime), 0);
    assert_eq!(check(Dist::OnProcessor(2), 3, Strategy::CompileTime), 0);
}
