//! Predicted-vs-observed verification of the static message-cost model.
//!
//! For every compiler-built wavefront variant, the driver's prediction
//! must match a fault-free simulator run *exactly*: per-`(src, dst, tag)`
//! message counts, total payload words, and (when traced) the event
//! trace's communication matrix.

use pdc_bench::{compile_wavefront, Variant};
use pdc_core::driver::{self, Inputs};
use pdc_machine::CostModel;
use pdc_spmd::Scalar;

const N: usize = 16;
const S: usize = 4;

fn variants() -> Vec<Variant> {
    vec![
        Variant::RuntimeRes,
        Variant::CompileTime,
        Variant::OptimizedI,
        Variant::OptimizedII,
        Variant::OptimizedIII { blksize: 4 },
    ]
}

#[test]
fn predictions_are_exact_for_every_variant() {
    for variant in variants() {
        let mut compiled = compile_wavefront(variant, N, S).expect("compiler variant");
        compiled.trace_cap = Some(1 << 20); // check the trace matrix too
        assert!(
            compiled.prediction.exact,
            "{variant}: the model degraded to approximate: {:?}",
            compiled.prediction.notes
        );
        assert!(
            compiled.prediction.protocol_consistent(),
            "{variant}: predicted sends and receives disagree"
        );
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(N as i64))
            .array("Old", driver::standard_input(N, N));
        let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2()).expect("runs");
        assert_eq!(exec.outcome.report.undelivered, 0, "{variant}");
        let report = exec.verify_predictions();
        assert!(report.trace_checked, "{variant}: trace was not checked");
        assert!(
            report.ok(),
            "{variant}: prediction diverged from observation:\n  {}",
            report.mismatches.join("\n  ")
        );
        assert!(
            report.checked_channels > 0 || exec.messages() == 0,
            "{variant}"
        );
    }
}

#[test]
fn prediction_totals_match_observed_counters() {
    for variant in variants() {
        let compiled = compile_wavefront(variant, N, S).expect("compiler variant");
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(N as i64))
            .array("Old", driver::standard_input(N, N));
        let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2()).expect("runs");
        assert_eq!(
            compiled.prediction.total_messages(),
            exec.messages(),
            "{variant}: message totals"
        );
        assert_eq!(
            compiled.prediction.total_words(),
            exec.outcome.report.stats.network.words,
            "{variant}: word totals"
        );
    }
}

#[test]
fn single_processor_predicts_silence() {
    let compiled = compile_wavefront(Variant::CompileTime, 8, 1).expect("compiler variant");
    assert_eq!(compiled.prediction.total_messages(), 0);
    assert!(compiled.prediction.exact);
}
