//! Property test: for *random* straight-line scalar programs with random
//! domain decompositions, both code generators agree with a direct
//! evaluation of the program — the compiled machine program is
//! semantically transparent no matter where the data lives.

use pdc_core::driver::{self, Inputs, Job, Strategy as CodegenStrategy};
use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, ScalarMap};
use pdc_spmd::Scalar;
use proptest::prelude::*;

/// A recipe for one `let` statement: which earlier variables it reads and
/// how it combines them.
#[derive(Debug, Clone)]
struct StmtSpec {
    /// Index of the first operand among earlier variables (modulo count).
    a: usize,
    /// Index of the second operand.
    b: usize,
    /// Combination: 0 = a+b, 1 = a-b, 2 = min, 3 = max, 4 = 2a+const.
    op: u8,
    /// Constant folded into the statement.
    k: i64,
    /// Mapping choice: None = ALL, Some(p) = pinned.
    map: Option<usize>,
}

fn spec_strategy(nprocs: usize) -> impl Strategy<Value = Vec<StmtSpec>> {
    proptest::collection::vec(
        (
            0usize..8,
            0usize..8,
            0u8..5,
            -50i64..50,
            proptest::option::of(0usize..nprocs),
        )
            .prop_map(|(a, b, op, k, map)| StmtSpec { a, b, op, k, map }),
        1..12,
    )
}

/// Render the program source and compute the expected value of each
/// variable directly.
fn build(specs: &[StmtSpec]) -> (String, Vec<i64>) {
    let mut src = String::from("procedure main() {\n");
    let mut values: Vec<i64> = Vec::new();
    // Two seed variables so every statement has operands.
    src.push_str("    let x0 = 3;\n    let x1 = 10;\n");
    values.push(3);
    values.push(10);
    for (i, s) in specs.iter().enumerate() {
        let idx = i + 2;
        let a = s.a % values.len();
        let b = s.b % values.len();
        let (expr, val) = match s.op {
            0 => (format!("x{a} + x{b}"), values[a] + values[b]),
            1 => (format!("x{a} - x{b}"), values[a] - values[b]),
            2 => (format!("min(x{a}, x{b})"), values[a].min(values[b])),
            3 => (format!("max(x{a}, x{b})"), values[a].max(values[b])),
            _ => (format!("2 * x{a} + {k}", k = s.k), 2 * values[a] + s.k),
        };
        src.push_str(&format!("    let x{idx} = {expr};\n"));
        values.push(val);
    }
    src.push_str(&format!("    return x{};\n}}\n", values.len() - 1));
    (src, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_scalar_programs_match_direct_evaluation(
        specs in spec_strategy(4),
        nprocs in 1usize..5,
    ) {
        let (src, expected) = build(&specs);
        let program = pdc_lang::parse(&src).expect("generated source parses");
        let mut d = Decomposition::new(nprocs);
        for (i, s) in specs.iter().enumerate() {
            if let Some(p) = s.map {
                d = d.scalar(format!("x{}", i + 2), ScalarMap::On(p % nprocs));
            }
        }
        for strategy in [CodegenStrategy::Runtime, CodegenStrategy::CompileTime] {
            let job = Job::new(&program, "main", d.clone());
            let compiled = driver::compile(&job, strategy)
                .unwrap_or_else(|e| panic!("{strategy:?} failed on:\n{src}\n{e}"));
            let exec = driver::execute(&compiled, &Inputs::new(), CostModel::ipsc2())
                .unwrap_or_else(|e| panic!("{strategy:?} run failed on:\n{src}\n{e}"));
            prop_assert_eq!(exec.outcome.report.undelivered, 0);
            // Every variable must hold its expected value on every
            // processor that defines it (the owner, or everyone for ALL).
            for (i, want) in expected.iter().enumerate() {
                let name = format!("x{i}");
                let map = if i < 2 {
                    ScalarMap::All
                } else {
                    match specs[i - 2].map {
                        Some(p) => ScalarMap::On(p % nprocs),
                        None => ScalarMap::All,
                    }
                };
                match map {
                    ScalarMap::All => {
                        for p in 0..nprocs {
                            prop_assert_eq!(
                                exec.machine.vm(p).var(&name),
                                Some(Scalar::Int(*want)),
                                "{:?}: {} on P{} in\n{}", strategy, &name, p, &src
                            );
                        }
                    }
                    ScalarMap::On(p) => {
                        prop_assert_eq!(
                            exec.machine.vm(p).var(&name),
                            Some(Scalar::Int(*want)),
                            "{:?}: {} on owner P{} in\n{}", strategy, &name, p, &src
                        );
                    }
                }
            }
        }
    }

    /// The two strategies always exchange the same messages for scalar
    /// programs (coercions are forced by the mapping, not the strategy).
    #[test]
    fn strategies_agree_on_message_counts(
        specs in spec_strategy(3),
        nprocs in 2usize..4,
    ) {
        let (src, _) = build(&specs);
        let program = pdc_lang::parse(&src).expect("generated source parses");
        let mut d = Decomposition::new(nprocs);
        for (i, s) in specs.iter().enumerate() {
            if let Some(p) = s.map {
                d = d.scalar(format!("x{}", i + 2), ScalarMap::On(p % nprocs));
            }
        }
        let mut counts = Vec::new();
        for strategy in [CodegenStrategy::Runtime, CodegenStrategy::CompileTime] {
            let job = Job::new(&program, "main", d.clone());
            let compiled = driver::compile(&job, strategy).unwrap();
            let exec =
                driver::execute(&compiled, &Inputs::new(), CostModel::zero()).unwrap();
            counts.push(exec.messages());
        }
        prop_assert_eq!(counts[0], counts[1], "src:\n{}", src);
    }
}
