//! Property test: for *random* straight-line scalar programs with random
//! domain decompositions, both code generators agree with a direct
//! evaluation of the program — the compiled machine program is
//! semantically transparent no matter where the data lives.
//! (Deterministic `pdc-testkit` cases; a failing case prints its seed
//! for replay.)
//!
//! Regression policy: when a `cases(...)` run fails, the harness prints
//! the case's seed. Pin it forever as a plain `#[test]` that calls
//! `Rng::from_seed(0x...)` and re-runs the body — these never rot the
//! way proptest-regressions files did, and they document the bug they
//! caught. (No pinned seeds yet.)

use pdc_core::driver::{self, Inputs, Job, Strategy as CodegenStrategy};
use pdc_core::programs;
use pdc_machine::{Backend, CostModel, MachineError};
use pdc_mapping::{Decomposition, Dist, ScalarMap};
use pdc_spmd::ir::{RecvTarget, SExpr, SStmt, SpmdProgram};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::{Scalar, SpmdError};
use pdc_testkit::{cases, Rng};
use std::collections::BTreeMap;
use std::time::Duration;

/// A recipe for one `let` statement: which earlier variables it reads and
/// how it combines them.
#[derive(Debug, Clone)]
struct StmtSpec {
    /// Index of the first operand among earlier variables (modulo count).
    a: usize,
    /// Index of the second operand.
    b: usize,
    /// Combination: 0 = a+b, 1 = a-b, 2 = min, 3 = max, 4 = 2a+const.
    op: u8,
    /// Constant folded into the statement.
    k: i64,
    /// Mapping choice: None = ALL, Some(p) = pinned.
    map: Option<usize>,
}

fn random_specs(rng: &mut Rng, nprocs: usize) -> Vec<StmtSpec> {
    let n = rng.range_usize(1, 12);
    (0..n)
        .map(|_| StmtSpec {
            a: rng.range_usize(0, 8),
            b: rng.range_usize(0, 8),
            op: rng.range_usize(0, 5) as u8,
            k: rng.range_i64(-50, 50),
            map: if rng.bool() {
                Some(rng.range_usize(0, nprocs))
            } else {
                None
            },
        })
        .collect()
}

/// Render the program source and compute the expected value of each
/// variable directly.
fn build(specs: &[StmtSpec]) -> (String, Vec<i64>) {
    let mut src = String::from("procedure main() {\n");
    let mut values: Vec<i64> = Vec::new();
    // Two seed variables so every statement has operands.
    src.push_str("    let x0 = 3;\n    let x1 = 10;\n");
    values.push(3);
    values.push(10);
    for (i, s) in specs.iter().enumerate() {
        let idx = i + 2;
        let a = s.a % values.len();
        let b = s.b % values.len();
        let (expr, val) = match s.op {
            0 => (format!("x{a} + x{b}"), values[a] + values[b]),
            1 => (format!("x{a} - x{b}"), values[a] - values[b]),
            2 => (format!("min(x{a}, x{b})"), values[a].min(values[b])),
            3 => (format!("max(x{a}, x{b})"), values[a].max(values[b])),
            _ => (format!("2 * x{a} + {k}", k = s.k), 2 * values[a] + s.k),
        };
        src.push_str(&format!("    let x{idx} = {expr};\n"));
        values.push(val);
    }
    src.push_str(&format!("    return x{};\n}}\n", values.len() - 1));
    (src, values)
}

fn decomposition_for(specs: &[StmtSpec], nprocs: usize) -> Decomposition {
    let mut d = Decomposition::new(nprocs);
    for (i, s) in specs.iter().enumerate() {
        if let Some(p) = s.map {
            d = d.scalar(format!("x{}", i + 2), ScalarMap::On(p % nprocs));
        }
    }
    d
}

#[test]
fn compiled_scalar_programs_match_direct_evaluation() {
    cases(
        64,
        "compiled_scalar_programs_match_direct_evaluation",
        |rng| {
            let nprocs = rng.range_usize(1, 5);
            let specs = random_specs(rng, 4);
            let (src, expected) = build(&specs);
            let program = pdc_lang::parse(&src).expect("generated source parses");
            let d = decomposition_for(&specs, nprocs);
            for strategy in [CodegenStrategy::Runtime, CodegenStrategy::CompileTime] {
                let job = Job::new(&program, "main", d.clone());
                let compiled = driver::compile(&job, strategy)
                    .unwrap_or_else(|e| panic!("{strategy:?} failed on:\n{src}\n{e}"));
                let exec = driver::execute(&compiled, &Inputs::new(), CostModel::ipsc2())
                    .unwrap_or_else(|e| panic!("{strategy:?} run failed on:\n{src}\n{e}"));
                assert_eq!(exec.outcome.report.undelivered, 0);
                // Every variable must hold its expected value on every
                // processor that defines it (the owner, or everyone for ALL).
                for (i, want) in expected.iter().enumerate() {
                    let name = format!("x{i}");
                    let map = if i < 2 {
                        ScalarMap::All
                    } else {
                        match specs[i - 2].map {
                            Some(p) => ScalarMap::On(p % nprocs),
                            None => ScalarMap::All,
                        }
                    };
                    match map {
                        ScalarMap::All => {
                            for p in 0..nprocs {
                                assert_eq!(
                                    exec.machine.vm(p).var(&name),
                                    Some(Scalar::Int(*want)),
                                    "{strategy:?}: {name} on P{p} in\n{src}"
                                );
                            }
                        }
                        ScalarMap::On(p) => {
                            assert_eq!(
                                exec.machine.vm(p).var(&name),
                                Some(Scalar::Int(*want)),
                                "{strategy:?}: {name} on owner P{p} in\n{src}"
                            );
                        }
                    }
                }
            }
        },
    );
}

/// A random distribution from the block / cyclic / block-cyclic
/// families the paper's introduction motivates, sized for `nprocs`.
fn random_array_dist(rng: &mut Rng, nprocs: usize) -> Dist {
    match rng.range_usize(0, 7) {
        0 => Dist::ColumnCyclic,
        1 => Dist::RowCyclic,
        2 => Dist::ColumnBlock,
        3 => Dist::RowBlock,
        4 => Dist::ColumnBlockCyclic {
            block: rng.range_usize(1, 4),
        },
        5 => Dist::RowBlockCyclic {
            block: rng.range_usize(1, 4),
        },
        _ => {
            // A 2-D grid needs prows * pcols == nprocs; pick a divisor.
            let divisors: Vec<usize> = (1..=nprocs).filter(|d| nprocs.is_multiple_of(*d)).collect();
            let prows = divisors[rng.range_usize(0, divisors.len())];
            Dist::Block2d {
                prows,
                pcols: nprocs / prows,
            }
        }
    }
}

/// The threaded backend agrees with the sequential interpreter (and the
/// simulator) for the Jacobi kernel under *random* decompositions from
/// the block / cyclic / block-cyclic families on 1–8 processors. This is
/// the same transparency property as above, but exercising real OS
/// threads, real channels, and every distribution family at once.
#[test]
fn threaded_backend_matches_interpreter_on_random_decompositions() {
    cases(
        24,
        "threaded_backend_matches_interpreter_on_random_decompositions",
        |rng| {
            let nprocs = rng.range_usize(1, 9);
            let n = rng.range_usize(4, 10);
            let dist = random_array_dist(rng, nprocs);
            let strategy = if rng.bool() {
                CodegenStrategy::Runtime
            } else {
                CodegenStrategy::CompileTime
            };
            let label = format!("{dist:?} on {nprocs} procs, n = {n}, {strategy:?}");

            let program = programs::jacobi();
            let d = Decomposition::new(nprocs)
                .array("New", dist.clone())
                .array("Old", dist);
            let mut job = Job::new(&program, "jacobi", d).with_const("n", n as i64);
            job.extent_overrides.insert("Old".into(), (n, n));
            let compiled =
                driver::compile(&job, strategy).unwrap_or_else(|e| panic!("{label}: compile: {e}"));
            let inputs = Inputs::new()
                .scalar("n", Scalar::Int(n as i64))
                .array("Old", driver::standard_input(n, n));

            let thr =
                driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::threaded())
                    .unwrap_or_else(|e| panic!("{label}: threaded run: {e}"));
            assert_eq!(thr.outcome.report.undelivered, 0, "{label}");
            let gathered = thr.gather("New").expect("gathers");
            let seq = driver::run_sequential(&program, "jacobi", &inputs).expect("sequential");
            assert_eq!(
                driver::first_mismatch(&gathered, &seq),
                None,
                "{label}: threaded output disagrees with the interpreter"
            );

            // And the communication pattern matches the simulator's.
            let sim =
                driver::execute_on(&compiled, &inputs, CostModel::ipsc2(), Backend::Simulated)
                    .unwrap_or_else(|e| panic!("{label}: simulated run: {e}"));
            assert_eq!(
                thr.outcome.report.pair_messages, sim.outcome.report.pair_messages,
                "{label}: per-pair message counts diverge"
            );
        },
    );
}

/// A random straight-line communication pattern over 2–4 processors:
/// point-to-point messages with uniquely tagged sends and receives
/// spliced into each endpoint's statement list at random positions.
/// Random placement makes receives frequently precede the sends that
/// would unblock their peer, so the family naturally contains both
/// deadlock-free programs and genuine deadlock cycles; on top of that a
/// message sometimes loses its receive (orphan) and a processor
/// sometimes gains a receive nothing ever sends (starvation).
fn random_comm_program(rng: &mut Rng) -> SpmdProgram {
    let nprocs = rng.range_usize(2, 5);
    let mut bodies: Vec<Vec<SStmt>> = vec![Vec::new(); nprocs];
    let n_msgs = rng.range_usize(1, 8);
    for m in 0..n_msgs {
        let src = rng.range_usize(0, nprocs);
        let mut dst = rng.range_usize(0, nprocs);
        if dst == src {
            dst = (dst + 1) % nprocs;
        }
        let tag = 10 + m as u32;
        let at = rng.range_usize(0, bodies[src].len() + 1);
        bodies[src].insert(
            at,
            SStmt::Send {
                to: SExpr::int(dst as i64),
                tag,
                values: vec![SExpr::int(m as i64)],
            },
        );
        if rng.range_usize(0, 10) > 0 {
            let at = rng.range_usize(0, bodies[dst].len() + 1);
            bodies[dst].insert(
                at,
                SStmt::Recv {
                    from: SExpr::int(src as i64),
                    tag,
                    into: vec![RecvTarget::Var(format!("v{m}"))],
                },
            );
        }
        if rng.range_usize(0, 10) == 0 {
            let p = rng.range_usize(0, nprocs);
            let mut q = rng.range_usize(0, nprocs);
            if q == p {
                q = (q + 1) % nprocs;
            }
            let at = rng.range_usize(0, bodies[p].len() + 1);
            bodies[p].insert(
                at,
                SStmt::Recv {
                    from: SExpr::int(q as i64),
                    tag: 100 + m as u32,
                    into: vec![RecvTarget::Var(format!("w{m}"))],
                },
            );
        }
    }
    SpmdProgram::new(bodies)
}

/// Differential property tying the static analyzer to the machine: a
/// statically *verified* program never deadlocks at runtime, and a
/// program the simulator deadlocks on is always statically flagged with
/// an error-severity diagnostic. (Warnings — orphaned or dead sends —
/// are allowed on verified programs: they waste messages but cannot
/// block progress.)
#[test]
fn static_verification_agrees_with_simulated_deadlock_behaviour() {
    let deadlocked = std::cell::Cell::new(0usize);
    let verified = std::cell::Cell::new(0usize);
    cases(
        220,
        "static_verification_agrees_with_simulated_deadlock_behaviour",
        |rng| {
            let prog = random_comm_program(rng);
            let report = pdc_analyze::analyze(&prog, &BTreeMap::new(), &BTreeMap::new());
            assert!(report.exact, "straight-line constants must stay exact");
            let result = SpmdMachine::new(&prog, CostModel::zero())
                .expect("lowers")
                .run();
            match &result {
                Ok(_) => {}
                Err(SpmdError::Machine(MachineError::Deadlock { .. })) => {
                    deadlocked.set(deadlocked.get() + 1);
                    assert!(
                        report.has_errors(),
                        "runtime deadlock escaped the analyzer:\n{prog}"
                    );
                }
                Err(e) => panic!("unexpected machine error: {e}\n{prog}"),
            }
            if report.verified() {
                verified.set(verified.get() + 1);
                assert!(
                    result.is_ok(),
                    "statically verified program failed at runtime: {}\n{prog}",
                    result.unwrap_err()
                );
            }
        },
    );
    // Both directions of the implication must actually be exercised.
    assert!(
        deadlocked.get() > 10,
        "family too tame: {}",
        deadlocked.get()
    );
    assert!(verified.get() > 10, "family too broken: {}", verified.get());
}

/// The same agreement on the threaded backend, where a deadlock has no
/// global no-progress snapshot and surfaces as a receive timeout or an
/// await on a finished peer instead. Fewer seeds: each deadlocking case
/// costs a real wall-clock timeout.
#[test]
fn static_verification_agrees_with_threaded_deadlock_behaviour() {
    cases(
        24,
        "static_verification_agrees_with_threaded_deadlock_behaviour",
        |rng| {
            let prog = random_comm_program(rng);
            let report = pdc_analyze::analyze(&prog, &BTreeMap::new(), &BTreeMap::new());
            let result = SpmdMachine::new(&prog, CostModel::zero())
                .expect("lowers")
                .with_backend(Backend::Threaded {
                    recv_timeout: Duration::from_millis(250),
                })
                .run();
            match &result {
                Ok(_) => {}
                Err(SpmdError::Machine(
                    MachineError::Deadlock { .. } | MachineError::RecvTimeout { .. },
                )) => {
                    assert!(
                        report.has_errors(),
                        "threaded deadlock escaped the analyzer:\n{prog}"
                    );
                }
                Err(e) => panic!("unexpected machine error: {e}\n{prog}"),
            }
            if report.verified() {
                assert!(
                    result.is_ok(),
                    "statically verified program failed on threads: {}\n{prog}",
                    result.unwrap_err()
                );
            }
        },
    );
}

/// Random *verified* (statically deadlock-free) communication programs
/// replayed over the ring fabric with a randomized configuration —
/// ring capacity drawn from {8, 16, 64, 1024} words, and one of
/// {vanilla, lossy fault plan, checkpointing} — must deliver exactly
/// the values the simulator delivers, variable by variable, processor
/// by processor.
#[test]
fn ring_fabric_matches_simulator_on_random_programs() {
    use pdc_machine::{CheckpointCfg, FaultPlan, RelConfig};
    cases(
        32,
        "ring_fabric_matches_simulator_on_random_programs",
        |rng| {
            let prog = random_comm_program(rng);
            let report = pdc_analyze::analyze(&prog, &BTreeMap::new(), &BTreeMap::new());
            // Only deadlock-free programs terminate on both backends; the
            // deadlocking rest of the family is covered by the two
            // verification tests above.
            if !report.verified() {
                return;
            }
            let mut sim = SpmdMachine::new(&prog, CostModel::ipsc2()).expect("lowers");
            let sim_out = sim.run().expect("simulator");

            let caps = [8usize, 16, 64, 1024];
            let cap = caps[rng.range_usize(0, caps.len())];
            let config = rng.range_usize(0, 3);
            let label = format!("ring {cap}, config {config}\n{prog}");
            let mut thr = SpmdMachine::new(&prog, CostModel::ipsc2())
                .expect("lowers")
                .with_backend(Backend::threaded())
                .with_ring_capacity(cap);
            match config {
                0 => {}
                1 => {
                    let plan = FaultPlan::seeded(rng.range_i64(0, 1 << 20) as u64)
                        .with_drops(200)
                        .with_dups(100)
                        .with_fault_budget(3);
                    let rel = RelConfig {
                        rto_wall: Duration::from_millis(2),
                        ..RelConfig::default()
                    };
                    thr = thr.with_faults_cfg(plan, rel);
                }
                _ => thr = thr.with_checkpoints(CheckpointCfg::every(4)),
            }
            let thr_out = thr
                .run()
                .unwrap_or_else(|e| panic!("{label}: threaded: {e}"));

            assert_eq!(
                thr_out.report.pair_messages, sim_out.report.pair_messages,
                "{label}: per-pair message counts"
            );
            assert_eq!(
                thr_out.report.undelivered, sim_out.report.undelivered,
                "{label}: undelivered (orphan) message counts"
            );
            for p in 0..prog.n_procs() {
                for m in 0..8 {
                    for var in [format!("v{m}"), format!("w{m}")] {
                        assert_eq!(
                            thr.vm(p).var(&var),
                            sim.vm(p).var(&var),
                            "{label}: `{var}` on P{p}"
                        );
                    }
                }
            }
        },
    );
}

/// Property tying the dependence framework to the machine: over random
/// (kernel, distribution, optimization level, size) configurations of
/// the paper's wavefront programs, every transformation the framework
/// approves — source-level interchange plus the SPMD passes it gates
/// (vectorize, jam, strip-mine) — leaves the simulated output
/// bit-identical to the sequential interpreter's. Non-vacuity is
/// asserted both ways: across the family the passes must have applied
/// *and* refused a healthy number of transformations, so the property
/// can neither pass by never optimizing nor by never being challenged.
#[test]
fn dependence_approved_transforms_preserve_output() {
    use pdc_opt::OptLevel;
    use pdc_report::{Phase, RemarkKind};

    let applied = std::cell::Cell::new(0usize);
    let refused = std::cell::Cell::new(0usize);
    cases(
        24,
        "dependence_approved_transforms_preserve_output",
        |rng| {
            let n = rng.range_usize(6, 13);
            let nprocs = rng.range_usize(2, 5);
            let source = if rng.bool() {
                programs::gauss_seidel()
            } else {
                programs::gauss_seidel_interchanged()
            };
            // The source-level pass first: its swaps are framework-approved
            // and must be semantics-preserving through the whole pipeline.
            let (program, swaps) = if rng.bool() {
                let (p, c) = pdc_opt::interchange(&source);
                (p, c)
            } else {
                (source.clone(), 0)
            };
            applied.set(applied.get() + swaps);
            let dist = if rng.bool() {
                Dist::ColumnCyclic
            } else {
                Dist::RowCyclic
            };
            let level = match rng.range_usize(0, 4) {
                0 => OptLevel::O1,
                1 => OptLevel::O2,
                2 => OptLevel::O3 { blksize: 2 },
                _ => OptLevel::O3 { blksize: 4 },
            };
            let label = format!("{dist:?} on {nprocs} procs, n = {n}, {level}, {swaps} swap(s)");

            let d = Decomposition::new(nprocs)
                .array("New", dist.clone())
                .array("Old", dist);
            let job = Job::new(&program, "gs_iteration", d)
                .with_const("n", n as i64)
                .with_opt_level(level);
            let compiled = driver::compile(&job, CodegenStrategy::CompileTime)
                .unwrap_or_else(|e| panic!("{label}: compile: {e}"));
            for r in &compiled.remarks {
                if matches!(r.phase, Phase::Vectorize | Phase::Jam | Phase::Strip) {
                    match r.kind {
                        RemarkKind::Applied => applied.set(applied.get() + 1),
                        RemarkKind::Missed => refused.set(refused.get() + 1),
                    }
                }
            }

            let inputs = Inputs::new()
                .scalar("n", Scalar::Int(n as i64))
                .array("Old", driver::standard_input(n, n));
            let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2())
                .unwrap_or_else(|e| panic!("{label}: run: {e}"));
            assert_eq!(exec.outcome.report.undelivered, 0, "{label}");
            let gathered = exec.gather("New").expect("gathers");
            let seq =
                driver::run_sequential(&program, "gs_iteration", &inputs).expect("sequential");
            assert_eq!(
                driver::first_mismatch(&gathered, &seq),
                None,
                "{label}: approved transformations changed the output"
            );
        },
    );
    assert!(applied.get() > 10, "family too tame: {}", applied.get());
    assert!(refused.get() > 10, "family unchallenged: {}", refused.get());
}

/// The two strategies always exchange the same messages for scalar
/// programs (coercions are forced by the mapping, not the strategy).
#[test]
fn strategies_agree_on_message_counts() {
    cases(64, "strategies_agree_on_message_counts", |rng| {
        let nprocs = rng.range_usize(2, 4);
        let specs = random_specs(rng, 3);
        let (src, _) = build(&specs);
        let program = pdc_lang::parse(&src).expect("generated source parses");
        let d = decomposition_for(&specs, nprocs);
        let mut counts = Vec::new();
        for strategy in [CodegenStrategy::Runtime, CodegenStrategy::CompileTime] {
            let job = Job::new(&program, "main", d.clone());
            let compiled = driver::compile(&job, strategy).unwrap();
            let exec = driver::execute(&compiled, &Inputs::new(), CostModel::zero()).unwrap();
            counts.push(exec.messages());
        }
        assert_eq!(counts[0], counts[1], "src:\n{src}");
    });
}
