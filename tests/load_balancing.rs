//! §5.4 load balancing end to end: a weighted column assignment on a
//! heterogeneous machine beats the uniform wrap, and the table-based
//! mapping (which forces the compiler's *inconclusive* run-time-guard
//! path) still computes exactly the sequential result.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::programs;
use pdc_machine::{CostModel, Machine};
use pdc_mapping::{Decomposition, Dist};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

fn run(strategy: Strategy, dist: Dist, slowdowns: Vec<u64>, n: usize) -> (u64, bool) {
    let s = slowdowns.len();
    let program = programs::jacobi();
    let decomp = Decomposition::new(s)
        .array("New", dist.clone())
        .array("Old", dist.clone());
    let mut job = Job::new(&program, "jacobi", decomp).with_const("n", n as i64);
    job.extent_overrides.insert("Old".into(), (n, n));
    let compiled = driver::compile(&job, strategy).expect("compiles");
    let machine = Machine::new(s, CostModel::ipsc2()).with_slowdowns(slowdowns);
    let mut m = SpmdMachine::with_machine(&compiled.spmd, machine).expect("lowers");
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array("Old", dist, &driver::standard_input(n, n));
    let out = m.run().expect("runs");
    let gathered = m.gather("New").expect("gathers");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "jacobi", &inputs).expect("sequential");
    (
        out.report.stats.makespan().0,
        driver::first_mismatch(&gathered, &seq).is_none() && out.report.undelivered == 0,
    )
}

#[test]
fn weighted_assignment_beats_uniform_on_heterogeneous_machine() {
    let n = 16usize;
    let slow = vec![4u64, 1, 1, 1];
    let (t_equal, ok_equal) = run(Strategy::CompileTime, Dist::ColumnCyclic, slow.clone(), n);
    let (t_weighted, ok_weighted) = run(
        Strategy::CompileTime,
        Dist::column_weighted(&[1, 4, 4, 4]),
        slow,
        n,
    );
    assert!(ok_equal && ok_weighted);
    assert!(
        t_weighted < t_equal,
        "weighted ({t_weighted}) should beat equal ({t_equal})"
    );
}

#[test]
fn table_assignment_correct_under_both_strategies() {
    let n = 12usize;
    for strategy in [Strategy::Runtime, Strategy::CompileTime] {
        let (_, ok) = run(
            strategy,
            Dist::column_weighted(&[2, 1, 3]),
            vec![1, 1, 1],
            n,
        );
        assert!(ok, "{strategy:?} wrong under table assignment");
    }
}

#[test]
fn wavefront_also_runs_under_table_assignment() {
    // Gauss-Seidel's wavefront dependences must survive the fully
    // run-time-guarded ownership path too.
    let n = 10usize;
    let dist = Dist::column_weighted(&[1, 2, 1]);
    let program = programs::gauss_seidel();
    let decomp = Decomposition::new(3)
        .array("New", dist.clone())
        .array("Old", dist.clone());
    let job = Job::new(&program, "gs_iteration", decomp).with_const("n", n as i64);
    let compiled = driver::compile(&job, Strategy::CompileTime).expect("compiles");
    let mut m = SpmdMachine::new(&compiled.spmd, CostModel::ipsc2()).expect("lowers");
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array("Old", dist, &driver::standard_input(n, n));
    let out = m.run().expect("runs");
    assert_eq!(out.report.undelivered, 0);
    let gathered = m.gather("New").expect("gathers");
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(n as i64))
        .array("Old", driver::standard_input(n, n));
    let seq = driver::run_sequential(&program, "gs_iteration", &inputs).expect("sequential");
    assert_eq!(driver::first_mismatch(&gathered, &seq), None);
}
