//! End-to-end reproduction checks of the paper's headline claims, at a
//! scale small enough for the debug-build test suite.

use pdc_core::driver::{self, Inputs, Job, Strategy};
use pdc_core::handwritten;
use pdc_core::inline::{ParamMapMode, ParamMaps};
use pdc_core::programs;
use pdc_machine::CostModel;
use pdc_mapping::{Decomposition, ScalarMap};
use pdc_opt::{interchange, optimize, OptLevel};
use pdc_spmd::run::SpmdMachine;
use pdc_spmd::Scalar;

/// Simulate one wavefront configuration; return (messages, makespan).
fn run_wavefront(prog: &pdc_spmd::ir::SpmdProgram, n: usize, verify: bool) -> (u64, u64) {
    let mut m = SpmdMachine::new(prog, CostModel::ipsc2()).expect("lowers");
    m.preset_var("n", Scalar::Int(n as i64));
    m.preload_array(
        "Old",
        pdc_mapping::Dist::ColumnCyclic,
        &driver::standard_input(n, n),
    );
    let out = m.run().expect("runs");
    assert_eq!(out.report.undelivered, 0);
    if verify {
        let gathered = m.gather("New").expect("gathers");
        let inputs = Inputs::new()
            .scalar("n", Scalar::Int(n as i64))
            .array("Old", driver::standard_input(n, n));
        let seq = driver::run_sequential(&programs::gauss_seidel(), "gs_iteration", &inputs)
            .expect("sequential");
        assert_eq!(driver::first_mismatch(&gathered, &seq), None);
    }
    (
        out.report.stats.network.messages,
        out.report.stats.makespan().0,
    )
}

/// Footnote 3 scaled down: run-time resolution exchanges exactly
/// `2 (n-2)²` messages and the handwritten program
/// `(n-2) + (n-2)·ceil((n-2)/b)`.
#[test]
fn message_count_formulas() {
    let n = 20usize;
    let s = 4usize;
    let b = 4usize;
    let program = programs::gauss_seidel();
    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let rt = driver::compile(&job, Strategy::Runtime).unwrap();
    let (msgs, _) = run_wavefront(&rt.spmd, n, true);
    assert_eq!(msgs, 2 * (n as u64 - 2).pow(2));

    let hw = handwritten::gauss_seidel(s, b);
    let (msgs, _) = run_wavefront(&hw, n, true);
    let interior = n as u64 - 2;
    assert_eq!(msgs, interior + interior * interior.div_ceil(b as u64));
}

/// The full optimization ladder strictly improves simulated time, and
/// every rung computes the sequential answer.
#[test]
fn optimization_ladder_ordering() {
    let n = 20usize;
    let s = 4usize;
    let program = programs::gauss_seidel();
    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(s),
    )
    .with_const("n", n as i64);
    let rt = driver::compile(&job, Strategy::Runtime).unwrap();
    let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
    let (o1, _) = optimize(&ct.spmd, OptLevel::O1);
    let (o2, _) = optimize(&ct.spmd, OptLevel::O2);
    let (o3, _) = optimize(&ct.spmd, OptLevel::O3 { blksize: 4 });
    let hw = handwritten::gauss_seidel(s, 4);

    let (m_rt, t_rt) = run_wavefront(&rt.spmd, n, true);
    let (m_ct, t_ct) = run_wavefront(&ct.spmd, n, true);
    let (m_o1, t_o1) = run_wavefront(&o1, n, true);
    let (m_o2, t_o2) = run_wavefront(&o2, n, true);
    let (m_o3, t_o3) = run_wavefront(&o3, n, true);
    let (m_hw, t_hw) = run_wavefront(&hw, n, true);

    // §4: compile-time resolution "exchanges as many messages as the
    // run-time version".
    assert_eq!(m_rt, m_ct);
    // Vectorization removes the old-column element messages.
    assert!(m_o1 < m_ct);
    // Jamming preserves counts, blocking cuts them to handwritten level.
    assert_eq!(m_o2, m_o1);
    assert_eq!(m_o3, m_hw);
    // Times are strictly ordered down the ladder.
    assert!(t_ct < t_rt, "{t_ct} !< {t_rt}");
    assert!(t_o1 < t_ct, "{t_o1} !< {t_ct}");
    assert!(t_o2 < t_o1, "{t_o2} !< {t_o1}");
    assert!(t_o3 < t_o2, "{t_o3} !< {t_o2}");
    // Optimized III is within a factor of two of handwritten.
    assert!(t_o3 < 2 * t_hw, "{t_o3} vs handwritten {t_hw}");
}

/// Figure 4: three processors, two messages, c = 12 on P3 only.
#[test]
fn figure4_both_strategies() {
    let program = programs::figure4();
    for strategy in [Strategy::Runtime, Strategy::CompileTime] {
        let job = Job::new(&program, "main", programs::figure4_decomposition(4));
        let compiled = driver::compile(&job, strategy).unwrap();
        let exec = driver::execute(&compiled, &Inputs::new(), CostModel::ipsc2()).unwrap();
        assert_eq!(exec.messages(), 2);
        assert_eq!(exec.outcome.report.undelivered, 0);
        assert_eq!(exec.machine.vm(3).var("c"), Some(Scalar::Int(12)));
        assert_eq!(exec.machine.vm(0).var("c"), None);
    }
}

/// Figures 8/9: polymorphic parameter mappings erase four messages.
#[test]
fn mapping_polymorphism_saves_messages() {
    let mut results = Vec::new();
    for mode in [ParamMapMode::Monomorphic, ParamMapMode::Polymorphic] {
        let program = programs::identity_calls();
        let decomp = Decomposition::new(4)
            .scalar("b", ScalarMap::On(2))
            .scalar("k", ScalarMap::On(3))
            .scalar("u", ScalarMap::On(2))
            .scalar("v", ScalarMap::On(3));
        let mut param_maps = ParamMaps::new();
        param_maps.insert(("f".into(), "a".into()), ScalarMap::On(1));
        let mut job = Job::new(&program, "main", decomp);
        job.param_maps = param_maps;
        job.mode = mode;
        let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
        let inputs = Inputs::new()
            .scalar("b", Scalar::Int(5))
            .scalar("k", Scalar::Int(7));
        let exec = driver::execute(&compiled, &inputs, CostModel::ipsc2()).unwrap();
        // Both versions leave the right values in place.
        assert_eq!(exec.outcome.report.undelivered, 0);
        assert_eq!(exec.machine.vm(2).var("u"), Some(Scalar::Int(5)));
        assert_eq!(exec.machine.vm(3).var("v"), Some(Scalar::Int(7)));
        results.push(exec.messages());
    }
    assert_eq!(results[0], 4, "monomorphic: b->P1, P1->u, k->P1, P1->v");
    assert_eq!(results[1], 0, "polymorphic calls run where the data lives");
}

/// §4's loop-interchange story: the reversed program is slower under the
/// same decomposition; interchange recovers normal-order time.
#[test]
fn interchange_restores_parallelism() {
    let n = 16usize;
    let s = 4usize;
    let compile_o2 = |program: &pdc_lang::Program| {
        let job = Job::new(
            program,
            "gs_iteration",
            programs::wavefront_decomposition(s),
        )
        .with_const("n", n as i64);
        let ct = driver::compile(&job, Strategy::CompileTime).unwrap();
        optimize(&ct.spmd, OptLevel::O2).0
    };
    let reversed = programs::gauss_seidel_interchanged();
    let (fixed, swapped) = interchange(&reversed);
    assert_eq!(swapped, 1);
    let normal = programs::gauss_seidel();

    let (_, t_rev) = run_wavefront(&compile_o2(&reversed), n, true);
    let (_, t_fix) = run_wavefront(&compile_o2(&fixed), n, true);
    let (_, t_norm) = run_wavefront(&compile_o2(&normal), n, true);
    assert!(
        t_rev > t_norm,
        "reversed ({t_rev}) should be slower than normal ({t_norm})"
    );
    // Interchange recovers normal-order performance exactly (the fixed
    // AST is the normal program modulo inlining names).
    let ratio = t_fix as f64 / t_norm as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "fixed {t_fix} vs normal {t_norm}"
    );
}

/// Determinism: the same configuration simulates to identical statistics
/// run after run.
#[test]
fn simulation_is_deterministic() {
    let program = programs::gauss_seidel();
    let job = Job::new(
        &program,
        "gs_iteration",
        programs::wavefront_decomposition(3),
    )
    .with_const("n", 12);
    let compiled = driver::compile(&job, Strategy::CompileTime).unwrap();
    let inputs = Inputs::new()
        .scalar("n", Scalar::Int(12))
        .array("Old", driver::standard_input(12, 12));
    let a = driver::execute(&compiled, &inputs, CostModel::ipsc2()).unwrap();
    let b = driver::execute(&compiled, &inputs, CostModel::ipsc2()).unwrap();
    assert_eq!(a.messages(), b.messages());
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.outcome.report.steps, b.outcome.report.steps);
}
